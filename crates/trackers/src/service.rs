//! Tracker service behavior: synthesizing HTTP responses.

use crate::ids::IdMinter;
use hbbtv_net::{
    ContentType, Duration, Etld1, Request, Response, SetCookie, Status, Timestamp, Url,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What kind of tracking backend a service is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrackerKind {
    /// 1×1-pixel beacon endpoint: tiny image, sets a user-ID cookie.
    PixelBeacon,
    /// Analytics endpoint (page/channel measurement): JSON body, sets
    /// identifier cookies.
    Analytics,
    /// Serves a fingerprinting script (Canvas/WebGL/FingerprintJS).
    Fingerprinter {
        /// Whether the script embeds the FingerprintJS library (vs.
        /// hand-rolled Canvas probing).
        uses_library: bool,
    },
    /// Ad server: banner responses plus targeting cookies.
    AdServer,
    /// First leg of a cookie sync: 302-redirects to the partner with the
    /// user ID in the URL (§V-C3).
    CookieSyncSource {
        /// Host of the partner that receives the ID.
        partner_host: String,
    },
    /// Second leg of a cookie sync: stores the received partner ID.
    CookieSyncTarget,
    /// Plain content CDN: no cookies, no tracking.
    Cdn,
}

/// Mutable environment a service needs to answer a request.
#[derive(Debug)]
pub struct ResponderContext<'a, R: Rng> {
    /// Current simulated time (for cookie expiry).
    pub now: Timestamp,
    /// Randomness source for ID minting.
    pub rng: &'a mut R,
}

/// A simulated tracker backend bound to one host.
///
/// # Examples
///
/// ```
/// use hbbtv_trackers::{ResponderContext, TrackerKind, TrackerService};
/// use hbbtv_net::{Request, Timestamp};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let pixel = TrackerService::new("tvping.com", TrackerKind::PixelBeacon)
///     .with_cookie("tvp_uid", 16);
/// let req = Request::get("http://tvping.com/ping?c=rtl".parse()?).build();
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut ctx = ResponderContext { now: Timestamp::MEASUREMENT_START, rng: &mut rng };
/// let resp = pixel.respond(&req, &mut ctx);
/// assert!(resp.body_len < 45, "tracking pixels are tiny");
/// assert_eq!(resp.set_cookies().len(), 1);
/// # Ok::<(), hbbtv_net::ParseUrlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TrackerService {
    host: String,
    domain: Etld1,
    kind: TrackerKind,
    cookie_name: Option<String>,
    per_site_cookie: bool,
    minter: IdMinter,
    cookie_ttl: Duration,
}

impl TrackerService {
    /// Creates a service at `host` with the given behavior and no cookie.
    pub fn new(host: &str, kind: TrackerKind) -> Self {
        TrackerService {
            host: host.to_string(),
            domain: Etld1::from_host(host),
            kind,
            cookie_name: None,
            per_site_cookie: false,
            minter: IdMinter::new(16),
            cookie_ttl: Duration::from_secs(365 * 24 * 3600),
        }
    }

    /// Builder-style: like [`TrackerService::with_cookie`], but the
    /// cookie name is suffixed with the request's `site` query parameter
    /// (AT-Internet-style per-site cookies such as `xtvrn_<siteid>`),
    /// falling back to the bare name when the parameter is absent.
    ///
    /// # Panics
    ///
    /// Panics if `id_len` is outside `1..=64`.
    pub fn with_per_site_cookie(mut self, name: &str, id_len: usize) -> Self {
        self.cookie_name = Some(name.to_string());
        self.per_site_cookie = true;
        self.minter = IdMinter::new(id_len);
        self
    }

    /// Builder-style: the service sets an identifier cookie of `name`
    /// with values of `id_len` characters.
    ///
    /// # Panics
    ///
    /// Panics if `id_len` is outside `1..=64`.
    pub fn with_cookie(mut self, name: &str, id_len: usize) -> Self {
        self.cookie_name = Some(name.to_string());
        self.minter = IdMinter::new(id_len);
        self
    }

    /// The host this service answers for.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The service's registrable domain.
    pub fn domain(&self) -> &Etld1 {
        &self.domain
    }

    /// The behavior kind.
    pub fn kind(&self) -> &TrackerKind {
        &self.kind
    }

    /// The identifier cookie name, if the service sets one.
    pub fn cookie_name(&self) -> Option<&str> {
        self.cookie_name.as_deref()
    }

    /// Whether this service's responses count as tracking (everything
    /// except a plain CDN).
    pub fn is_tracking(&self) -> bool {
        !matches!(self.kind, TrackerKind::Cdn)
    }

    /// The cookie name used for a specific request (site-suffixed when
    /// [`TrackerService::with_per_site_cookie`] is configured).
    pub fn effective_cookie_name(&self, req: &Request) -> Option<String> {
        let base = self.cookie_name.as_deref()?;
        if self.per_site_cookie {
            if let Some(site) = req.url.query_param("site") {
                if !site.is_empty() {
                    return Some(format!("{base}_{site}"));
                }
            }
        }
        Some(base.to_string())
    }

    /// The user ID the requesting TV presents for this service, parsed
    /// from the `Cookie` header.
    pub fn presented_id(&self, req: &Request) -> Option<String> {
        let name = self.effective_cookie_name(req)?;
        let header = req.cookie_header()?;
        header.split(';').find_map(|kv| {
            let (k, v) = kv.trim().split_once('=')?;
            (k == name).then(|| v.to_string())
        })
    }

    /// Answers a request according to the service's behavior.
    pub fn respond<R: Rng>(&self, req: &Request, ctx: &mut ResponderContext<'_, R>) -> Response {
        match &self.kind {
            TrackerKind::PixelBeacon => self.pixel_response(req, ctx),
            TrackerKind::Analytics => self.analytics_response(req, ctx),
            TrackerKind::Fingerprinter { uses_library } => {
                self.fingerprint_response(req, ctx, *uses_library)
            }
            TrackerKind::AdServer => self.ad_response(req, ctx),
            TrackerKind::CookieSyncSource { partner_host } => {
                self.sync_source_response(req, ctx, partner_host)
            }
            TrackerKind::CookieSyncTarget => self.sync_target_response(req, ctx),
            TrackerKind::Cdn => self.cdn_response(req),
        }
    }

    /// Returns the `Set-Cookie` to (re)establish this service's ID
    /// cookie, reusing the presented value when the TV already has one.
    fn id_cookie<R: Rng>(
        &self,
        req: &Request,
        ctx: &mut ResponderContext<'_, R>,
        forced_value: Option<String>,
    ) -> Option<SetCookie> {
        let name = self.effective_cookie_name(req)?;
        let value = forced_value
            .or_else(|| self.presented_id(req))
            .unwrap_or_else(|| self.minter.mint(ctx.rng));
        Some(SetCookie::persistent(
            &name,
            value,
            self.domain.clone(),
            ctx.now + self.cookie_ttl,
        ))
    }

    fn pixel_response<R: Rng>(&self, req: &Request, ctx: &mut ResponderContext<'_, R>) -> Response {
        let mut b = Response::builder(Status::OK)
            .content_type(ContentType::Image)
            // A 43-byte GIF89a — below the 45-byte pixel threshold.
            .body_len(43);
        if let Some(sc) = self.id_cookie(req, ctx, None) {
            b = b.set_cookie(&sc);
        }
        b.build()
    }

    fn analytics_response<R: Rng>(
        &self,
        req: &Request,
        ctx: &mut ResponderContext<'_, R>,
    ) -> Response {
        let mut b = Response::builder(Status::OK)
            .content_type(ContentType::Json)
            .body("{\"status\":\"ok\"}");
        if let Some(sc) = self.id_cookie(req, ctx, None) {
            b = b.set_cookie(&sc);
        }
        b.build()
    }

    fn fingerprint_response<R: Rng>(
        &self,
        req: &Request,
        ctx: &mut ResponderContext<'_, R>,
        uses_library: bool,
    ) -> Response {
        let library_part = if uses_library {
            "import Fingerprint2 from 'fingerprintjs2';\n\
             Fingerprint2.get(function (components) { send(murmur(components)); });\n"
        } else {
            ""
        };
        let body = format!(
            "// device characterization\n\
             var canvas = document.createElement('canvas');\n\
             var g = canvas.getContext('2d');\n\
             g.fillText(navigator.userAgent, 2, 2);\n\
             var png = canvas.toDataURL();\n\
             var gl = canvas.getContext('webgl') instanceof WebGLRenderingContext;\n\
             {library_part}\
             beacon('{host}', png, gl, screen.width, screen.height);\n",
            host = self.host
        );
        let mut b = Response::builder(Status::OK)
            .content_type(ContentType::JavaScript)
            .body(body);
        if let Some(sc) = self.id_cookie(req, ctx, None) {
            b = b.set_cookie(&sc);
        }
        b.build()
    }

    fn ad_response<R: Rng>(&self, req: &Request, ctx: &mut ResponderContext<'_, R>) -> Response {
        let mut b = Response::builder(Status::OK)
            .content_type(ContentType::Image)
            // Ad creatives are real images, far above the pixel bound.
            .body_len(18_432);
        if let Some(sc) = self.id_cookie(req, ctx, None) {
            b = b.set_cookie(&sc);
        }
        b.build()
    }

    fn sync_source_response<R: Rng>(
        &self,
        req: &Request,
        ctx: &mut ResponderContext<'_, R>,
        partner_host: &str,
    ) -> Response {
        let uid = self
            .presented_id(req)
            .unwrap_or_else(|| self.minter.mint(ctx.rng));
        let location: Url = format!("http://{partner_host}/sync")
            .parse()
            .expect("partner host yields a valid URL");
        let location = location
            .with_param("uid", &uid)
            .with_param("src", &self.host);
        let mut b = Response::builder(Status::FOUND)
            .content_type(ContentType::Other)
            .header("Location", &location.to_string());
        if let Some(sc) = self.id_cookie(req, ctx, Some(uid)) {
            b = b.set_cookie(&sc);
        }
        b.build()
    }

    fn sync_target_response<R: Rng>(
        &self,
        req: &Request,
        ctx: &mut ResponderContext<'_, R>,
    ) -> Response {
        // Adopt the partner-provided ID so both parties share it.
        let partner_uid = req.url.query_param("uid").map(str::to_string);
        let mut b = Response::builder(Status::OK)
            .content_type(ContentType::Image)
            .body_len(43);
        if let Some(sc) = self.id_cookie(req, ctx, partner_uid) {
            b = b.set_cookie(&sc);
        }
        b.build()
    }

    fn cdn_response(&self, req: &Request) -> Response {
        let (ct, body): (ContentType, String) = if req.url.path().ends_with(".js") {
            (
                ContentType::JavaScript,
                "export function render(el) { el.show(); }".to_string(),
            )
        } else if req.url.path().ends_with(".css") {
            (ContentType::Css, ".overlay { opacity: 0.9; }".to_string())
        } else {
            (ContentType::Image, String::new())
        };
        let mut b = Response::builder(Status::OK).content_type(ct);
        if body.is_empty() {
            b = b.body_len(52_100); // a broadcast-quality image asset
        } else {
            b = b.body(body);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx_pair() -> (StdRng, Timestamp) {
        (StdRng::seed_from_u64(11), Timestamp::MEASUREMENT_START)
    }

    fn get(url: &str) -> Request {
        Request::get(url.parse().unwrap()).build()
    }

    fn get_with_cookie(url: &str, cookie: &str) -> Request {
        Request::get(url.parse().unwrap())
            .header("Cookie", cookie)
            .build()
    }

    #[test]
    fn pixel_is_a_tracking_pixel_by_the_papers_heuristic() {
        let svc =
            TrackerService::new("tvping.com", TrackerKind::PixelBeacon).with_cookie("tvp_uid", 16);
        let (mut rng, now) = ctx_pair();
        let mut ctx = ResponderContext { now, rng: &mut rng };
        let resp = svc.respond(&get("http://tvping.com/ping"), &mut ctx);
        assert_eq!(resp.status, Status::OK);
        assert!(resp.content_type.is_image());
        assert!(resp.body_len < 45);
        let cookies = resp.set_cookies();
        assert_eq!(cookies.len(), 1);
        assert_eq!(cookies[0].cookie.name, "tvp_uid");
        assert_eq!(cookies[0].cookie.value.len(), 16);
        assert!(cookies[0].is_persistent());
    }

    #[test]
    fn presented_cookie_id_is_reused() {
        let svc =
            TrackerService::new("an.xiti.com", TrackerKind::Analytics).with_cookie("atuserid", 20);
        let (mut rng, now) = ctx_pair();
        let mut ctx = ResponderContext { now, rng: &mut rng };
        let req = get_with_cookie("http://an.xiti.com/hit", "atuserid=knownuser12345678901");
        let resp = svc.respond(&req, &mut ctx);
        assert_eq!(resp.set_cookies()[0].cookie.value, "knownuser12345678901");
    }

    #[test]
    fn fingerprint_script_contains_detectable_markers() {
        let svc = TrackerService::new(
            "fp.metrics.de",
            TrackerKind::Fingerprinter { uses_library: true },
        );
        let (mut rng, now) = ctx_pair();
        let mut ctx = ResponderContext { now, rng: &mut rng };
        let resp = svc.respond(&get("http://fp.metrics.de/fp.js"), &mut ctx);
        assert!(resp.content_type.is_javascript());
        for marker in [
            "getContext('2d')",
            "toDataURL",
            "WebGLRenderingContext",
            "Fingerprint2",
        ] {
            assert!(resp.body.contains(marker), "missing marker {marker}");
        }
    }

    #[test]
    fn handrolled_fingerprinter_omits_library() {
        let svc = TrackerService::new(
            "fp.zdf.de",
            TrackerKind::Fingerprinter {
                uses_library: false,
            },
        );
        let (mut rng, now) = ctx_pair();
        let mut ctx = ResponderContext { now, rng: &mut rng };
        let resp = svc.respond(&get("http://fp.zdf.de/fp.js"), &mut ctx);
        assert!(!resp.body.contains("Fingerprint2"));
        assert!(resp.body.contains("toDataURL"));
    }

    #[test]
    fn sync_source_redirects_with_uid() {
        let svc = TrackerService::new(
            "adsync-a.com",
            TrackerKind::CookieSyncSource {
                partner_host: "adsync-b.com".to_string(),
            },
        )
        .with_cookie("sync_uid", 18);
        let (mut rng, now) = ctx_pair();
        let mut ctx = ResponderContext { now, rng: &mut rng };
        let req = get_with_cookie("http://adsync-a.com/pix", "sync_uid=abcdefgh1234567890");
        let resp = svc.respond(&req, &mut ctx);
        assert!(resp.status.is_redirect());
        let loc = resp.location().unwrap();
        assert_eq!(loc.host(), "adsync-b.com");
        assert_eq!(loc.query_param("uid"), Some("abcdefgh1234567890"));
    }

    #[test]
    fn sync_target_adopts_partner_uid() {
        let svc = TrackerService::new("adsync-b.com", TrackerKind::CookieSyncTarget)
            .with_cookie("partner_uid", 18);
        let (mut rng, now) = ctx_pair();
        let mut ctx = ResponderContext { now, rng: &mut rng };
        let resp = svc.respond(
            &get("http://adsync-b.com/sync?uid=abcdefgh1234567890&src=adsync-a.com"),
            &mut ctx,
        );
        assert_eq!(resp.set_cookies()[0].cookie.value, "abcdefgh1234567890");
    }

    #[test]
    fn cdn_sets_no_cookies_and_is_not_tracking() {
        let svc = TrackerService::new("cdn.hbbtv-assets.de", TrackerKind::Cdn);
        assert!(!svc.is_tracking());
        let (mut rng, now) = ctx_pair();
        let mut ctx = ResponderContext { now, rng: &mut rng };
        let js = svc.respond(&get("http://cdn.hbbtv-assets.de/app.js"), &mut ctx);
        assert!(js.content_type.is_javascript());
        assert!(js.set_cookies().is_empty());
        let img = svc.respond(&get("http://cdn.hbbtv-assets.de/bg.png"), &mut ctx);
        assert!(img.body_len > 45, "CDN images are not pixels");
    }

    #[test]
    fn ad_creative_is_large_image_with_targeting_cookie() {
        let svc = TrackerService::new("ads.adform.net", TrackerKind::AdServer)
            .with_cookie("adform_uid", 19);
        let (mut rng, now) = ctx_pair();
        let mut ctx = ResponderContext { now, rng: &mut rng };
        let resp = svc.respond(&get("http://ads.adform.net/banner"), &mut ctx);
        assert!(resp.body_len >= 45);
        assert_eq!(resp.set_cookies()[0].cookie.domain.as_str(), "adform.net");
    }

    #[test]
    fn accessors() {
        let svc =
            TrackerService::new("a.b.tracker.de", TrackerKind::Analytics).with_cookie("uid", 12);
        assert_eq!(svc.host(), "a.b.tracker.de");
        assert_eq!(svc.domain().as_str(), "tracker.de");
        assert_eq!(svc.cookie_name(), Some("uid"));
        assert!(svc.is_tracking());
        assert_eq!(*svc.kind(), TrackerKind::Analytics);
    }
}

#[cfg(test)]
mod per_site_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn per_site_cookie_names_are_site_specific() {
        let svc = TrackerService::new("xiti.com", TrackerKind::Analytics)
            .with_per_site_cookie("xtvrn", 20);
        let mut rng = StdRng::seed_from_u64(5);
        let mut ctx = ResponderContext {
            now: Timestamp::MEASUREMENT_START,
            rng: &mut rng,
        };
        let req_a = Request::get("http://an.xiti.com/hit?site=daserste".parse().unwrap()).build();
        let req_b = Request::get("http://an.xiti.com/hit?site=zdfneo".parse().unwrap()).build();
        let a = svc.respond(&req_a, &mut ctx).set_cookies().remove(0);
        let b = svc.respond(&req_b, &mut ctx).set_cookies().remove(0);
        assert_eq!(a.cookie.name, "xtvrn_daserste");
        assert_eq!(b.cookie.name, "xtvrn_zdfneo");
        assert_ne!(a.cookie.value, b.cookie.value);
    }

    #[test]
    fn per_site_falls_back_to_bare_name() {
        let svc = TrackerService::new("xiti.com", TrackerKind::Analytics)
            .with_per_site_cookie("xtvrn", 20);
        let mut rng = StdRng::seed_from_u64(5);
        let mut ctx = ResponderContext {
            now: Timestamp::MEASUREMENT_START,
            rng: &mut rng,
        };
        let req = Request::get("http://an.xiti.com/hit".parse().unwrap()).build();
        let sc = svc.respond(&req, &mut ctx).set_cookies().remove(0);
        assert_eq!(sc.cookie.name, "xtvrn");
    }

    #[test]
    fn per_site_presented_id_round_trip() {
        let svc = TrackerService::new("xiti.com", TrackerKind::Analytics)
            .with_per_site_cookie("xtvrn", 20);
        let req = Request::get("http://an.xiti.com/hit?site=rtl".parse().unwrap())
            .header("Cookie", "xtvrn_rtl=knownvalue123456")
            .build();
        assert_eq!(svc.presented_id(&req).unwrap(), "knownvalue123456");
    }
}
