//! The tracker registry: host → service resolution.

use crate::service::{ResponderContext, TrackerService};
use hbbtv_net::{ContentType, Request, Response, Status};
use rand::Rng;
use std::collections::HashMap;

/// Resolves request hosts to [`TrackerService`] backends and answers
/// requests, acting as "the Internet" for the TV runtime.
///
/// Hosts without a registered service get a generic 200/HTML response —
/// the simulation equivalent of an ordinary content server.
///
/// # Examples
///
/// ```
/// use hbbtv_trackers::{ResponderContext, TrackerKind, TrackerRegistry, TrackerService};
/// use hbbtv_net::{Request, Timestamp};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut registry = TrackerRegistry::new();
/// registry.register(TrackerService::new("tvping.com", TrackerKind::PixelBeacon));
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut ctx = ResponderContext { now: Timestamp::MEASUREMENT_START, rng: &mut rng };
/// let resp = registry.respond(&Request::get("http://tvping.com/p".parse()?).build(), &mut ctx);
/// assert!(resp.content_type.is_image());
/// # Ok::<(), hbbtv_net::ParseUrlError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TrackerRegistry {
    by_host: HashMap<String, TrackerService>,
}

impl TrackerRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        TrackerRegistry::default()
    }

    /// Registers a service, replacing any previous service on the same
    /// host. Returns the replaced service, if any.
    pub fn register(&mut self, service: TrackerService) -> Option<TrackerService> {
        self.by_host.insert(service.host().to_string(), service)
    }

    /// Looks up the service answering for `host` (exact match first, then
    /// parent domains so `cdn.x.de` falls back to a service on `x.de`).
    pub fn resolve(&self, host: &str) -> Option<&TrackerService> {
        if let Some(s) = self.by_host.get(host) {
            return Some(s);
        }
        let mut rest = host;
        while let Some(i) = rest.find('.') {
            rest = &rest[i + 1..];
            if let Some(s) = self.by_host.get(rest) {
                return Some(s);
            }
        }
        None
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.by_host.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.by_host.is_empty()
    }

    /// Iterates over all registered services.
    pub fn services(&self) -> impl Iterator<Item = &TrackerService> {
        self.by_host.values()
    }

    /// Answers a request with the resolved service, or a generic content
    /// response when no service is registered for the host.
    pub fn respond<R: Rng>(&self, req: &Request, ctx: &mut ResponderContext<'_, R>) -> Response {
        match self.resolve(req.url.host()) {
            Some(svc) => svc.respond(req, ctx),
            None => Response::builder(Status::OK)
                .content_type(ContentType::Html)
                .body("<html><body>content</body></html>")
                .build(),
        }
    }
}

impl FromIterator<TrackerService> for TrackerRegistry {
    fn from_iter<T: IntoIterator<Item = TrackerService>>(iter: T) -> Self {
        let mut r = TrackerRegistry::new();
        for s in iter {
            r.register(s);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::TrackerKind;
    use hbbtv_net::Timestamp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The ecosystem (and through it this registry) is borrowed by every
    /// parallel run worker; keep the type `Send + Sync`.
    #[test]
    fn registry_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TrackerRegistry>();
    }

    #[test]
    fn resolve_walks_up_labels() {
        let mut r = TrackerRegistry::new();
        r.register(TrackerService::new("xiti.com", TrackerKind::Analytics));
        assert!(r.resolve("xiti.com").is_some());
        assert!(r.resolve("an.xiti.com").is_some());
        assert!(r.resolve("deep.an.xiti.com").is_some());
        assert!(r.resolve("notxiti.com").is_none());
    }

    #[test]
    fn exact_host_wins_over_parent() {
        let mut r = TrackerRegistry::new();
        r.register(TrackerService::new("x.de", TrackerKind::Cdn));
        r.register(TrackerService::new(
            "fp.x.de",
            TrackerKind::Fingerprinter {
                uses_library: false,
            },
        ));
        assert!(matches!(
            r.resolve("fp.x.de").unwrap().kind(),
            TrackerKind::Fingerprinter { .. }
        ));
        assert!(matches!(
            r.resolve("cdn.x.de").unwrap().kind(),
            TrackerKind::Cdn
        ));
    }

    #[test]
    fn unknown_hosts_get_generic_content() {
        let r = TrackerRegistry::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = ResponderContext {
            now: Timestamp::MEASUREMENT_START,
            rng: &mut rng,
        };
        let resp = r.respond(
            &Request::get("http://plain-content.de/page".parse().unwrap()).build(),
            &mut ctx,
        );
        assert_eq!(resp.status, Status::OK);
        assert_eq!(resp.content_type, ContentType::Html);
        assert!(resp.set_cookies().is_empty());
    }

    #[test]
    fn register_replaces_and_reports() {
        let mut r = TrackerRegistry::new();
        assert!(r
            .register(TrackerService::new("a.de", TrackerKind::Cdn))
            .is_none());
        let old = r.register(TrackerService::new("a.de", TrackerKind::Analytics));
        assert!(matches!(old.unwrap().kind(), TrackerKind::Cdn));
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn from_iterator() {
        let r: TrackerRegistry = vec![
            TrackerService::new("a.de", TrackerKind::Cdn),
            TrackerService::new("b.de", TrackerKind::Analytics),
        ]
        .into_iter()
        .collect();
        assert_eq!(r.len(), 2);
        assert_eq!(r.services().count(), 2);
    }
}
