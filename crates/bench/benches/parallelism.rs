//! Benches of the parallel execution layer: the work-stealing study
//! against its sequential reference, the channel-parallel single run
//! against the in-order protocol, and the chunked analysis map with
//! both fixed and adaptive chunk sizing.

use criterion::{criterion_group, criterion_main, Criterion};
use hbbtv_study::analysis::{par_chunks, par_chunks_auto};
use hbbtv_study::{Ecosystem, RunKind, StudyHarness};
use std::hint::black_box;

fn bench_parallelism(c: &mut Criterion) {
    // Whole-study wall clock: runs and visits as tasks on the shared
    // work-stealing pool vs. one thread for everything. The speedup
    // ceiling is min(channels, cores) — no longer just 5 — and idle
    // workers steal tail visits across runs.
    let eco = Ecosystem::with_scale(42, 0.05);
    c.bench_function("run_all_parallel_scale_0_05", |b| {
        b.iter(|| black_box(StudyHarness::new(&eco).run_all()))
    });
    c.bench_function("run_all_sequential_scale_0_05", |b| {
        b.iter(|| black_box(StudyHarness::new(&eco).run_all_sequential()))
    });

    // Per-channel fan-out inside a single run: hermetic visits over the
    // par_map worker pool vs. the same visits in protocol order on one
    // thread. Isolates the visit-level grain from the run-level one.
    c.bench_function("single_run_channel_parallel_scale_0_05", |b| {
        b.iter(|| black_box(StudyHarness::new(&eco).run_parallel(RunKind::Red)))
    });
    c.bench_function("single_run_sequential_scale_0_05", |b| {
        b.iter(|| black_box(StudyHarness::new(&eco).run(RunKind::Red)))
    });

    // The chunked map against a plain fold on an analysis-shaped
    // workload (per-item work comparable to a filter-list match).
    let items: Vec<u64> = (0..200_000u64).map(|i| i.wrapping_mul(0x9E37)).collect();
    let work = |chunk: &[u64]| {
        chunk
            .iter()
            .map(|&v| {
                let mut x = v;
                for _ in 0..32 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                x
            })
            .fold(0u64, u64::wrapping_add)
    };
    c.bench_function("par_chunks_200k_items", |b| {
        b.iter(|| {
            black_box(
                par_chunks(&items, 4096, work)
                    .into_iter()
                    .fold(0u64, u64::wrapping_add),
            )
        })
    });
    // Same workload with the runtime picking the chunk length from its
    // adapted oversubscription factor — what the analysis call sites use.
    c.bench_function("par_chunks_auto_200k_items", |b| {
        b.iter(|| {
            black_box(
                par_chunks_auto(&items, work)
                    .into_iter()
                    .fold(0u64, u64::wrapping_add),
            )
        })
    });
    c.bench_function("sequential_fold_200k_items", |b| {
        b.iter(|| black_box(work(&items)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallelism
}
criterion_main!(benches);
