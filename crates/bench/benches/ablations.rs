//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each ablation benches an alternative of a pipeline decision and
//! prints (once) how the outcome shifts, so the cost *and* the effect of
//! each choice are visible:
//!
//! * first-party identification with vs without the filter-list guard,
//! * the 45-byte pixel threshold vs 0/256/1024,
//! * the potential-ID rule with vs without the timestamp exclusion,
//! * SimHash grouping thresholds k ∈ {0, 3, 6, 10},
//! * the attribution window (how much traffic a shorter window loses).

use criterion::{criterion_group, criterion_main, Criterion};
use hbbtv_bench::run_study_subset;
use hbbtv_study::analysis::syncing::is_potential_id;
use hbbtv_study::analysis::FirstPartyMap;
use hbbtv_study::RunKind;
use std::collections::{BTreeMap, HashMap};
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let (_eco, dataset) = run_study_subset(13, 0.1, &[RunKind::General, RunKind::Red]);

    // ---- first-party identification --------------------------------
    c.bench_function("ablation_first_party_guarded", |b| {
        b.iter(|| black_box(FirstPartyMap::identify(black_box(&dataset))))
    });
    c.bench_function("ablation_first_party_naive", |b| {
        b.iter(|| {
            // Naive: the very first request wins, no guard, no content
            // filter — the §V-A pitfall.
            let mut first: BTreeMap<u32, (u64, String)> = BTreeMap::new();
            for cap in dataset.all_captures() {
                let Some(ch) = cap.channel else { continue };
                let t = cap.request.timestamp.as_unix();
                let d = cap.request.url.etld1().to_string();
                first
                    .entry(ch.0)
                    .and_modify(|(bt, bd)| {
                        if t < *bt {
                            *bt = t;
                            *bd = d.clone();
                        }
                    })
                    .or_insert((t, d));
            }
            black_box(first)
        })
    });
    {
        let guarded = FirstPartyMap::identify(&dataset);
        let naive_trackers = guarded
            .iter()
            .filter(|(_, d)| d.as_str().contains("google-analytics"))
            .count();
        eprintln!(
            "[ablation] guarded first-party map: {} channels, {} tracker-first-parties",
            guarded.len(),
            naive_trackers
        );
    }

    // ---- pixel threshold --------------------------------------------
    // 45 bytes is the paper's bound; 64 KiB would also sweep up ad
    // creatives and CDN media.
    for threshold in [0usize, 45, 4096, 65536] {
        c.bench_function(&format!("ablation_pixel_threshold_{threshold}"), |b| {
            b.iter(|| {
                let n = dataset
                    .all_captures()
                    .filter(|c| {
                        c.response.content_type == hbbtv_net::ContentType::Image
                            && c.response.body_len < threshold
                            && c.response.status == hbbtv_net::Status::OK
                    })
                    .count();
                black_box(n)
            })
        });
    }
    for threshold in [0usize, 45, 4096, 65536] {
        let n = dataset
            .all_captures()
            .filter(|c| {
                c.response.content_type == hbbtv_net::ContentType::Image
                    && c.response.body_len < threshold
                    && c.response.status == hbbtv_net::Status::OK
            })
            .count();
        eprintln!("[ablation] pixel threshold {threshold}: {n} pixels");
    }

    // ---- potential-ID rule --------------------------------------------
    // Cookie values plus local-storage values: the §V-C3 timestamp
    // exclusion exists because apps store consent/switch timestamps.
    let mut values: Vec<String> = dataset
        .all_captures()
        .flat_map(|c| c.response.set_cookies())
        .map(|sc| sc.cookie.value)
        .collect();
    for run in &dataset.runs {
        values.extend(run.local_storage.iter().map(|(_, _, v)| v.clone()));
    }
    c.bench_function("ablation_id_rule_full", |b| {
        b.iter(|| black_box(values.iter().filter(|v| is_potential_id(v)).count()))
    });
    c.bench_function("ablation_id_rule_length_only", |b| {
        b.iter(|| {
            black_box(
                values
                    .iter()
                    .filter(|v| (10..=25).contains(&v.len()))
                    .count(),
            )
        })
    });
    {
        let full = values.iter().filter(|v| is_potential_id(v)).count();
        let length_only = values
            .iter()
            .filter(|v| (10..=25).contains(&v.len()))
            .count();
        eprintln!(
            "[ablation] id rule: {full} with timestamp exclusion vs {length_only} length-only"
        );
    }

    // ---- SimHash grouping threshold -----------------------------------
    let texts: Vec<String> = dataset
        .all_captures()
        .filter(|c| c.response.body.len() > 300)
        .map(|c| c.response.body.clone())
        .take(60)
        .collect();
    let hashes: Vec<hbbtv_policies::SimHash> = texts
        .iter()
        .map(|t| hbbtv_policies::SimHash::of_text(t))
        .collect();
    for k in [0u32, 3, 6, 10] {
        c.bench_function(&format!("ablation_simhash_k{k}"), |b| {
            b.iter(|| {
                let mut pairs = 0usize;
                for i in 0..hashes.len() {
                    for j in i + 1..hashes.len() {
                        if hashes[i].near(hashes[j], k) {
                            pairs += 1;
                        }
                    }
                }
                black_box(pairs)
            })
        });
    }

    // ---- attribution window -------------------------------------------
    // How much of each channel visit's traffic a shorter window keeps.
    let mut visit_start: HashMap<(String, u32), u64> = HashMap::new();
    for run in &dataset.runs {
        for cap in &run.captures {
            if let Some(ch) = cap.channel {
                let key = (run.run.label().to_string(), ch.0);
                let t = cap.request.timestamp.as_unix();
                visit_start
                    .entry(key)
                    .and_modify(|m| *m = (*m).min(t))
                    .or_insert(t);
            }
        }
    }
    for window_mins in [5u64, 15, 17] {
        c.bench_function(&format!("ablation_attribution_{window_mins}min"), |b| {
            b.iter(|| {
                let mut kept = 0usize;
                for run in &dataset.runs {
                    for cap in &run.captures {
                        if let Some(ch) = cap.channel {
                            let key = (run.run.label().to_string(), ch.0);
                            let start = visit_start[&key];
                            if cap.request.timestamp.as_unix() - start <= window_mins * 60 {
                                kept += 1;
                            }
                        }
                    }
                }
                black_box(kept)
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablations
}
criterion_main!(benches);
