//! One bench per table of the paper: the computation that regenerates
//! each table from captured traffic (Table I–V), plus the §IV-B funnel.

use criterion::{criterion_group, criterion_main, Criterion};
use hbbtv_bench::run_study_subset;
use hbbtv_study::analysis::{ConsentAnalysis, CookieAnalysis, FirstPartyMap, TrackingAnalysis};
use hbbtv_study::{tables, Ecosystem, RunKind};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    // One shared dataset: General + Red at reduced scale.
    let (eco, dataset) = run_study_subset(7, 0.1, &[RunKind::General, RunKind::Red]);
    let fp = FirstPartyMap::identify(&dataset);
    let tracking = TrackingAnalysis::compute(&dataset, &fp);
    let cookies = CookieAnalysis::compute(&dataset, &fp);
    let consent = ConsentAnalysis::compute(&dataset);

    c.bench_function("funnel", |b| {
        b.iter(|| {
            let (report, finals) = eco.lineup().funnel(|_, ait| ait.signals_hbbtv());
            black_box((report, finals.len()))
        })
    });

    c.bench_function("table1", |b| {
        b.iter(|| {
            let cookies = CookieAnalysis::compute(black_box(&dataset), &fp);
            black_box(tables::table1(&dataset, &cookies))
        })
    });

    c.bench_function("table2", |b| {
        b.iter(|| black_box(tables::table2(black_box(&cookies))))
    });

    c.bench_function("table3", |b| {
        b.iter(|| {
            let tracking = TrackingAnalysis::compute(black_box(&dataset), &fp);
            black_box(tables::table3(&tracking))
        })
    });

    c.bench_function("table4", |b| {
        b.iter(|| {
            let consent = ConsentAnalysis::compute(black_box(&dataset));
            black_box(tables::table4(&consent))
        })
    });

    c.bench_function("table5", |b| {
        b.iter(|| black_box(tables::table5(black_box(&consent))))
    });

    // The world generator itself (scan + 396 apps + policies).
    c.bench_function("world_generation", |b| {
        b.iter(|| black_box(Ecosystem::with_scale(3, 0.1)))
    });

    black_box(&tracking);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tables
}
criterion_main!(benches);
