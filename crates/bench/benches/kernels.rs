//! Micro-benches of the core algorithmic kernels the analyses rest on.

use criterion::{criterion_group, criterion_main, Criterion};
use hbbtv_bench::matcher_workload;
use hbbtv_filterlists::{bundled, RequestContext, UrlView};
use hbbtv_graph::Graph;
use hbbtv_net::Url;
use hbbtv_policies::{render_policy, sha1_hex, PolicyProfile, SimHash};
use hbbtv_stats::{kruskal_wallis, mann_whitney_u};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    // Filter-list matching over a mixed URL set.
    let lists = bundled::all();
    let urls: Vec<Url> = (0..200)
        .map(|i| {
            let host = match i % 5 {
                0 => "tvping.com".to_string(),
                1 => "ad.doubleclick.net".to_string(),
                2 => format!("cdn{}.hbbtv-kanal{}.de", i, i),
                3 => "an.xiti.com".to_string(),
                _ => format!("track{:02}.de", i % 38 + 1),
            };
            format!("http://{host}/path/{i}?site=s{i}").parse().unwrap()
        })
        .collect();
    c.bench_function("filterlist_matching_200_urls", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for u in &urls {
                for l in &lists {
                    if l.matches(u, RequestContext::third_party_image()) {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });
    // Same workload through the zero-alloc view path (one serialization
    // per URL instead of one per list probe), and through the retained
    // naive linear scan — the before/after pair for the indexed engine.
    let list_refs = bundled::all_refs();
    c.bench_function("filterlist_matching_200_urls_view", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            let mut buf = String::new();
            for u in &urls {
                let view = UrlView::of_url(u, &mut buf);
                for l in &list_refs {
                    if l.matches_view(&view, RequestContext::third_party_image()) {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });
    c.bench_function("filterlist_matching_200_urls_linear", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for u in &urls {
                for l in &list_refs {
                    if l.matches_linear(u, RequestContext::third_party_image()) {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });

    // Indexed vs linear at synthetic list scales: real lists run from
    // hundreds (smart-TV lists) to tens of thousands (EasyList) of
    // rules; the indexed engine should be flat while linear grows.
    for n in [100usize, 1_000, 10_000] {
        let list = matcher_workload::synthetic_list(n, 7);
        let work = matcher_workload::url_workload(64, n, 11);
        c.bench_function(&format!("matcher_indexed_{n}_rules_64_urls"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                let mut buf = String::new();
                for u in &work {
                    let view = UrlView::of_url(u, &mut buf);
                    if list.matches_view(&view, RequestContext::third_party_image()) {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
        c.bench_function(&format!("matcher_linear_{n}_rules_64_urls"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for u in &work {
                    if list.matches_linear(u, RequestContext::third_party_image()) {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
    }

    // Rank-test kernels on study-shaped samples.
    let groups: Vec<Vec<f64>> = (0..5)
        .map(|g| (0..300).map(|i| ((i * 7 + g * 13) % 97) as f64).collect())
        .collect();
    c.bench_function("kruskal_wallis_5x300", |b| {
        b.iter(|| black_box(kruskal_wallis(black_box(&groups)).unwrap()))
    });
    c.bench_function("mann_whitney_300v300", |b| {
        b.iter(|| black_box(mann_whitney_u(&groups[0], &groups[1]).unwrap()))
    });

    // Policy hashing kernels.
    let policy = render_policy(&PolicyProfile::typical("Bench TV", "Bench Media"));
    c.bench_function("sha1_policy_text", |b| {
        b.iter(|| black_box(sha1_hex(black_box(policy.as_bytes()))))
    });
    c.bench_function("simhash_policy_text", |b| {
        b.iter(|| black_box(SimHash::of_text(black_box(&policy))))
    });

    // Graph metrics on a hub-and-spoke topology like Figure 8's.
    let mut g = Graph::new();
    for hub in 0..12 {
        for ch in 0..40 {
            g.add_edge(&format!("hub{hub}"), &format!("ch{hub}_{ch}"));
        }
        g.add_edge(&format!("hub{hub}"), "tvping.com");
    }
    c.bench_function("graph_average_path_length_500_nodes", |b| {
        b.iter(|| black_box(g.average_path_length()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels
}
criterion_main!(benches);
