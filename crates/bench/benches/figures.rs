//! One bench per figure: the computation behind Figures 5–8, plus the
//! §V-C3 syncing detection and the §VII policy pipeline used by the
//! accompanying text.

use criterion::{criterion_group, criterion_main, Criterion};
use hbbtv_bench::run_study_subset;
use hbbtv_study::analysis::{
    CategoryAnalysis, CookieAnalysis, FirstPartyMap, GraphAnalysis, PolicyAnalysis,
    SyncingAnalysis, TrackingAnalysis,
};
use hbbtv_study::{tables, RunKind};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let (eco, dataset) = run_study_subset(11, 0.1, &[RunKind::General, RunKind::Red]);
    let fp = FirstPartyMap::identify(&dataset);
    let tracking = TrackingAnalysis::compute(&dataset, &fp);

    c.bench_function("fig5_cookie_long_tail", |b| {
        b.iter(|| {
            let cookies = CookieAnalysis::compute(black_box(&dataset), &fp);
            black_box(tables::figure5(&cookies))
        })
    });

    c.bench_function("fig6_trackers_per_channel", |b| {
        b.iter(|| {
            let tracking = TrackingAnalysis::compute(black_box(&dataset), &fp);
            black_box(tables::figure6(&tracking))
        })
    });

    c.bench_function("fig7_category_analysis", |b| {
        b.iter(|| {
            let cats = CategoryAnalysis::compute(black_box(&eco), &tracking);
            black_box(tables::figure7(&cats))
        })
    });

    c.bench_function("fig8_ecosystem_graph", |b| {
        b.iter(|| {
            let graph = GraphAnalysis::compute(black_box(&dataset), &fp);
            black_box(tables::figure8(&graph))
        })
    });

    c.bench_function("syncing_detection", |b| {
        b.iter(|| black_box(SyncingAnalysis::compute(black_box(&dataset))))
    });

    c.bench_function("policy_pipeline", |b| {
        b.iter(|| black_box(PolicyAnalysis::compute(black_box(&dataset))))
    });

    c.bench_function("first_party_identification", |b| {
        b.iter(|| black_box(FirstPartyMap::identify(black_box(&dataset))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_figures
}
criterion_main!(benches);
