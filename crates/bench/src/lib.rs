//! Shared scaffolding for the benchmark harness and the `repro` binary.
//!
//! Every table and figure of the paper has a criterion bench target in
//! `benches/` and a section in the `repro` binary's output; both build
//! on the helpers here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hbbtv_study::report::StudyReport;
use hbbtv_study::{Ecosystem, RunKind, StudyDataset, StudyHarness};

/// Default seed for reproduction runs.
pub const DEFAULT_SEED: u64 = 42;

/// Builds a world and runs all five measurement runs.
pub fn run_study(seed: u64, scale: f64) -> (Ecosystem, StudyDataset) {
    let eco = Ecosystem::with_scale(seed, scale);
    let dataset = StudyHarness::new(&eco).run_all();
    (eco, dataset)
}

/// Builds a world and runs a subset of runs (cheaper for benches).
pub fn run_study_subset(seed: u64, scale: f64, runs: &[RunKind]) -> (Ecosystem, StudyDataset) {
    let eco = Ecosystem::with_scale(seed, scale);
    let harness = StudyHarness::new(&eco);
    let dataset = StudyDataset {
        runs: runs.iter().map(|&r| harness.run(r)).collect(),
    };
    (eco, dataset)
}

/// Computes the full report for a study.
pub fn full_report(eco: &Ecosystem, dataset: &StudyDataset) -> StudyReport {
    StudyReport::compute(eco, dataset)
}

/// Deterministic workloads for the filter-list matcher benches.
///
/// Shared by the criterion kernels and the `matcher_bench` binary so
/// that `BENCH_matcher.json` and the criterion numbers describe the
/// same fixed-seed rule sets and URL mixes.
pub mod matcher_workload {
    use hbbtv_filterlists::FilterList;
    use hbbtv_net::Url;

    /// Tiny xorshift* generator: fixed-seed, dependency-free.
    pub struct XorShift(u64);

    impl XorShift {
        /// A generator from a non-zero-coerced seed.
        pub fn new(seed: u64) -> Self {
            XorShift(seed.max(1))
        }

        /// The next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// A value in `0..n`.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n.max(1)
        }
    }

    const TLDS: [&str; 4] = ["de", "com", "net", "tv"];

    fn domain(i: usize) -> String {
        format!("svc{i}.{}", TLDS[i % TLDS.len()])
    }

    /// A synthetic Adblock-style list over a universe of `n` domains,
    /// with the rule-shape distribution of the paper's five lists:
    /// `||domain^` anchors dominate (~84%, a slice of them carrying
    /// `$third-party`/`$image`/`$script` options), followed by
    /// domain-anchored path rules, then a thin residual tail of
    /// substring, wildcard, and start-anchored rules — the shapes that
    /// land in the engine's Aho–Corasick residual scan — plus rare
    /// `@@` exceptions and kind-constrained residuals. Scales to 10^5
    /// rules without the match cost scaling with it.
    pub fn synthetic_list(n: usize, seed: u64) -> FilterList {
        let mut rng = XorShift::new(seed);
        let mut text = String::new();
        for i in 0..n {
            // A hot shared domain every 50 rules (capped at 50 such
            // rules): real lists pile many path rules onto a few ad
            // CDNs (doubleclick.net et al.), which is what gives the
            // first-match distance histogram its tail — a hit on the
            // hot bucket scans candidates in rule order until its own
            // slot. The cap keeps the bucket depth (and so the indexed
            // engine's per-query cost) independent of list scale.
            if i % 50 == 17 && i < 2500 {
                text.push_str(&format!("||hot.ads.example/slot{i}^\n"));
                continue;
            }
            let d = domain(i);
            match rng.below(200) {
                // 1% exceptions.
                0..=1 => text.push_str(&format!("@@||{d}/ok^\n")),
                // 1% kind-constrained residual substrings.
                2 => text.push_str(&format!("/xframe{i}/$image\n")),
                3 => text.push_str(&format!("/xpix{i}/$script\n")),
                // 0.5% start-anchored.
                4 => text.push_str(&format!("|http://{d}/boot{i}\n")),
                // 1% substring with interior wildcard.
                5..=6 => text.push_str(&format!("/gen{i}/*/pix\n")),
                // 2% plain substrings.
                7..=10 => text.push_str(&format!("/frag{i}/\n")),
                // 2% domain-anchored wildcard paths.
                11..=14 => text.push_str(&format!("||{d}/ad*track\n")),
                // 6% domain-anchored paths.
                15..=26 => text.push_str(&format!("||{d}/track{i}\n")),
                // 9% host anchors with options.
                27..=38 => text.push_str(&format!("||{d}^$third-party\n")),
                39..=41 => text.push_str(&format!("||{d}^$image\n")),
                42..=44 => text.push_str(&format!("||{d}^$script\n")),
                // ~77% bare host anchors.
                _ => text.push_str(&format!("||{d}^\n")),
            }
        }
        FilterList::parse_adblock("synthetic", &text)
    }

    /// A URL mix over the same `universe` of domains: direct hits,
    /// subdomain hits, occasional paths that brush the residual
    /// substring tail, and out-of-universe misses (the common case in
    /// real traffic).
    pub fn url_workload(n: usize, universe: usize, seed: u64) -> Vec<Url> {
        let mut rng = XorShift::new(seed);
        (0..n)
            .map(|i| {
                let text = match rng.below(8) {
                    0 | 1 => {
                        let d = domain(rng.below(universe as u64) as usize);
                        format!("http://{d}/path/{i}?x={i}")
                    }
                    2 => {
                        let d = domain(rng.below(universe as u64) as usize);
                        format!("http://cdn{i}.{d}/asset/{i}.js")
                    }
                    3 => {
                        let k = rng.below(universe as u64);
                        format!("http://clean{i}.example/frag{k}/item")
                    }
                    4 if universe > 17 => {
                        // A guaranteed hit on the hot shared-domain
                        // bucket at a random depth (rule i%50==17
                        // exists up to the generator's 2500 cap): the
                        // first-match distance is that rule's rank
                        // among the bucket candidates.
                        let k = rng.below(universe.min(2500) as u64) as usize;
                        let hi = universe.min(2500);
                        let slot = (k - k % 50 + 17).min(hi - hi % 50 + 17);
                        let slot = if slot >= hi { slot - 50 } else { slot };
                        format!("http://hot.ads.example/slot{slot}")
                    }
                    _ => format!("http://clean{i}.example/page/{i}"),
                };
                text.parse().expect("workload URLs are well-formed")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_study_builds() {
        let (eco, ds) = run_study_subset(1, 0.05, &[RunKind::General]);
        assert_eq!(ds.runs.len(), 1);
        let report = full_report(&eco, &ds);
        assert!(report.tracking.pixel_total > 0);
    }
}
