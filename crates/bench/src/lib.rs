//! Shared scaffolding for the benchmark harness and the `repro` binary.
//!
//! Every table and figure of the paper has a criterion bench target in
//! `benches/` and a section in the `repro` binary's output; both build
//! on the helpers here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hbbtv_study::report::StudyReport;
use hbbtv_study::{Ecosystem, RunKind, StudyDataset, StudyHarness};

/// Default seed for reproduction runs.
pub const DEFAULT_SEED: u64 = 42;

/// Builds a world and runs all five measurement runs.
pub fn run_study(seed: u64, scale: f64) -> (Ecosystem, StudyDataset) {
    let eco = Ecosystem::with_scale(seed, scale);
    let dataset = StudyHarness::new(&eco).run_all();
    (eco, dataset)
}

/// Builds a world and runs a subset of runs (cheaper for benches).
pub fn run_study_subset(seed: u64, scale: f64, runs: &[RunKind]) -> (Ecosystem, StudyDataset) {
    let eco = Ecosystem::with_scale(seed, scale);
    let harness = StudyHarness::new(&eco);
    let dataset = StudyDataset {
        runs: runs.iter().map(|&r| harness.run(r)).collect(),
    };
    (eco, dataset)
}

/// Computes the full report for a study.
pub fn full_report(eco: &Ecosystem, dataset: &StudyDataset) -> StudyReport {
    StudyReport::compute(eco, dataset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_study_builds() {
        let (eco, ds) = run_study_subset(1, 0.05, &[RunKind::General]);
        assert_eq!(ds.runs.len(), 1);
        let report = full_report(&eco, &ds);
        assert!(report.tracking.pixel_total > 0);
    }
}
