//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [--scale <0..1>] [--seed <u64>] [section ...]
//! ```
//!
//! Sections: `funnel`, `table1`–`table5`, `fig5`–`fig8`, `leakage`,
//! `cookies`, `syncing`, `filterlists`, `children`, `consent`,
//! `policies`, `fivepm`, `stats`, or `all` (default). With no
//! `--scale`, the full 3,575-service world of the paper is generated
//! and all five measurement runs are performed.

use hbbtv_bench::{full_report, run_study, DEFAULT_SEED};
use hbbtv_study::tables;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut seed = DEFAULT_SEED;
    let mut sections: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a number in (0, 1]");
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            other => sections.push(other.to_string()),
        }
    }
    if sections.is_empty() {
        sections.push("all".to_string());
    }
    let want = |name: &str| sections.iter().any(|s| s == name || s == "all");

    eprintln!("generating world (seed {seed}, scale {scale}) and running the study ...");
    let (eco, dataset) = run_study(seed, scale);
    eprintln!(
        "captured {} requests, {} screenshots; computing analyses ...",
        dataset.total_requests(),
        dataset.total_screenshots()
    );
    let report = full_report(&eco, &dataset);

    if want("funnel") {
        let (funnel, _) = eco.lineup().funnel(|_, ait| ait.signals_hbbtv());
        println!("Channel-selection funnel (section IV-B)");
        println!("{funnel}\n");
    }
    if want("table1") {
        println!("{}", tables::table1(&dataset, &report.cookies));
    }
    if want("table2") {
        println!("{}", tables::table2(&report.cookies));
    }
    if want("table3") {
        println!("{}", tables::table3(&report.tracking));
    }
    if want("table4") {
        println!("{}", tables::table4(&report.consent));
    }
    if want("table5") {
        println!("{}", tables::table5(&report.consent));
    }
    if want("fig5") {
        println!("{}", tables::figure5(&report.cookies));
    }
    if want("fig6") {
        println!("{}", tables::figure6(&report.tracking));
    }
    if want("fig7") {
        println!("{}", tables::figure7(&report.categories));
    }
    if want("fig8") {
        println!("{}", tables::figure8(&report.graph));
    }
    if want("leakage")
        || want("cookies")
        || want("syncing")
        || want("filterlists")
        || want("children")
        || want("consent")
        || want("policies")
        || want("fivepm")
        || want("stats")
    {
        println!("{}", report.render_findings());
    }
}
