//! `matcher_bench` — fixed-seed indexed-vs-linear matcher throughput,
//! written to `BENCH_matcher.json` for the `--matcher-smoke` gate.
//!
//! Usage:
//!
//! ```text
//! matcher_bench [output.json]
//! ```
//!
//! Measures the same workloads as the `kernels` criterion bench: the
//! bundled Table III lists over a mixed 200-URL set, and synthetic
//! lists of 10^2..10^5 rules over a 64-URL mix. "Linear" is the seed
//! implementation retained as `matches_linear` (per-call URL
//! serialization, full rule scan); "indexed" is the kind-partitioned
//! bucket engine with its Aho–Corasick residual prefilter behind
//! `matches_view`.
//!
//! Each synthetic scale also round-trips the list through the HBFL
//! prebuilt image: the loaded engine must produce byte-identical
//! `MatchOutcome`s (same firing rule, same source line) before the row
//! is recorded, and the instrumented pass runs on the freshly loaded
//! engine so `load_mode`/`automaton_states` describe the prebuilt path.

use hbbtv_bench::matcher_workload::{synthetic_list, url_workload};
use hbbtv_filterlists::{bundled, stats, FilterList, MatchOutcome, RequestContext, UrlView};
use hbbtv_net::Url;
use std::time::Instant;

/// Fixed repeat counts per workload, recorded in the report so
/// trajectories stay comparable across PRs (no adaptive timing: the
/// JSON metadata is deterministic, only the throughput numbers move).
const ITERS_BUNDLED: usize = 40;

/// Repeats for each synthetic scale, matched by index with `SCALES`.
const ITERS_SCALES: [usize; 4] = [40, 16, 6, 3];

/// Synthetic rule counts exercised by the scaling section.
const SCALES: [usize; 4] = [100, 1_000, 10_000, 100_000];

/// Workload seeds (list contents and URL mix).
const LIST_SEED: u64 = 7;
const URL_SEED: u64 = 11;

/// Runs `work` exactly `iters` times and returns the best-observed
/// seconds per run.
fn time_best<F: FnMut() -> usize>(iters: usize, mut work: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(work());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// One counting pass over the workload (outside the timed loops):
/// resets the global engine cells, runs the indexed engine once with
/// counting on, and freezes the totals. Drives `matching_rule_view`
/// (not the boolean `matches_view`) so every hit records its true
/// first-match distance — the boolean path answers some queries from
/// the exception index without a distance, which used to leave the
/// histogram degenerate (p50 == p99 == max at every scale).
fn instrumented_pass(
    lists: &[&FilterList],
    urls: &[Url],
    ctx: RequestContext,
) -> stats::MatcherStats {
    stats::reset();
    stats::enable();
    std::hint::black_box(rule_pass(lists, urls, ctx));
    stats::disable();
    stats::snapshot()
}

/// Query-path cells only; engine-construction cells are reported
/// separately by [`load_json`] because they are recorded at build/load
/// time, outside the per-workload counting window.
fn stats_json(s: &stats::MatcherStats) -> String {
    format!(
        "{{ \"queries\": {}, \"bucket_probes\": {}, \"bucket_candidates\": {}, \"residual_checks\": {}, \"residual_walks\": {}, \"hits\": {}, \"rules_per_query\": {:.2}, \"first_match_p50\": {}, \"first_match_p99\": {}, \"first_match_max\": {} }}",
        s.queries,
        s.bucket_probes,
        s.bucket_candidates,
        s.residual_checks,
        s.residual_walks,
        s.hits,
        s.rules_per_query(),
        s.first_match_distance.p50,
        s.first_match_distance.p99,
        s.first_match_distance.max
    )
}

/// Engine-construction cells: how many engines this window built or
/// loaded, and the DFA states they materialized.
fn load_json(s: &stats::MatcherStats) -> String {
    format!(
        "{{ \"automaton_states\": {}, \"engines_built\": {}, \"engines_prebuilt\": {}, \"load_mode\": \"{}\" }}",
        s.automaton_states,
        s.engines_built,
        s.engines_prebuilt,
        s.load_mode()
    )
}

fn indexed_pass(lists: &[&FilterList], urls: &[Url], ctx: RequestContext) -> usize {
    let mut hits = 0;
    let mut buf = String::new();
    for u in urls {
        let view = UrlView::of_url(u, &mut buf);
        for l in lists {
            if l.matches_view(&view, ctx) {
                hits += 1;
            }
        }
    }
    hits
}

/// The indexed engine via `matching_rule_view`: same decisions as
/// `matches_view`, but every positive answer names its rule (and so
/// records a real first-match distance when counting is on).
fn rule_pass(lists: &[&FilterList], urls: &[Url], ctx: RequestContext) -> usize {
    let mut hits = 0;
    let mut buf = String::new();
    for u in urls {
        let view = UrlView::of_url(u, &mut buf);
        for l in lists {
            match l.matching_rule_view(&view, ctx) {
                MatchOutcome::Blocked(_) | MatchOutcome::HostBlocked => hits += 1,
                MatchOutcome::Allowed | MatchOutcome::NoMatch => {}
            }
        }
    }
    hits
}

fn linear_pass(lists: &[&FilterList], urls: &[Url], ctx: RequestContext) -> usize {
    let mut hits = 0;
    for u in urls {
        for l in lists {
            if l.matches_linear(u, ctx) {
                hits += 1;
            }
        }
    }
    hits
}

/// A comparable key for a match outcome: which variant fired, and for
/// block rules the exact source line, so "byte-identical outcome" means
/// the same rule won, not merely the same boolean.
fn outcome_key(o: &MatchOutcome<'_>) -> String {
    match o {
        MatchOutcome::Blocked(r) => format!("blocked:{}", r.source),
        MatchOutcome::HostBlocked => "host".to_string(),
        MatchOutcome::Allowed => "allowed".to_string(),
        MatchOutcome::NoMatch => "none".to_string(),
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_matcher.json".to_string());
    let ctx = RequestContext::third_party_image();
    let mut sections = Vec::new();

    // Bundled Table III lists, probed together per URL as the fused
    // per-exchange classification does. Forcing the registry here also
    // records the boot-time engine constructions (parsed text or
    // prebuilt HBFL images, depending on HBBTV_PREBUILT_DIR).
    stats::reset();
    let lists = bundled::all_refs();
    let boot = stats::snapshot();
    let urls: Vec<Url> = (0..200)
        .map(|i| {
            let host = match i % 5 {
                0 => "tvping.com".to_string(),
                1 => "ad.doubleclick.net".to_string(),
                2 => format!("cdn{i}.hbbtv-kanal{i}.de"),
                3 => "an.xiti.com".to_string(),
                _ => format!("track{:02}.de", i % 38 + 1),
            };
            format!("http://{host}/path/{i}?site=s{i}").parse().unwrap()
        })
        .collect();
    let hits = indexed_pass(&lists, &urls, ctx);
    assert_eq!(
        hits,
        linear_pass(&lists, &urls, ctx),
        "engines disagree on the bundled workload"
    );
    // Counting pass first, outside the timed loops, so the timed runs
    // below see the disabled (one relaxed load) path.
    let bundled_stats = instrumented_pass(&lists, &urls, ctx);
    let total_rules: usize = lists.iter().map(|l| l.len()).sum();
    let rule_counts: Vec<String> = lists
        .iter()
        .map(|l| format!("\"{}\": {}", l.name(), l.len()))
        .collect();

    let checks = (urls.len() * lists.len()) as f64;
    let t_idx = time_best(ITERS_BUNDLED, || indexed_pass(&lists, &urls, ctx));
    let t_lin = time_best(ITERS_BUNDLED, || linear_pass(&lists, &urls, ctx));
    let bundled_speedup = t_lin / t_idx;
    println!(
        "bundled lists      : indexed {:>12.0} checks/s, linear {:>12.0} checks/s, speedup {:.1}x",
        checks / t_idx,
        checks / t_lin,
        bundled_speedup
    );
    sections.push(format!(
        "  \"bundled\": {{ \"lists\": {}, \"rules\": {}, \"rule_counts\": {{ {} }}, \"urls\": {}, \"iters\": {}, \"hits\": {}, \"indexed_checks_per_s\": {:.0}, \"linear_checks_per_s\": {:.0}, \"speedup\": {:.2}, \"boot\": {}, \"engine\": {} }}",
        lists.len(),
        total_rules,
        rule_counts.join(", "),
        urls.len(),
        ITERS_BUNDLED,
        hits,
        checks / t_idx,
        checks / t_lin,
        bundled_speedup,
        load_json(&boot),
        stats_json(&bundled_stats)
    ));

    // Synthetic scales: indexed should stay flat while linear grows
    // with the rule count. Every scale round-trips through the HBFL
    // prebuilt image and must match it outcome for outcome.
    let mut scale_rows = Vec::new();
    for (i, n) in SCALES.into_iter().enumerate() {
        let iters = ITERS_SCALES[i];
        let list = synthetic_list(n, LIST_SEED);
        let work = url_workload(64, n, URL_SEED);
        let one = [&list];
        let hits = indexed_pass(&one, &work, ctx);
        assert_eq!(
            hits,
            linear_pass(&one, &work, ctx),
            "engines disagree at {n} rules"
        );
        assert_eq!(
            hits,
            rule_pass(&one, &work, ctx),
            "matching_rule_view disagrees with matches_view at {n} rules"
        );

        // HBFL round trip: encode, load, and require byte-identical
        // outcomes (same rule source line) from the loaded engine.
        let t = Instant::now();
        let image = list.to_prebuilt();
        let encode_s = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let loaded = FilterList::from_prebuilt(&image).expect("prebuilt image loads");
        let load_s = t.elapsed().as_secs_f64();
        let mut buf = String::new();
        for u in &work {
            let view = UrlView::of_url(u, &mut buf);
            assert_eq!(
                outcome_key(&list.matching_rule_view(&view, ctx)),
                outcome_key(&loaded.matching_rule_view(&view, ctx)),
                "prebuilt engine diverges at {n} rules on {u}"
            );
        }

        // Instrumented pass on a freshly loaded engine, with the load
        // itself inside the counting window, so the row's load cells
        // describe the prebuilt path (automaton states, load_mode).
        stats::reset();
        stats::enable();
        let counted = FilterList::from_prebuilt(&image).expect("prebuilt image loads");
        std::hint::black_box(rule_pass(&[&counted], &work, ctx));
        stats::disable();
        let scale_stats = stats::snapshot();

        let checks = work.len() as f64;
        let t_idx = time_best(iters, || indexed_pass(&one, &work, ctx));
        let t_lin = time_best(iters, || linear_pass(&one, &work, ctx));
        println!(
            "{n:>6} rules       : indexed {:>12.0} urls/s, linear {:>12.0} urls/s, speedup {:.1}x",
            checks / t_idx,
            checks / t_lin,
            t_lin / t_idx
        );
        scale_rows.push(format!(
            "    {{ \"rules\": {}, \"urls\": {}, \"iters\": {}, \"hits\": {}, \"indexed_urls_per_s\": {:.0}, \"linear_urls_per_s\": {:.0}, \"speedup\": {:.2}, \"prebuilt\": {{ \"bytes\": {}, \"encode_s\": {:.6}, \"load_s\": {:.6}, \"outcome_parity\": true, \"load\": {} }}, \"engine\": {} }}",
            n,
            work.len(),
            iters,
            hits,
            checks / t_idx,
            checks / t_lin,
            t_lin / t_idx,
            image.len(),
            encode_s,
            load_s,
            load_json(&scale_stats),
            stats_json(&scale_stats)
        ));
    }
    sections.push(format!("  \"scales\": [\n{}\n  ]", scale_rows.join(",\n")));

    let json = format!(
        "{{\n  \"list_seed\": {LIST_SEED},\n  \"url_seed\": {URL_SEED},\n  \"context\": \"third_party_image\",\n{}\n}}\n",
        sections.join(",\n")
    );
    std::fs::write(&out, &json).expect("writing the benchmark report");
    println!("wrote {out}");
    if bundled_speedup < 5.0 {
        eprintln!("warning: bundled-scale speedup below the 5x target");
    }
}
