//! `matcher_bench` — fixed-seed indexed-vs-linear matcher throughput,
//! written to `BENCH_matcher.json` for the `--bench-smoke` gate.
//!
//! Usage:
//!
//! ```text
//! matcher_bench [output.json]
//! ```
//!
//! Measures the same workloads as the `kernels` criterion bench: the
//! bundled Table III lists over a mixed 200-URL set, and synthetic
//! lists of 10^2..10^4 rules over a 64-URL mix. "Linear" is the seed
//! implementation retained as `matches_linear` (per-call URL
//! serialization, full rule scan); "indexed" is the bucketed engine
//! behind `matches_view`.

use hbbtv_bench::matcher_workload::{synthetic_list, url_workload};
use hbbtv_filterlists::{bundled, FilterList, RequestContext, UrlView};
use hbbtv_net::Url;
use std::time::Instant;

/// Runs `work` repeatedly until ~50ms have elapsed (at least 3 times)
/// and returns the best-observed seconds per run.
fn time_best<F: FnMut() -> usize>(mut work: F) -> f64 {
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    let mut runs = 0;
    while runs < 3 || spent < 0.05 {
        let t = Instant::now();
        std::hint::black_box(work());
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        spent += dt;
        runs += 1;
    }
    best
}

fn indexed_pass(lists: &[&FilterList], urls: &[Url], ctx: RequestContext) -> usize {
    let mut hits = 0;
    let mut buf = String::new();
    for u in urls {
        let view = UrlView::of_url(u, &mut buf);
        for l in lists {
            if l.matches_view(&view, ctx) {
                hits += 1;
            }
        }
    }
    hits
}

fn linear_pass(lists: &[&FilterList], urls: &[Url], ctx: RequestContext) -> usize {
    let mut hits = 0;
    for u in urls {
        for l in lists {
            if l.matches_linear(u, ctx) {
                hits += 1;
            }
        }
    }
    hits
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_matcher.json".to_string());
    let ctx = RequestContext::third_party_image();
    let mut sections = Vec::new();

    // Bundled Table III lists, probed together per URL as the fused
    // per-exchange classification does.
    let lists = bundled::all_refs();
    let urls: Vec<Url> = (0..200)
        .map(|i| {
            let host = match i % 5 {
                0 => "tvping.com".to_string(),
                1 => "ad.doubleclick.net".to_string(),
                2 => format!("cdn{i}.hbbtv-kanal{i}.de"),
                3 => "an.xiti.com".to_string(),
                _ => format!("track{:02}.de", i % 38 + 1),
            };
            format!("http://{host}/path/{i}?site=s{i}").parse().unwrap()
        })
        .collect();
    let hits = indexed_pass(&lists, &urls, ctx);
    assert_eq!(
        hits,
        linear_pass(&lists, &urls, ctx),
        "engines disagree on the bundled workload"
    );
    let checks = (urls.len() * lists.len()) as f64;
    let t_idx = time_best(|| indexed_pass(&lists, &urls, ctx));
    let t_lin = time_best(|| linear_pass(&lists, &urls, ctx));
    let bundled_speedup = t_lin / t_idx;
    println!(
        "bundled lists      : indexed {:>12.0} checks/s, linear {:>12.0} checks/s, speedup {:.1}x",
        checks / t_idx,
        checks / t_lin,
        bundled_speedup
    );
    sections.push(format!(
        "  \"bundled\": {{ \"lists\": {}, \"urls\": {}, \"hits\": {}, \"indexed_checks_per_s\": {:.0}, \"linear_checks_per_s\": {:.0}, \"speedup\": {:.2} }}",
        lists.len(),
        urls.len(),
        hits,
        checks / t_idx,
        checks / t_lin,
        bundled_speedup
    ));

    // Synthetic scales: indexed should stay flat while linear grows
    // with the rule count.
    let mut scale_rows = Vec::new();
    for n in [100usize, 1_000, 10_000] {
        let list = synthetic_list(n, 7);
        let work = url_workload(64, n, 11);
        let one = [&list];
        let hits = indexed_pass(&one, &work, ctx);
        assert_eq!(
            hits,
            linear_pass(&one, &work, ctx),
            "engines disagree at {n} rules"
        );
        let checks = work.len() as f64;
        let t_idx = time_best(|| indexed_pass(&one, &work, ctx));
        let t_lin = time_best(|| linear_pass(&one, &work, ctx));
        println!(
            "{n:>6} rules       : indexed {:>12.0} urls/s, linear {:>12.0} urls/s, speedup {:.1}x",
            checks / t_idx,
            checks / t_lin,
            t_lin / t_idx
        );
        scale_rows.push(format!(
            "    {{ \"rules\": {}, \"urls\": {}, \"hits\": {}, \"indexed_urls_per_s\": {:.0}, \"linear_urls_per_s\": {:.0}, \"speedup\": {:.2} }}",
            n,
            work.len(),
            hits,
            checks / t_idx,
            checks / t_lin,
            t_lin / t_idx
        ));
    }
    sections.push(format!("  \"scales\": [\n{}\n  ]", scale_rows.join(",\n")));

    let json = format!(
        "{{\n  \"seed\": 7,\n  \"context\": \"third_party_image\",\n{}\n}}\n",
        sections.join(",\n")
    );
    std::fs::write(&out, &json).expect("writing the benchmark report");
    println!("wrote {out}");
    if bundled_speedup < 5.0 {
        eprintln!("warning: bundled-scale speedup below the 5x target");
    }
}
