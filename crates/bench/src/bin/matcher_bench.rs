//! `matcher_bench` — fixed-seed indexed-vs-linear matcher throughput,
//! written to `BENCH_matcher.json` for the `--bench-smoke` gate.
//!
//! Usage:
//!
//! ```text
//! matcher_bench [output.json]
//! ```
//!
//! Measures the same workloads as the `kernels` criterion bench: the
//! bundled Table III lists over a mixed 200-URL set, and synthetic
//! lists of 10^2..10^4 rules over a 64-URL mix. "Linear" is the seed
//! implementation retained as `matches_linear` (per-call URL
//! serialization, full rule scan); "indexed" is the bucketed engine
//! behind `matches_view`.

use hbbtv_bench::matcher_workload::{synthetic_list, url_workload};
use hbbtv_filterlists::{bundled, stats, FilterList, RequestContext, UrlView};
use hbbtv_net::Url;
use std::time::Instant;

/// Fixed repeat counts per workload, recorded in the report so
/// trajectories stay comparable across PRs (no adaptive timing: the
/// JSON metadata is deterministic, only the throughput numbers move).
const ITERS_BUNDLED: usize = 40;

/// Repeats for each synthetic scale, matched by index with `SCALES`.
const ITERS_SCALES: [usize; 3] = [40, 16, 6];

/// Synthetic rule counts exercised by the scaling section.
const SCALES: [usize; 3] = [100, 1_000, 10_000];

/// Workload seeds (list contents and URL mix).
const LIST_SEED: u64 = 7;
const URL_SEED: u64 = 11;

/// Runs `work` exactly `iters` times and returns the best-observed
/// seconds per run.
fn time_best<F: FnMut() -> usize>(iters: usize, mut work: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(work());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// One counting pass over the workload (outside the timed loops):
/// resets the global engine cells, runs the indexed engine once with
/// counting on, and freezes the totals.
fn instrumented_pass(
    lists: &[&FilterList],
    urls: &[Url],
    ctx: RequestContext,
) -> stats::MatcherStats {
    stats::reset();
    stats::enable();
    std::hint::black_box(indexed_pass(lists, urls, ctx));
    stats::disable();
    stats::snapshot()
}

fn stats_json(s: &stats::MatcherStats) -> String {
    format!(
        "{{ \"queries\": {}, \"bucket_probes\": {}, \"bucket_candidates\": {}, \"residual_checks\": {}, \"hits\": {}, \"rules_per_query\": {:.2}, \"first_match_p50\": {}, \"first_match_p99\": {}, \"first_match_max\": {} }}",
        s.queries,
        s.bucket_probes,
        s.bucket_candidates,
        s.residual_checks,
        s.hits,
        s.rules_per_query(),
        s.first_match_distance.p50,
        s.first_match_distance.p99,
        s.first_match_distance.max
    )
}

fn indexed_pass(lists: &[&FilterList], urls: &[Url], ctx: RequestContext) -> usize {
    let mut hits = 0;
    let mut buf = String::new();
    for u in urls {
        let view = UrlView::of_url(u, &mut buf);
        for l in lists {
            if l.matches_view(&view, ctx) {
                hits += 1;
            }
        }
    }
    hits
}

fn linear_pass(lists: &[&FilterList], urls: &[Url], ctx: RequestContext) -> usize {
    let mut hits = 0;
    for u in urls {
        for l in lists {
            if l.matches_linear(u, ctx) {
                hits += 1;
            }
        }
    }
    hits
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_matcher.json".to_string());
    let ctx = RequestContext::third_party_image();
    let mut sections = Vec::new();

    // Bundled Table III lists, probed together per URL as the fused
    // per-exchange classification does.
    let lists = bundled::all_refs();
    let urls: Vec<Url> = (0..200)
        .map(|i| {
            let host = match i % 5 {
                0 => "tvping.com".to_string(),
                1 => "ad.doubleclick.net".to_string(),
                2 => format!("cdn{i}.hbbtv-kanal{i}.de"),
                3 => "an.xiti.com".to_string(),
                _ => format!("track{:02}.de", i % 38 + 1),
            };
            format!("http://{host}/path/{i}?site=s{i}").parse().unwrap()
        })
        .collect();
    let hits = indexed_pass(&lists, &urls, ctx);
    assert_eq!(
        hits,
        linear_pass(&lists, &urls, ctx),
        "engines disagree on the bundled workload"
    );
    // Counting pass first, outside the timed loops, so the timed runs
    // below see the disabled (one relaxed load) path.
    let bundled_stats = instrumented_pass(&lists, &urls, ctx);
    let total_rules: usize = lists.iter().map(|l| l.len()).sum();
    let rule_counts: Vec<String> = lists
        .iter()
        .map(|l| format!("\"{}\": {}", l.name(), l.len()))
        .collect();

    let checks = (urls.len() * lists.len()) as f64;
    let t_idx = time_best(ITERS_BUNDLED, || indexed_pass(&lists, &urls, ctx));
    let t_lin = time_best(ITERS_BUNDLED, || linear_pass(&lists, &urls, ctx));
    let bundled_speedup = t_lin / t_idx;
    println!(
        "bundled lists      : indexed {:>12.0} checks/s, linear {:>12.0} checks/s, speedup {:.1}x",
        checks / t_idx,
        checks / t_lin,
        bundled_speedup
    );
    sections.push(format!(
        "  \"bundled\": {{ \"lists\": {}, \"rules\": {}, \"rule_counts\": {{ {} }}, \"urls\": {}, \"iters\": {}, \"hits\": {}, \"indexed_checks_per_s\": {:.0}, \"linear_checks_per_s\": {:.0}, \"speedup\": {:.2}, \"engine\": {} }}",
        lists.len(),
        total_rules,
        rule_counts.join(", "),
        urls.len(),
        ITERS_BUNDLED,
        hits,
        checks / t_idx,
        checks / t_lin,
        bundled_speedup,
        stats_json(&bundled_stats)
    ));

    // Synthetic scales: indexed should stay flat while linear grows
    // with the rule count.
    let mut scale_rows = Vec::new();
    for (i, n) in SCALES.into_iter().enumerate() {
        let iters = ITERS_SCALES[i];
        let list = synthetic_list(n, LIST_SEED);
        let work = url_workload(64, n, URL_SEED);
        let one = [&list];
        let hits = indexed_pass(&one, &work, ctx);
        assert_eq!(
            hits,
            linear_pass(&one, &work, ctx),
            "engines disagree at {n} rules"
        );
        let scale_stats = instrumented_pass(&one, &work, ctx);
        let checks = work.len() as f64;
        let t_idx = time_best(iters, || indexed_pass(&one, &work, ctx));
        let t_lin = time_best(iters, || linear_pass(&one, &work, ctx));
        println!(
            "{n:>6} rules       : indexed {:>12.0} urls/s, linear {:>12.0} urls/s, speedup {:.1}x",
            checks / t_idx,
            checks / t_lin,
            t_lin / t_idx
        );
        scale_rows.push(format!(
            "    {{ \"rules\": {}, \"urls\": {}, \"iters\": {}, \"hits\": {}, \"indexed_urls_per_s\": {:.0}, \"linear_urls_per_s\": {:.0}, \"speedup\": {:.2}, \"engine\": {} }}",
            n,
            work.len(),
            iters,
            hits,
            checks / t_idx,
            checks / t_lin,
            t_lin / t_idx,
            stats_json(&scale_stats)
        ));
    }
    sections.push(format!("  \"scales\": [\n{}\n  ]", scale_rows.join(",\n")));

    let json = format!(
        "{{\n  \"list_seed\": {LIST_SEED},\n  \"url_seed\": {URL_SEED},\n  \"context\": \"third_party_image\",\n{}\n}}\n",
        sections.join(",\n")
    );
    std::fs::write(&out, &json).expect("writing the benchmark report");
    println!("wrote {out}");
    if bundled_speedup < 5.0 {
        eprintln!("warning: bundled-scale speedup below the 5x target");
    }
}
