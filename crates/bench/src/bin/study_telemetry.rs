//! `study_telemetry` — end-to-end study run under `Profile` telemetry,
//! written to `BENCH_study.json`.
//!
//! Usage:
//!
//! ```text
//! study_telemetry [output.json] [--scale <0..1>] [--seed <u64>] [--render <path>]
//! ```
//!
//! Runs all five measurement runs with a `Profile` scope (sim-time
//! journal plus wall-clock histograms), then computes the full report
//! under spans, and reports per-run visit/exchange totals, wall-time
//! percentiles for the instrumented spans, and per-stage analysis
//! times. The reconciliation invariant — summed per-visit exchange
//! counters equal the dataset's captured exchanges — is asserted here
//! on every run.
//!
//! The `scaling` block reruns study + analysis on private worker pools
//! of 1, 2, 4, … workers (up to the machine's parallelism), asserting
//! along the way that the rendered report is byte-identical at every
//! worker count. `--render <path>` additionally writes the rendered
//! report to `<path>`, which `scripts/check.sh --pool-smoke` diffs
//! across `HBBTV_POOL_WORKERS` settings as the cross-process drift
//! gate.

use hbbtv_study::obs::{MemoryRecorder, SimClock, Telemetry, TelemetryMode};
use hbbtv_study::report::StudyReport;
use hbbtv_study::{Ecosystem, StudyHarness, TelemetryConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut out = "BENCH_study.json".to_string();
    let mut scale = 0.1f64;
    let mut seed = 42u64;
    let mut render_out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a number in (0, 1]");
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--render" => {
                render_out = Some(it.next().expect("--render needs a path"));
            }
            other => out = other.to_string(),
        }
    }

    eprintln!("study_telemetry: seed {seed}, scale {scale}");
    let eco = Ecosystem::with_scale(seed, scale);

    let journal = Arc::new(MemoryRecorder::new());
    let harness = StudyHarness::with_telemetry(&eco, TelemetryConfig::profile(journal.clone()));
    let t0 = Instant::now();
    let dataset = harness.run_all();
    let study_wall = t0.elapsed().as_secs_f64();
    let tel = harness.telemetry().expect("profile mode records telemetry");
    let events = journal.take();

    // Reconciliation: per-visit exchange counters must sum to the
    // dataset's captured exchanges, run by run.
    for (run_tel, run_ds) in tel.runs.iter().zip(&dataset.runs) {
        assert_eq!(
            run_tel.exchanges_recorded,
            run_ds.captures.len() as u64,
            "run {}: telemetry exchanges disagree with the dataset",
            run_tel.run
        );
    }

    // The pre-substrate baseline first, then the frame-backed path, each
    // under its own Profile scope so the per-stage wall histograms can be
    // compared side by side.
    let naive_tel = Telemetry::scope(
        TelemetryMode::Profile,
        SimClock::starting_at(hbbtv_net::Timestamp::MEASUREMENT_START),
        1 << 55,
    );
    let t1 = Instant::now();
    let naive_report = StudyReport::compute_naive_with_telemetry(&eco, &dataset, &naive_tel);
    let naive_wall = t1.elapsed().as_secs_f64();
    std::hint::black_box(&naive_report);

    let t1 = Instant::now();
    let analysis_tel = Telemetry::scope(
        TelemetryMode::Profile,
        SimClock::starting_at(hbbtv_net::Timestamp::MEASUREMENT_START),
        1 << 56,
    );
    let report = StudyReport::compute_with_telemetry(&eco, &dataset, &analysis_tel);
    let analysis_wall = t1.elapsed().as_secs_f64();
    std::hint::black_box(&report);

    // Drift gate: the optimized substrate must render the byte-identical
    // report. A mismatch here means an analysis regressed, not just
    // slowed down.
    let rendered = report.render(&dataset);
    assert_eq!(
        rendered,
        naive_report.render(&dataset),
        "frame-backed report drifted from the naive reference"
    );
    if let Some(path) = &render_out {
        std::fs::write(path, &rendered).expect("writing the rendered report");
        eprintln!("wrote rendered report to {path}");
    }

    let visits = tel.total_visits();
    let mut sections = Vec::new();
    sections.push(format!(
        "  \"study\": {{ \"runs\": {}, \"visits\": {}, \"exchanges\": {}, \"bytes\": {}, \"journal_events\": {}, \"wall_s\": {:.3}, \"visits_per_s\": {:.1} }}",
        tel.runs.len(),
        visits,
        tel.total_exchanges(),
        tel.total_bytes(),
        events.len(),
        study_wall,
        visits as f64 / study_wall.max(1e-9)
    ));

    let mut run_rows = Vec::new();
    for run in &tel.runs {
        let visit_wall = run.histograms.get("wall.visit");
        let (p50, p99) = visit_wall.map_or((0, 0), |h| (h.p50, h.p99));
        run_rows.push(format!(
            "    {{ \"run\": \"{}\", \"visits\": {}, \"exchanges\": {}, \"bytes\": {}, \"visit_wall_p50_us\": {}, \"visit_wall_p99_us\": {} }}",
            run.run, run.visits, run.exchanges_recorded, run.bytes_recorded, p50, p99
        ));
    }
    sections.push(format!("  \"runs\": [\n{}\n  ]", run_rows.join(",\n")));

    // Per-stage naive-vs-frame walls from the two scopes' span
    // histograms; `speedup` is naive / frame, rounded to one decimal.
    // The one-time frame build gets its own stage line (no naive
    // counterpart — the naive path has no frame) instead of being
    // silently charged to whichever stage touched the frame first.
    let frame_walls = analysis_tel.histograms_snapshot();
    let frame_build_us = frame_walls.get("wall.frame.build").map_or(0, |h| h.max);
    let mut stage_rows = vec![format!(
        "    \"frame_build\": {{ \"frame_us\": {frame_build_us} }}"
    )];
    for (name, naive_h) in naive_tel.histograms_snapshot() {
        let Some(stage) = name.strip_prefix("wall.analysis.") else {
            continue;
        };
        let frame_us = frame_walls.get(&name).map_or(0, |h| h.max);
        let speedup = naive_h.max as f64 / (frame_us as f64).max(1.0);
        stage_rows.push(format!(
            "    \"{stage}\": {{ \"naive_us\": {}, \"frame_us\": {frame_us}, \"speedup\": {speedup:.1} }}",
            naive_h.max
        ));
    }
    sections.push(format!(
        "  \"analysis\": {{ \"naive_wall_s\": {naive_wall:.3}, \"frame_wall_s\": {analysis_wall:.3}, \"speedup\": {:.1}, \"frame_build_us\": {frame_build_us}, \"stages\": {{\n{}\n  }} }}",
        naive_wall / analysis_wall.max(1e-9),
        stage_rows.join(",\n")
    ));

    // The 1→N-core scaling sweep: the whole study plus the frame-backed
    // analysis on private pools of doubling worker counts, each point
    // gated on rendering the byte-identical report. Worker counts are
    // pool threads; the submitting thread always helps, so a "1-worker"
    // point has at most two executors.
    let max_workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1usize, 2, 4];
    counts.push(max_workers);
    counts.sort_unstable();
    counts.dedup();
    let mut scaling_rows = Vec::new();
    for &k in &counts {
        let rt = hbbtv_study::analysis::Runtime::with_workers(k);
        let (ds_k, report_k, study_s, analysis_s) = rt.install(|| {
            let t = Instant::now();
            let ds = StudyHarness::new(&eco).run_all();
            let study_s = t.elapsed().as_secs_f64();
            let t = Instant::now();
            let report = StudyReport::compute(&eco, &ds);
            let analysis_s = t.elapsed().as_secs_f64();
            (ds, report, study_s, analysis_s)
        });
        assert_eq!(
            report_k.render(&ds_k),
            rendered,
            "rendered report drifted at {k} workers"
        );
        eprintln!("scaling: {k} workers -> study {study_s:.3}s, analysis {analysis_s:.3}s");
        scaling_rows.push(format!(
            "    {{ \"workers\": {k}, \"study_wall_s\": {study_s:.3}, \"analysis_wall_s\": {analysis_s:.3} }}"
        ));
    }
    // Record the largest worker count actually swept, not the raw
    // `available_parallelism` probe (which reports 1 in restricted
    // environments even though larger pools ran).
    let swept_max = *counts.last().expect("the sweep has at least one point");
    sections.push(format!(
        "  \"scaling\": {{ \"max_workers\": {swept_max}, \"points\": [\n{}\n  ] }}",
        scaling_rows.join(",\n")
    ));

    // The incremental engine: feed the same dataset in k = 5%-of-N
    // epochs under an out-of-core budget, rendering a live delta report
    // at three prefixes. Each prefix is hard-gated byte-identical
    // against a full recompute; the delta-vs-full ratio is recorded
    // (target >=5x at the 0.95 prefix), not asserted.
    let total_exchanges: usize = dataset.runs.iter().map(|r| r.captures.len()).sum();
    let epoch = (total_exchanges / 20).max(1);
    let frame_budget = 1usize << 19;
    let mut inc = hbbtv_study::analysis::IncrementalStudy::with_budget(Some(frame_budget));
    let mut append_wall = 0.0f64;
    let mut fed = 0usize;
    let fractions = [0.5f64, 0.75, 0.95];
    let targets: Vec<usize> = fractions
        .iter()
        .map(|f| ((total_exchanges as f64 * f) as usize).max(1))
        .collect();
    let mut next_target = 0usize;
    let mut prefix_rows = Vec::new();
    for run in &dataset.runs {
        let mut meta = run.clone();
        let caps = std::mem::take(&mut meta.captures);
        let t = Instant::now();
        inc.push_run(meta);
        append_wall += t.elapsed().as_secs_f64();
        for chunk in caps.chunks(epoch) {
            let t = Instant::now();
            inc.extend_run(chunk.to_vec());
            append_wall += t.elapsed().as_secs_f64();
            fed += chunk.len();
            while next_target < targets.len() && fed >= targets[next_target] {
                let frac = fractions[next_target];
                let t = Instant::now();
                let delta_render = inc.render(&eco);
                let delta_s = t.elapsed().as_secs_f64();
                let prefix_ds = inc.dataset().clone();
                let t = Instant::now();
                let full_render = StudyReport::compute(&eco, &prefix_ds).render(&prefix_ds);
                let full_s = t.elapsed().as_secs_f64();
                assert_eq!(
                    delta_render, full_render,
                    "incremental report drifted from the full recompute at the {frac} prefix"
                );
                let ratio = full_s / delta_s.max(1e-9);
                eprintln!(
                    "incremental: prefix {frac} ({fed} exchanges) -> delta {delta_s:.4}s \
                     vs full {full_s:.4}s ({ratio:.1}x)"
                );
                prefix_rows.push(format!(
                    "    {{ \"fraction\": {frac}, \"exchanges\": {fed}, \"delta_report_s\": {delta_s:.4}, \"full_recompute_s\": {full_s:.4}, \"ratio\": {ratio:.1} }}"
                ));
                next_target += 1;
            }
        }
    }
    let t = Instant::now();
    let final_render = inc.render(&eco);
    let final_delta_s = t.elapsed().as_secs_f64();
    assert_eq!(
        final_render, rendered,
        "incremental final render drifted from the frame-backed report"
    );
    let append_rate = total_exchanges as f64 / append_wall.max(1e-9);
    eprintln!(
        "incremental: {total_exchanges} exchanges appended in {append_wall:.3}s \
         ({append_rate:.0}/s), peak {} resident bytes under a {frame_budget}-byte budget, \
         {} spill writes / {} loads",
        inc.peak_resident_bytes(),
        inc.spill_writes(),
        inc.spill_loads()
    );
    sections.push(format!(
        "  \"incremental\": {{ \"exchanges\": {total_exchanges}, \"epoch_exchanges\": {epoch}, \"append_wall_s\": {append_wall:.3}, \"append_exchanges_per_s\": {append_rate:.0}, \"budget_bytes\": {frame_budget}, \"peak_resident_bytes\": {}, \"spill_writes\": {}, \"spill_loads\": {}, \"delta_recomputes\": {}, \"final_delta_report_s\": {final_delta_s:.4}, \"prefixes\": [\n{}\n  ] }}",
        inc.peak_resident_bytes(),
        inc.spill_writes(),
        inc.spill_loads(),
        inc.delta_recomputes(),
        prefix_rows.join(",\n")
    ));

    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"scale\": {scale},\n{}\n}}\n",
        sections.join(",\n")
    );
    std::fs::write(&out, &json).expect("writing the benchmark report");
    println!(
        "wrote {out}: {} visits, {} exchanges in {:.2}s study + {:.2}s analysis",
        visits,
        tel.total_exchanges(),
        study_wall,
        analysis_wall
    );
}
