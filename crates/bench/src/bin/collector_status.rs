//! `collector_status` — a one-line-per-poll operator view of a running
//! ingest collector, over the same TCP port the TVs stream to.
//!
//! Usage:
//!
//! ```text
//! collector_status <host:port> [--interval-ms N] [--count N]
//! ```
//!
//! Each poll sends one out-of-band `STATS` frame on a persistent
//! connection and renders the answer: health verdict (with reasons when
//! not healthy), session accounting, throughput counters, and the
//! backpressure picture. `--count 0` (the default) polls forever;
//! `scripts/check.sh --status-smoke` runs it with `--count 3` against
//! the status smoke's held-open collector.

use hbbtv_ingest::frame::StatsRequest;
use hbbtv_ingest::{Command, Frame, FrameDecoder, StatsReport};
use hbbtv_obs::HealthStatus;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!("usage: collector_status <host:port> [--interval-ms N] [--count N]");
    std::process::exit(2);
}

fn poll(stream: &mut TcpStream, decoder: &mut FrameDecoder, seq: u32) -> StatsReport {
    let req = Frame::json(Command::Stats, seq, &StatsRequest::default());
    stream
        .write_all(&req.encode())
        .expect("STATS request sends");
    let mut buf = [0u8; 64 * 1024];
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        while let Some(frame) = decoder.next_frame().expect("answer stream decodes") {
            if frame.command == Command::StatsReply {
                return frame.parse().expect("STATS_REPLY parses");
            }
        }
        if Instant::now() > deadline {
            eprintln!("collector did not answer STATS within 10s");
            std::process::exit(1);
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                eprintln!("collector hung up");
                std::process::exit(1);
            }
            Ok(n) => decoder.push_bytes(&buf[..n]),
            Err(e) => {
                eprintln!("read error: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn render_line(stats: &StatsReport) -> String {
    let c = |name: &str| stats.counters.get(name).copied().unwrap_or(0);
    let g = |name: &str| stats.gauges.get(name).copied().unwrap_or(0);
    let streaming = stats
        .sessions
        .iter()
        .filter(|s| s.state != "observer")
        .count();
    let stalled = stats.sessions.iter().filter(|s| s.stalled).count();
    let mut line = format!(
        "health={} open={} (streaming={} stalled={}) done={} rejected={} gc={} \
         exchanges={} bytes={} frames={} queue={} stalls={}",
        stats.health.status,
        g("ingest.sessions_open"),
        streaming,
        stalled,
        c("ingest.sessions_completed"),
        c("ingest.sessions_rejected"),
        c("ingest.sessions_gc"),
        c("ingest.exchanges"),
        c("ingest.bytes"),
        c("ingest.frames"),
        g("ingest.queue_depth"),
        c("ingest.backpressure_stalls"),
    );
    if stats.health.status != HealthStatus::Healthy {
        let reasons: Vec<String> = stats
            .health
            .reasons
            .iter()
            .map(|r| format!("{}={:.2}/{:.2}", r.code, r.value, r.threshold))
            .collect();
        line.push_str(&format!(" reasons=[{}]", reasons.join(",")));
    }
    line
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(target) = args.next() else { usage() };
    if target.starts_with('-') {
        usage();
    }
    let mut interval = Duration::from_secs(1);
    let mut count = 0u64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--interval-ms" => {
                let ms: u64 = args
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .unwrap_or_else(|_| usage());
                interval = Duration::from_millis(ms);
            }
            "--count" => {
                count = args
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }

    let mut stream = TcpStream::connect(&target)
        .unwrap_or_else(|e| panic!("cannot connect to collector at {target}: {e}"));
    let mut decoder = FrameDecoder::new();
    let mut polls = 0u64;
    let mut seq = 0u32;
    loop {
        let stats = poll(&mut stream, &mut decoder, seq);
        seq += 1;
        println!("{}", render_line(&stats));
        polls += 1;
        if count > 0 && polls >= count {
            break;
        }
        std::thread::sleep(interval);
    }
}
