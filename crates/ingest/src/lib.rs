//! `hbbtv-ingest` — a streaming capture collector for distributed
//! measurement runs.
//!
//! The in-process harness builds a [`StudyDataset`](hbbtv_study::StudyDataset)
//! by running every simulated TV inside one address space. A production
//! fleet cannot: TVs in different households capture locally and stream
//! their exchanges to a central collector. This crate is that
//! collector, plus the simulated fleet that exercises it.
//!
//! The design bar is **byte-identical reassembly**: a study streamed
//! through TCP sessions — sharded, concurrent, interleaved — must
//! reassemble into a `StudyDataset` whose full analysis report renders
//! byte-identically to the in-process build. Everything else (frame
//! codec, per-session sequence numbers, visit-range sharding, bounded
//! queues) exists to make that bar reachable and *checkable*.
//!
//! Layers, bottom up:
//!
//! - [`frame`]: length-prefixed little-endian frame codec and the
//!   command/answer payload schemas (`HELLO`/`ACK`, `VISIT_BEGIN`,
//!   `CAPTURE`, `VISIT_END`, `HEARTBEAT`, `BYE`, `ERR`, plus the
//!   out-of-band `STATS`/`STATS_REPLY` introspection pair). The capture
//!   payload is the same serde schema as the golden study dataset.
//! - [`session`]: the per-connection protocol state machine (pure: it
//!   consumes frames, emits actions, never touches a socket) and the
//!   [`Assembler`](session::Assembler) that reassembles shard results
//!   into runs and studies.
//! - [`server`]: the threaded collector — nonblocking acceptor, reader
//!   threads, a dispatcher that JSON-decodes capture batches on the
//!   work-stealing analysis pool, bounded per-session queues for
//!   backpressure, heartbeat-timeout GC, and `hbbtv-obs` telemetry
//!   (`ingest.sessions`, `ingest.frames`, `ingest.bytes`,
//!   `ingest.backpressure_stalls`, …). The operations plane rides the
//!   same port: any connection may send a `STATS` frame and get back a
//!   [`StatsReport`](frame::StatsReport) (health verdict, metric
//!   snapshot, per-session table), and
//!   [`IngestConfig::scrape_addr`](server::IngestConfig::scrape_addr)
//!   mounts a Prometheus-style `/metrics` + `/health` endpoint.
//! - [`client`]: [`SimTvClient`](client::SimTvClient) and the
//!   visit-range sharding ([`shard_study`](client::shard_study)) that
//!   turns a dataset into a fleet of sessions.
//! - [`fault`]: seeded fault scripts (torn frames, mid-frame
//!   disconnects, duplicates, reorders, garbage, stalls) for the
//!   fault-injection suite.
//! - [`discovery`]: the UDP "where is the collector?" responder.
//! - [`live`]: [`LiveStudy`](live::LiveStudy), which drains complete
//!   runs out of a collector in canonical order into the incremental
//!   study engine, so a rendered report is available mid-stream —
//!   byte-identical to the post-hoc build over the same runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod discovery;
pub mod fault;
pub mod frame;
pub mod live;
pub mod server;
pub mod session;

pub use client::{
    shard_run, shard_study, trailer_of, ClientError, ClientReport, FaultOutcome, SessionSpec,
    SimTvClient, StreamOptions,
};
pub use discovery::{discover, DiscoveryResponder};
pub use fault::{FaultKind, FaultPlan, FaultStep};
pub use frame::{
    parse_stats_request, Command, Frame, FrameDecoder, RunTrailer, SessionStat, StatsReport,
    StatsRequest, PROTO_VERSION,
};
pub use live::LiveStudy;
pub use server::{IngestConfig, IngestServer, RejectedSession};
pub use session::{Assembler, SessionState, Violation};
