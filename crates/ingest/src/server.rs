//! The TCP ingest server: bounded reader threads, pool-fed decoding,
//! backpressure, and heartbeat GC.
//!
//! ## Thread model
//!
//! * **Acceptor** — one thread polling the listener; beyond
//!   [`IngestConfig::max_sessions`] live connections it refuses (closes)
//!   new sockets instead of queueing unbounded state.
//! * **Readers** — [`IngestConfig::reader_threads`] threads, each
//!   multiplexing a share of the connections over non-blocking reads.
//!   Readers run the [`SessionState`] machine inline (control frames are
//!   cheap) and push `CAPTURE` payloads onto the session's bounded
//!   pending queue. When that queue is full the reader simply **stops
//!   reading the socket** — TCP flow control then pushes back on the
//!   client, which is the whole backpressure story: a slow collector
//!   never buffers unboundedly, it slows the TVs down.
//! * **Dispatcher** — one thread draining pending queues in connection
//!   order and fanning the JSON batch decodes over the PR-6
//!   work-stealing pool (`hbbtv_study::analysis::par_map`). Results are
//!   applied back per session *in queue order*, so a session's capture
//!   log grows exactly in streamed order regardless of worker count.
//!   The dispatcher also finalizes drained `BYE` sessions (deferred ACK
//!   with the authoritative exchange count) and garbage-collects
//!   sessions whose last frame is older than
//!   [`IngestConfig::heartbeat_timeout`].
//!
//! A rejected or timed-out session surrenders nothing to the
//! [`Assembler`]: its shard never lands, its run stays incomplete, and
//! sibling sessions are untouched. That containment is what the
//! fault-injection suite (`tests/ingest_faults.rs`) pins down.

use crate::frame::{
    parse_stats_request, Ack, Command, ErrInfo, Frame, FrameDecoder, SessionStat, StatsReport,
    PROTO_VERSION,
};
use crate::session::{Action, Assembler, SessionState, Violation};
use hbbtv_obs::{
    keys, Counter, Gauge, HealthThresholds, Histogram, ScrapeServer, SimClock, Telemetry,
    TelemetryMode, Watchdog,
};
use hbbtv_study::analysis::Runtime;
use hbbtv_study::{RunDataset, RunKind, StudyDataset};
use parking_lot::Mutex;
use std::collections::{HashSet, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`IngestServer`].
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Address to listen on; port 0 picks an ephemeral port.
    pub addr: SocketAddr,
    /// Reader threads multiplexing connections (bounded regardless of
    /// session count).
    pub reader_threads: usize,
    /// Maximum live connections; further accepts are refused.
    pub max_sessions: usize,
    /// Maximum undecoded capture batches buffered per session before the
    /// reader stops reading its socket (the backpressure bound).
    pub session_queue: usize,
    /// A session with no frame for this long is rejected and collected.
    pub heartbeat_timeout: Duration,
    /// Telemetry mode for the server's `ingest.*` counters and
    /// histograms.
    pub telemetry: TelemetryMode,
    /// Force the decode pool to a private runtime with this many
    /// workers; `None` uses the process-wide pool. Tests sweep {1, 2, 8}
    /// through this knob.
    pub pool_workers: Option<usize>,
    /// Mount a Prometheus-style scrape endpoint on this address (port 0
    /// picks an ephemeral port); `None` (the default) mounts nothing.
    pub scrape_addr: Option<SocketAddr>,
    /// Thresholds for the health watchdog behind `/health`, the
    /// `health_status` gauge, and the `STATS` answer.
    pub health: HealthThresholds,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            addr: "127.0.0.1:0".parse().expect("literal addr"),
            reader_threads: 2,
            max_sessions: 2048,
            session_queue: 8,
            heartbeat_timeout: Duration::from_secs(30),
            telemetry: TelemetryMode::Metrics,
            pool_workers: None,
            scrape_addr: None,
            health: HealthThresholds::default(),
        }
    }
}

/// The `ingest.*` metric cells, pre-resolved once.
#[derive(Debug, Clone)]
pub struct IngestMetrics {
    /// Sessions accepted (`ingest.sessions`).
    pub sessions: Counter,
    /// Sessions that finalized cleanly (`ingest.sessions_completed`).
    pub sessions_completed: Counter,
    /// Sessions rejected for protocol violations
    /// (`ingest.sessions_rejected`).
    pub sessions_rejected: Counter,
    /// Sessions collected by the heartbeat GC (`ingest.sessions_gc`).
    pub sessions_gc: Counter,
    /// Connections refused at the accept cap (`ingest.sessions_refused`).
    pub sessions_refused: Counter,
    /// Observer connections that closed cleanly after only `STATS`
    /// traffic (`ingest.sessions_observer`).
    pub sessions_observer: Counter,
    /// `STATS` requests answered (`ingest.stats_requests`). STATS frames
    /// are *not* counted in `ingest.frames` — they are out-of-band — but
    /// their bytes do land in `ingest.bytes`.
    pub stats_requests: Counter,
    /// Frames consumed (`ingest.frames`).
    pub frames: Counter,
    /// Raw bytes read off sockets (`ingest.bytes`).
    pub bytes: Counter,
    /// Exchanges decoded out of capture batches (`ingest.exchanges`).
    pub exchanges: Counter,
    /// Reader stalls on a full session queue
    /// (`ingest.backpressure_stalls`).
    pub backpressure_stalls: Counter,
    /// Per-batch exchange counts (`ingest.batch_exchanges`).
    pub batch_exchanges: Histogram,
    /// Per-session exchange totals at finalize
    /// (`ingest.session_exchanges`).
    pub session_exchanges: Histogram,
    /// Live sessions right now (`ingest.sessions_open`, gauge).
    pub sessions_open: Gauge,
    /// Undecoded batches queued across sessions, set once per dispatcher
    /// round (`ingest.queue_depth`, gauge).
    pub queue_depth: Gauge,
    /// High-water mark of the queue depth (`ingest.queue_depth_hw`,
    /// gauge).
    pub queue_depth_hw: Gauge,
}

impl IngestMetrics {
    fn resolve(tel: &Telemetry) -> IngestMetrics {
        IngestMetrics {
            sessions: tel.counter("ingest.sessions"),
            sessions_completed: tel.counter("ingest.sessions_completed"),
            sessions_rejected: tel.counter("ingest.sessions_rejected"),
            sessions_gc: tel.counter(keys::INGEST_SESSIONS_GC),
            sessions_refused: tel.counter("ingest.sessions_refused"),
            sessions_observer: tel.counter("ingest.sessions_observer"),
            stats_requests: tel.counter("ingest.stats_requests"),
            frames: tel.counter("ingest.frames"),
            bytes: tel.counter("ingest.bytes"),
            exchanges: tel.counter("ingest.exchanges"),
            backpressure_stalls: tel.counter(keys::INGEST_BACKPRESSURE_STALLS),
            batch_exchanges: tel.histogram("ingest.batch_exchanges"),
            session_exchanges: tel.histogram("ingest.session_exchanges"),
            sessions_open: tel.gauge(keys::INGEST_SESSIONS_OPEN),
            queue_depth: tel.gauge(keys::INGEST_QUEUE_DEPTH),
            queue_depth_hw: tel.gauge(keys::INGEST_QUEUE_DEPTH_HW),
        }
    }
}

/// A rejected session, kept for diagnosis (and the fault tests).
#[derive(Debug, Clone)]
pub struct RejectedSession {
    /// `(study, run, shard)` if the session got past HELLO.
    pub identity: Option<(String, String, u32)>,
    /// Why it was rejected.
    pub reason: String,
    /// Whether the heartbeat GC (rather than a protocol violation)
    /// collected it.
    pub timed_out: bool,
}

/// Lock-free mirror of one connection's observable state, shared with
/// the `STATS` session table so a report never has to take a `Conn`
/// lock (a reader blocked mid-frame must not block introspection).
struct SessionInfo {
    /// `(study, run, shard, shards)` once HELLO registers.
    identity: Mutex<Option<(String, String, u32, u32)>>,
    /// Phase code: 0 await_hello, 1 active, 2 in_visit, 3 draining.
    state: AtomicU8,
    visits: AtomicU64,
    exchanges: AtomicU64,
    bytes: AtomicU64,
    queued: AtomicU64,
    stalled: AtomicBool,
    /// Milliseconds since `Shared::epoch` of the last read activity.
    last_activity_ms: AtomicU64,
    stats_served: AtomicU64,
    /// Set exactly once when the session leaves the live table (by any
    /// terminal path); guards the `sessions_open` decrement.
    closed: AtomicBool,
}

impl SessionInfo {
    fn new(epoch_ms: u64) -> SessionInfo {
        SessionInfo {
            identity: Mutex::new(None),
            state: AtomicU8::new(0),
            visits: AtomicU64::new(0),
            exchanges: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            stalled: AtomicBool::new(false),
            last_activity_ms: AtomicU64::new(epoch_ms),
            stats_served: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        }
    }

    /// Copies the session machine's observable fields into the mirror.
    fn sync(&self, s: &SessionState) {
        let code = match s.phase_name() {
            "active" => 1,
            "in_visit" => 2,
            "draining" => 3,
            _ => 0,
        };
        self.state.store(code, Ordering::Relaxed);
        self.visits.store(s.visit_count() as u64, Ordering::Relaxed);
        self.exchanges.store(s.exchanges(), Ordering::Relaxed);
    }

    fn state_name(&self) -> &'static str {
        let observer = self.stats_served.load(Ordering::Relaxed) > 0;
        match self.state.load(Ordering::Relaxed) {
            0 if observer => "observer",
            0 => "await_hello",
            1 => "active",
            2 => "in_visit",
            _ => "draining",
        }
    }
}

struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    session: SessionState,
    /// Pending capture batches: (visit ordinal, raw payload).
    pending: VecDeque<(usize, Vec<u8>)>,
    /// Batches handed to the current decode round, still counting
    /// against the queue bound.
    inflight: usize,
    last_activity: Instant,
    stalled: bool,
    out_seq: u32,
    bye_seq: Option<u32>,
    done: bool,
    rejected: bool,
    info: Arc<SessionInfo>,
}

impl Conn {
    fn queue_len(&self) -> usize {
        self.pending.len() + self.inflight
    }

    fn send_frame(&mut self, frame: &Frame) {
        // Answer frames are tiny (tens of bytes); if the client stopped
        // reading, a bounded retry loop gives up rather than wedging the
        // reader or dispatcher.
        let bytes = frame.encode();
        let mut written = 0;
        let deadline = Instant::now() + Duration::from_secs(5);
        while written < bytes.len() {
            match self.stream.write(&bytes[written..]) {
                Ok(0) => return,
                Ok(n) => written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        return;
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }
}

type ConnRef = Arc<Mutex<Conn>>;

struct Shared {
    cfg: IngestConfig,
    telemetry: Telemetry,
    metrics: IngestMetrics,
    /// All live connections, in accept order (the dispatcher's drain
    /// order, which keeps decode application deterministic per session).
    conns: Mutex<Vec<ConnRef>>,
    /// Per-reader inboxes of newly accepted connections.
    inboxes: Vec<Mutex<Vec<ConnRef>>>,
    /// Identities of sessions currently streaming, to refuse duplicate
    /// shards while the first is still live.
    active_keys: Mutex<HashSet<(String, String, u32)>>,
    assembler: Mutex<Assembler>,
    rejected: Mutex<Vec<RejectedSession>>,
    shutdown: AtomicBool,
    /// Live-session mirrors for the `STATS` table, in accept order;
    /// swept of closed entries each dispatcher round.
    table: Mutex<Vec<Arc<SessionInfo>>>,
    /// Zero point for the relative-millisecond timestamps in
    /// [`SessionInfo`].
    epoch: Instant,
    /// The health watchdog, shared with the scrape endpoint.
    watchdog: Arc<Mutex<Watchdog>>,
}

impl Shared {
    fn epoch_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Marks a session's mirror closed (idempotent) and keeps the
    /// `sessions_open` gauge honest: exactly one decrement per accept,
    /// whatever terminal path the session takes.
    fn mark_closed(&self, info: &SessionInfo) {
        if !info.closed.swap(true, Ordering::SeqCst) {
            self.metrics.sessions_open.add(-1);
        }
    }

    fn reject(&self, conn: &mut Conn, violation: &Violation) {
        self.reject_inner(conn, violation, true);
    }

    /// `release_key = false` for a duplicate-shard HELLO: the active key
    /// belongs to the original session and must survive this rejection.
    fn reject_inner(&self, conn: &mut Conn, violation: &Violation, release_key: bool) {
        if conn.rejected || conn.done {
            return;
        }
        conn.rejected = true;
        let timed_out = matches!(violation, Violation::HeartbeatTimeout);
        if timed_out {
            self.metrics.sessions_gc.inc();
        } else {
            self.metrics.sessions_rejected.inc();
        }
        let identity = conn
            .session
            .hello()
            .map(|h| (h.study.clone(), h.run.clone(), h.shard));
        if release_key {
            if let Some(key) = &identity {
                self.active_keys.lock().remove(key);
            }
        }
        let reason = violation.to_string();
        let err = Frame::json(
            Command::Err,
            conn.out_seq,
            &ErrInfo {
                reason: reason.clone(),
            },
        );
        conn.out_seq += 1;
        conn.send_frame(&err);
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        self.mark_closed(&conn.info);
        self.rejected.lock().push(RejectedSession {
            identity,
            reason,
            timed_out,
        });
    }
}

/// Builds the `STATS` answer: health verdict, full metric snapshot, and
/// the per-session table — all from lock-free mirrors and telemetry
/// cells, never a `Conn` lock.
fn stats_report(shared: &Shared) -> StatsReport {
    let health = shared.watchdog.lock().assess(&shared.telemetry);
    let now_ms = shared.epoch_ms();
    let sessions = shared
        .table
        .lock()
        .iter()
        .filter(|info| !info.closed.load(Ordering::SeqCst))
        .map(|info| {
            let identity = info.identity.lock().clone();
            let (study, run, shard, shards) =
                identity.unwrap_or_else(|| (String::new(), String::new(), 0, 0));
            let last = info.last_activity_ms.load(Ordering::Relaxed);
            SessionStat {
                study,
                run,
                shard,
                shards,
                state: info.state_name().to_string(),
                visits: info.visits.load(Ordering::Relaxed),
                exchanges: info.exchanges.load(Ordering::Relaxed),
                bytes: info.bytes.load(Ordering::Relaxed),
                queued: info.queued.load(Ordering::Relaxed),
                stalled: info.stalled.load(Ordering::Relaxed),
                last_activity_ms: now_ms.saturating_sub(last),
                stats_served: info.stats_served.load(Ordering::Relaxed),
            }
        })
        .collect();
    StatsReport {
        proto: PROTO_VERSION,
        health,
        counters: shared.telemetry.counters_snapshot(),
        gauges: shared.telemetry.gauges_snapshot(),
        histograms: shared.telemetry.histograms_snapshot(),
        sessions,
    }
}

/// A running ingest collector. Dropping it (or calling
/// [`IngestServer::shutdown`]) stops every thread.
pub struct IngestServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
    scrape: Option<ScrapeServer>,
}

impl IngestServer {
    /// Binds and starts the collector (and, when
    /// [`IngestConfig::scrape_addr`] is set, its scrape endpoint).
    pub fn start(cfg: IngestConfig) -> std::io::Result<IngestServer> {
        let listener = TcpListener::bind(cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let telemetry = Telemetry::scope(cfg.telemetry, SimClock::new(), 0);
        let metrics = IngestMetrics::resolve(&telemetry);
        let readers = cfg.reader_threads.max(1);
        let watchdog = Arc::new(Mutex::new(Watchdog::new(cfg.health.clone())));
        let scrape = match cfg.scrape_addr {
            Some(scrape_addr) => Some(ScrapeServer::start(
                scrape_addr,
                telemetry.clone(),
                Arc::clone(&watchdog),
            )?),
            None => None,
        };
        let shared = Arc::new(Shared {
            telemetry,
            metrics,
            conns: Mutex::new(Vec::new()),
            inboxes: (0..readers).map(|_| Mutex::new(Vec::new())).collect(),
            active_keys: Mutex::new(HashSet::new()),
            assembler: Mutex::new(Assembler::new()),
            rejected: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            table: Mutex::new(Vec::new()),
            epoch: Instant::now(),
            watchdog,
            cfg,
        });

        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("ingest-accept".into())
                    .spawn(move || acceptor_loop(&shared, listener))?,
            );
        }
        for r in 0..readers {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ingest-read-{r}"))
                    .spawn(move || reader_loop(&shared, r))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("ingest-dispatch".into())
                    .spawn(move || dispatcher_loop(&shared))?,
            );
        }
        Ok(IngestServer {
            shared,
            addr,
            threads,
            scrape,
        })
    }

    /// The bound TCP address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scrape endpoint's bound address, when one is mounted.
    pub fn scrape_addr(&self) -> Option<SocketAddr> {
        self.scrape.as_ref().map(|s| s.addr())
    }

    /// Assesses health now, as the scrape endpoint and `STATS` answers
    /// would report it.
    pub fn health(&self) -> hbbtv_obs::HealthReport {
        self.shared.watchdog.lock().assess(&self.shared.telemetry)
    }

    /// The server's telemetry scope (all `ingest.*` cells live here).
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// Run kinds of `study` whose every shard has landed.
    pub fn complete_runs(&self, study: &str) -> Vec<RunKind> {
        self.shared.assembler.lock().complete_runs(study)
    }

    /// Removes and reassembles one complete run.
    pub fn take_run(&self, study: &str, kind: RunKind) -> Result<RunDataset, String> {
        self.shared.assembler.lock().take_run(study, kind)
    }

    /// Removes and reassembles every complete run of `study`.
    pub fn take_study(&self, study: &str) -> Result<StudyDataset, String> {
        self.shared.assembler.lock().take_study(study)
    }

    /// Polls until `study` has `runs` complete runs, then reassembles.
    /// Fails fast once `timeout` passes.
    pub fn wait_study(
        &self,
        study: &str,
        runs: usize,
        timeout: Duration,
    ) -> Result<StudyDataset, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let complete = self.complete_runs(study).len();
            if complete >= runs {
                return self.take_study(study);
            }
            if Instant::now() > deadline {
                return Err(format!(
                    "timed out waiting for {runs} runs of {study:?}; {complete} complete, \
                     {} sessions rejected",
                    self.rejections().len()
                ));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Polls until `n` sessions have been rejected/collected (fault
    /// tests), failing after `timeout`.
    pub fn wait_rejections(
        &self,
        n: usize,
        timeout: Duration,
    ) -> Result<Vec<RejectedSession>, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let rejected = self.rejections();
            if rejected.len() >= n {
                return Ok(rejected);
            }
            if Instant::now() > deadline {
                return Err(format!(
                    "timed out waiting for {n} rejections, have {}",
                    rejected.len()
                ));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Snapshot of rejected sessions so far.
    pub fn rejections(&self) -> Vec<RejectedSession> {
        self.shared.rejected.lock().clone()
    }

    /// Stops every server thread and waits for them.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for IngestServer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

fn acceptor_loop(shared: &Shared, listener: TcpListener) {
    let mut next_reader = 0usize;
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.conns.lock().len() >= shared.cfg.max_sessions {
                    shared.metrics.sessions_refused.inc();
                    drop(stream);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let info = Arc::new(SessionInfo::new(shared.epoch_ms()));
                let conn = Arc::new(Mutex::new(Conn {
                    stream,
                    decoder: FrameDecoder::new(),
                    session: SessionState::new(),
                    pending: VecDeque::new(),
                    inflight: 0,
                    last_activity: Instant::now(),
                    stalled: false,
                    out_seq: 0,
                    bye_seq: None,
                    done: false,
                    rejected: false,
                    info: Arc::clone(&info),
                }));
                shared.metrics.sessions.inc();
                shared.metrics.sessions_open.add(1);
                shared.table.lock().push(info);
                shared.conns.lock().push(Arc::clone(&conn));
                shared.inboxes[next_reader].lock().push(conn);
                next_reader = (next_reader + 1) % shared.inboxes.len();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn reader_loop(shared: &Shared, index: usize) {
    let mut mine: Vec<ConnRef> = Vec::new();
    let mut buf = vec![0u8; 64 * 1024];
    while !shared.shutdown.load(Ordering::SeqCst) {
        mine.extend(shared.inboxes[index].lock().drain(..));
        let mut progressed = false;
        mine.retain(|conn_ref| {
            let mut conn = conn_ref.lock();
            if conn.done || conn.rejected {
                return false;
            }
            // Backpressure: a full pending queue parks the socket
            // unread; the client's writes stall on TCP flow control.
            if conn.queue_len() >= shared.cfg.session_queue {
                if !conn.stalled {
                    conn.stalled = true;
                    conn.info.stalled.store(true, Ordering::Relaxed);
                    shared.metrics.backpressure_stalls.inc();
                }
                return true;
            }
            conn.stalled = false;
            conn.info.stalled.store(false, Ordering::Relaxed);
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    // EOF. Mid-session (or mid-frame) this is a torn
                    // stream; after BYE the dispatcher owns the session
                    // and EOF is just the client hanging up post-ack. An
                    // *observer* — no HELLO, only answered STATS, at a
                    // frame boundary — hanging up is a clean close, not
                    // a torn session.
                    if !conn.session.bye_seen() {
                        if conn.session.hello().is_none()
                            && conn.info.stats_served.load(Ordering::Relaxed) > 0
                            && conn.decoder.at_frame_boundary()
                        {
                            conn.done = true;
                            shared.metrics.sessions_observer.inc();
                            shared.mark_closed(&conn.info);
                            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                            return false;
                        }
                        shared.reject(&mut conn, &Violation::Eof);
                        return false;
                    }
                    true
                }
                Ok(n) => {
                    progressed = true;
                    shared.metrics.bytes.add(n as u64);
                    conn.last_activity = Instant::now();
                    let now_ms = shared.epoch_ms();
                    conn.info.bytes.fetch_add(n as u64, Ordering::Relaxed);
                    conn.info.last_activity_ms.store(now_ms, Ordering::Relaxed);
                    conn.decoder.push_bytes(&buf[..n]);
                    drive_frames(shared, &mut conn)
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => true,
                Err(e) if e.kind() == ErrorKind::Interrupted => true,
                Err(e) => {
                    shared.reject(&mut conn, &Violation::Io(e.to_string()));
                    false
                }
            }
        });
        if !progressed {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// Pops every decodable frame and runs the state machine. Returns false
/// when the connection should leave the reader's set.
fn drive_frames(shared: &Shared, conn: &mut Conn) -> bool {
    loop {
        let frame = match conn.decoder.next_frame() {
            Ok(Some(f)) => f,
            Ok(None) => return true,
            Err(e) => {
                shared.reject(conn, &e.into());
                return false;
            }
        };
        // STATS is out-of-band introspection: answered inline, before
        // (and without) the session machine, so it consumes no session
        // seq and is legal in any state. It is excluded from
        // `ingest.frames` (its bytes still land in `ingest.bytes`).
        if frame.command == Command::Stats {
            match parse_stats_request(&frame.payload) {
                Ok(_req) => {
                    shared.metrics.stats_requests.inc();
                    conn.info.stats_served.fetch_add(1, Ordering::Relaxed);
                    let report = stats_report(shared);
                    let answer = Frame::json(Command::StatsReply, conn.out_seq, &report);
                    conn.out_seq += 1;
                    conn.send_frame(&answer);
                    continue;
                }
                Err(detail) => {
                    let v = Violation::BadState(format!("bad STATS request: {detail}"));
                    shared.reject(conn, &v);
                    return false;
                }
            }
        }
        shared.metrics.frames.inc();
        let actions = match conn.session.on_frame(frame) {
            Ok(a) => a,
            Err(v) => {
                shared.reject(conn, &v);
                return false;
            }
        };
        for action in actions {
            match action {
                Action::Register(hello) => {
                    conn.info.identity.lock().replace((
                        hello.study.clone(),
                        hello.run.clone(),
                        hello.shard,
                        hello.shards,
                    ));
                    let key = (hello.study, hello.run, hello.shard);
                    if !shared.active_keys.lock().insert(key.clone()) {
                        // A retry while the original is still live: the
                        // assembler would refuse the duplicate at BYE
                        // anyway, but rejecting at HELLO keeps it from
                        // consuming queue space. The active key is the
                        // original's — leave it in place.
                        let v = Violation::BadHello(format!(
                            "shard {}/{} of {:?} is already streaming",
                            key.2, key.1, key.0
                        ));
                        shared.reject_inner(conn, &v, false);
                        return false;
                    }
                }
                Action::Ack(ack) => {
                    let frame = Frame::json(Command::Ack, conn.out_seq, &ack);
                    conn.out_seq += 1;
                    conn.send_frame(&frame);
                }
                Action::QueueBatch { visit_ord, payload } => {
                    conn.pending.push_back((visit_ord, payload));
                }
                Action::ByeReady { bye_seq } => {
                    conn.bye_seq = Some(bye_seq);
                }
            }
        }
        conn.info.sync(&conn.session);
        conn.info
            .queued
            .store(conn.queue_len() as u64, Ordering::Relaxed);
        if conn.session.bye_seen() {
            // Nothing further may arrive; hand the session to the
            // dispatcher for drain + finalize.
            return false;
        }
    }
}

fn dispatcher_loop(shared: &Shared) {
    let private_pool = shared.cfg.pool_workers.map(Runtime::with_workers);
    while !shared.shutdown.load(Ordering::SeqCst) {
        let worked = match &private_pool {
            Some(rt) => rt.install(|| dispatch_round(shared)),
            None => dispatch_round(shared),
        };
        if !worked {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// One dispatcher round: drain pending batches, decode them on the
/// pool, apply results in order, finalize drained BYEs, GC stalled
/// sessions. Returns whether any work happened.
fn dispatch_round(shared: &Shared) -> bool {
    let conns: Vec<ConnRef> = shared.conns.lock().clone();

    // Collect decode jobs in connection order; per connection the
    // pending queue drains FIFO, so application order == stream order.
    let mut jobs: Vec<(ConnRef, usize, Vec<u8>)> = Vec::new();
    let mut depth = 0i64;
    for conn_ref in &conns {
        let mut conn = conn_ref.lock();
        if conn.rejected || conn.done {
            continue;
        }
        while let Some((visit_ord, payload)) = conn.pending.pop_front() {
            conn.inflight += 1;
            jobs.push((Arc::clone(conn_ref), visit_ord, payload));
        }
        depth += conn.queue_len() as i64;
    }
    shared.metrics.queue_depth.set(depth);
    shared.metrics.queue_depth_hw.raise_to(depth);

    let mut worked = !jobs.is_empty();
    if !jobs.is_empty() {
        let decoded = hbbtv_study::analysis::par_map(&jobs, |_, (_, _, payload)| {
            crate::frame::parse_capture_batch(payload)
        });
        for ((conn_ref, visit_ord, _), result) in jobs.into_iter().zip(decoded) {
            let mut conn = conn_ref.lock();
            conn.inflight -= 1;
            if conn.rejected {
                continue;
            }
            match result {
                Ok(batch) => {
                    shared.metrics.exchanges.add(batch.len() as u64);
                    shared.metrics.batch_exchanges.record(batch.len() as u64);
                    conn.last_activity = Instant::now();
                    conn.session.apply_batch(visit_ord, batch);
                    conn.info.sync(&conn.session);
                    conn.info
                        .queued
                        .store(conn.queue_len() as u64, Ordering::Relaxed);
                }
                Err(e) => shared.reject(&mut conn, &e.into()),
            }
        }
    }

    // Finalize sessions whose BYE has fully drained.
    for conn_ref in &conns {
        let mut conn = conn_ref.lock();
        if conn.done || conn.rejected || !conn.session.bye_seen() {
            continue;
        }
        if !conn.pending.is_empty() || conn.inflight > 0 {
            continue;
        }
        let Some(bye_seq) = conn.bye_seq else {
            continue;
        };
        match conn.session.finalize() {
            Ok(shard) => {
                worked = true;
                let exchanges = shard.captures.len() as u64;
                let key = (
                    shard.hello.study.clone(),
                    shard.hello.run.clone(),
                    shard.hello.shard,
                );
                match shared.assembler.lock().add(shard) {
                    Ok(()) => {
                        shared.metrics.sessions_completed.inc();
                        shared.metrics.session_exchanges.record(exchanges);
                        conn.done = true;
                        shared.mark_closed(&conn.info);
                        shared.active_keys.lock().remove(&key);
                        let ack = Frame::json(
                            Command::Ack,
                            conn.out_seq,
                            &Ack {
                                of: bye_seq,
                                exchanges,
                            },
                        );
                        conn.out_seq += 1;
                        conn.send_frame(&ack);
                        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                    }
                    Err(e) => shared.reject(&mut conn, &Violation::BadState(e)),
                }
            }
            Err(v) => shared.reject(&mut conn, &v),
        }
    }

    // Heartbeat GC + registry sweep.
    let timeout = shared.cfg.heartbeat_timeout;
    let mut registry = shared.conns.lock();
    registry.retain(|conn_ref| {
        let mut conn = conn_ref.lock();
        if conn.done || conn.rejected {
            return false;
        }
        // A drained BYE is all server-side work now — never GC it, the
        // finalize sweep above will get to it.
        if !conn.session.bye_seen() && conn.last_activity.elapsed() > timeout {
            shared.reject(&mut conn, &Violation::HeartbeatTimeout);
            return false;
        }
        true
    });
    drop(registry);

    // Sweep closed mirrors out of the STATS table.
    shared
        .table
        .lock()
        .retain(|info| !info.closed.load(Ordering::SeqCst));
    worked
}
