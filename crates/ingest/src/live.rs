//! Live reports while ingesting: the bridge between the collector and
//! the incremental study engine.
//!
//! [`LiveStudy`] owns an [`IncrementalStudy`] and drains complete runs
//! out of a running [`IngestServer`] in canonical [`RunKind::ALL`]
//! order, feeding each run's capture log in as epoch segments. At any
//! point — including while later runs are still streaming — a rendered
//! report over everything ingested so far is available, and it is
//! byte-identical to what [`StudyReport::compute`] +
//! [`StudyReport::render`] would produce post hoc over the same runs
//! (the incremental engine's parity suites pin that down).
//!
//! Canonical order is what makes the live render match the post-hoc
//! one: [`Assembler::take_study`](crate::Assembler::take_study)
//! reassembles complete runs in [`RunKind::ALL`] order, so the live
//! path must ingest them in that order too, even when a later run's
//! shards finish streaming first. [`LiveStudy::poll`] therefore waits
//! at the first canonical kind whose shards have not all landed.
//!
//! [`StudyReport::compute`]: hbbtv_study::report::StudyReport::compute
//! [`StudyReport::render`]: hbbtv_study::report::StudyReport::render

use crate::server::IngestServer;
use hbbtv_study::analysis::IncrementalStudy;
use hbbtv_study::report::StudyReport;
use hbbtv_study::{Ecosystem, RunKind, StudyDataset};

/// An incremental study fed from a live collector.
pub struct LiveStudy {
    study: String,
    inc: IncrementalStudy,
    /// Captures per epoch segment when feeding a run in; 0 = one epoch
    /// per run.
    epoch_captures: usize,
    /// Index into [`RunKind::ALL`] of the next run to ingest.
    next: usize,
}

impl LiveStudy {
    /// A live study for `study`, with the segment budget taken from the
    /// `HBBTV_FRAME_BUDGET_BYTES` environment variable (unset = keep
    /// every segment resident).
    pub fn new(study: impl Into<String>) -> LiveStudy {
        LiveStudy {
            study: study.into(),
            inc: IncrementalStudy::new(),
            epoch_captures: 0,
            next: 0,
        }
    }

    /// A live study with an explicit resident-byte budget for segment
    /// columns.
    pub fn with_budget(study: impl Into<String>, budget: Option<usize>) -> LiveStudy {
        LiveStudy {
            study: study.into(),
            inc: IncrementalStudy::with_budget(budget),
            epoch_captures: 0,
            next: 0,
        }
    }

    /// Splits each ingested run into epoch segments of at most
    /// `captures` exchanges (0 restores one epoch per run). Smaller
    /// epochs mean finer-grained spilling under a budget; the rendered
    /// report is identical either way.
    pub fn epoch_captures(mut self, captures: usize) -> LiveStudy {
        self.epoch_captures = captures;
        self
    }

    /// Routes the incremental engine's `frame.*` cells into `tel`.
    /// Passing the collector's own scope
    /// ([`IngestServer::telemetry`]) puts frame-store gauges and
    /// `ingest.*` counters in one place, so a single scrape or `STATS`
    /// answer covers both — and gives the health watchdog its
    /// frame-budget residency input.
    pub fn with_telemetry(mut self, tel: hbbtv_obs::Telemetry) -> LiveStudy {
        self.inc.attach_telemetry(tel);
        self
    }

    /// Drains every run that is complete on `server` and next in
    /// canonical order into the incremental study. Returns how many
    /// runs were ingested by this call.
    pub fn poll(&mut self, server: &IngestServer) -> usize {
        let mut ingested = 0;
        while let Some(kind) = RunKind::ALL.get(self.next).copied() {
            if !server.complete_runs(&self.study).contains(&kind) {
                break;
            }
            let run = server
                .take_run(&self.study, kind)
                .expect("run reported complete reassembles");
            self.ingest_run(run);
            self.next += 1;
            ingested += 1;
        }
        ingested
    }

    /// Feeds one reassembled run into the incremental study, chunked
    /// into epochs per [`LiveStudy::epoch_captures`].
    fn ingest_run(&mut self, mut run: hbbtv_study::RunDataset) {
        if self.epoch_captures == 0 {
            self.inc.push_run(run);
            return;
        }
        let caps = std::mem::take(&mut run.captures);
        self.inc.push_run(run);
        for chunk in caps.chunks(self.epoch_captures) {
            self.inc.extend_run(chunk.to_vec());
        }
    }

    /// Runs ingested so far.
    pub fn runs_ingested(&self) -> usize {
        self.inc.dataset().runs.len()
    }

    /// The accumulated dataset (canonical run order).
    pub fn dataset(&self) -> &StudyDataset {
        self.inc.dataset()
    }

    /// The live report over everything ingested so far.
    pub fn report(&mut self, eco: &Ecosystem) -> StudyReport {
        self.inc.report(eco)
    }

    /// The live report, rendered — byte-identical to the post-hoc
    /// render over the same runs.
    pub fn render(&mut self, eco: &Ecosystem) -> String {
        self.inc.render(eco)
    }

    /// The underlying incremental study (segment and spill
    /// accounting).
    pub fn incremental(&self) -> &IncrementalStudy {
        &self.inc
    }
}
