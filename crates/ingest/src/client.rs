//! `SimTvClient`: simulated TVs streaming captured datasets into the
//! collector.
//!
//! A [`SessionSpec`] is one TV's worth of work: a contiguous range of a
//! run's visits plus exactly the capture-log slice those visits
//! recorded. [`shard_study`] cuts a [`StudyDataset`] into such specs
//! using the visit-sharding invariant the parallel harness established
//! (a run's capture log is the concatenation of per-visit slices, and
//! `VisitSummary::captures` is each slice's length), so streaming all
//! specs of a study — in any order, concurrently, from any number of
//! threads — reassembles the exact original dataset on the server.
//!
//! [`SimTvClient::stream`] performs one healthy session;
//! [`SimTvClient::stream_with_fault`] compiles the same frames through a
//! [`FaultPlan`](crate::fault::FaultPlan) and executes the resulting
//! fault script instead, returning what the client observed (server
//! error, hangup, GC).

use crate::fault::{FaultPlan, FaultStep};
use crate::frame::{
    Ack, Bye, Command, Frame, FrameDecoder, Hello, RunTrailer, VisitBegin, VisitEnd, PROTO_VERSION,
};
use hbbtv_proxy::CapturedExchange;
use hbbtv_study::{RunDataset, StudyDataset, VisitSummary};
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One session's worth of streaming work.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Collector namespace (which study/fleet this session belongs to).
    pub study: String,
    /// Run label (`RunKind::label()`).
    pub run: String,
    /// Shard index within the run.
    pub shard: u32,
    /// Total shards of the run.
    pub shards: u32,
    /// The shard's visits, in canonical order.
    pub visits: Vec<VisitSummary>,
    /// The shard's capture-log slice: visit slices concatenated in
    /// visit order.
    pub captures: Vec<CapturedExchange>,
    /// Run trailer; exactly one shard of a run carries it.
    pub trailer: Option<RunTrailer>,
}

/// Client tuning.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Exchanges per CAPTURE frame.
    pub batch: usize,
    /// Emit a HEARTBEAT every this many data frames.
    pub heartbeat_every: usize,
    /// Socket read timeout (waiting for ACKs).
    pub read_timeout: Duration,
    /// Socket write timeout (a stalled collector eventually errors the
    /// client instead of wedging it).
    pub write_timeout: Duration,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            batch: 64,
            heartbeat_every: 16,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
        }
    }
}

/// What a healthy session reports back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientReport {
    /// Frames sent (including HELLO and BYE).
    pub frames_sent: u64,
    /// Exchanges streamed.
    pub exchanges: u64,
    /// Exchanges the server acknowledged on the BYE ack.
    pub acked_exchanges: u64,
}

/// What a fault-script execution observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The server sent an ERR frame with this reason.
    ServerError(String),
    /// The server hung up without an ERR the client managed to read.
    Hangup,
    /// The stall was ended by the server closing the socket (heartbeat
    /// GC did its job).
    ClosedDuringStall,
    /// The stall outlived the executor's bound — the server never
    /// collected the session.
    StallTimeout,
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server answered something other than the expected ACK.
    Protocol(String),
    /// The spec is internally inconsistent (visit counts vs. captures).
    BadSpec(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::BadSpec(e) => write!(f, "bad spec: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Extracts the run-level trailer fields of a dataset's run.
pub fn trailer_of(run: &RunDataset) -> RunTrailer {
    RunTrailer {
        channels_measured: run.channels_measured.clone(),
        channel_names: run.channel_names.clone(),
        cookies: run.cookies.clone(),
        local_storage: run.local_storage.clone(),
        screenshots: run.screenshots.clone(),
        interactions: run.interactions,
        consented_channels: run.consented_channels.clone(),
    }
}

/// Cuts one run into `shards` contiguous visit-range sessions.
///
/// Shard boundaries are visit boundaries; the capture log splits at the
/// cumulative per-visit counts. The trailer rides on shard 0.
pub fn shard_run(study: &str, run: &RunDataset, shards: u32) -> Result<Vec<SessionSpec>, String> {
    let declared: usize = run.visits.iter().map(|v| v.captures).sum();
    if declared != run.captures.len() {
        return Err(format!(
            "run {}: visit summaries declare {declared} captures but the log has {} — \
             not visit-partitionable",
            run.run,
            run.captures.len()
        ));
    }
    let shards = shards.clamp(1, run.visits.len().max(1) as u32);
    let n_visits = run.visits.len();
    let mut specs = Vec::with_capacity(shards as usize);
    let mut visit_cursor = 0usize;
    let mut capture_cursor = 0usize;
    for s in 0..shards {
        // Even split of visits, remainder to the front shards.
        let len =
            n_visits / shards as usize + usize::from((s as usize) < n_visits % shards as usize);
        let visits = run.visits[visit_cursor..visit_cursor + len].to_vec();
        let slice: usize = visits.iter().map(|v| v.captures).sum();
        let captures = run.captures[capture_cursor..capture_cursor + slice].to_vec();
        visit_cursor += len;
        capture_cursor += slice;
        specs.push(SessionSpec {
            study: study.to_string(),
            run: run.run.label().to_string(),
            shard: s,
            shards,
            visits,
            captures,
            trailer: (s == 0).then(|| trailer_of(run)),
        });
    }
    Ok(specs)
}

/// Cuts a whole study into session specs, `shards_per_run` per run.
pub fn shard_study(
    study: &str,
    dataset: &StudyDataset,
    shards_per_run: u32,
) -> Result<Vec<SessionSpec>, String> {
    let mut specs = Vec::new();
    for run in &dataset.runs {
        specs.extend(shard_run(study, run, shards_per_run)?);
    }
    Ok(specs)
}

/// A simulated TV.
#[derive(Debug, Clone, Default)]
pub struct SimTvClient {
    opts: StreamOptions,
}

impl SimTvClient {
    /// A client with default options.
    pub fn new() -> SimTvClient {
        SimTvClient::default()
    }

    /// A client with explicit options.
    pub fn with_options(opts: StreamOptions) -> SimTvClient {
        SimTvClient { opts }
    }

    /// Builds the complete, healthy frame sequence for a spec.
    pub fn frames(&self, spec: &SessionSpec) -> Result<Vec<Frame>, ClientError> {
        let declared: usize = spec.visits.iter().map(|v| v.captures).sum();
        if declared != spec.captures.len() {
            return Err(ClientError::BadSpec(format!(
                "visits declare {declared} captures, spec carries {}",
                spec.captures.len()
            )));
        }
        let mut frames = Vec::new();
        let mut seq = 0u32;
        let mut next_seq = || {
            let s = seq;
            seq += 1;
            s
        };
        frames.push(Frame::json(
            Command::Hello,
            next_seq(),
            &Hello {
                proto: PROTO_VERSION,
                study: spec.study.clone(),
                run: spec.run.clone(),
                shard: spec.shard,
                shards: spec.shards,
            },
        ));
        let mut cursor = 0usize;
        let mut since_heartbeat = 0usize;
        for v in &spec.visits {
            frames.push(Frame::json(
                Command::VisitBegin,
                next_seq(),
                &VisitBegin {
                    visit: v.visit,
                    channel: v.channel,
                    opened: v.opened,
                },
            ));
            let slice = &spec.captures[cursor..cursor + v.captures];
            cursor += v.captures;
            for batch in slice.chunks(self.opts.batch.max(1)) {
                frames.push(crate::frame::capture_frame(next_seq(), batch));
                since_heartbeat += 1;
                if since_heartbeat >= self.opts.heartbeat_every.max(1) {
                    frames.push(Frame::empty(Command::Heartbeat, next_seq()));
                    since_heartbeat = 0;
                }
            }
            frames.push(Frame::json(
                Command::VisitEnd,
                next_seq(),
                &VisitEnd {
                    visit: v.visit,
                    captures: v.captures as u64,
                },
            ));
        }
        frames.push(Frame::json(
            Command::Bye,
            next_seq(),
            &Bye {
                trailer: spec.trailer.clone(),
            },
        ));
        Ok(frames)
    }

    /// Streams one healthy session and verifies the server's final
    /// exchange count.
    pub fn stream(
        &self,
        addr: SocketAddr,
        spec: &SessionSpec,
    ) -> Result<ClientReport, ClientError> {
        let frames = self.frames(spec)?;
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(self.opts.read_timeout))?;
        stream.set_write_timeout(Some(self.opts.write_timeout))?;
        stream.set_nodelay(true)?;
        let mut conn = ClientConn::new(stream);

        // HELLO, then wait for its ACK before streaming data — the
        // command/answer handshake that lets a fleet fail fast on a
        // full or incompatible collector.
        conn.write_frame(&frames[0])?;
        let hello_deadline = Instant::now() + self.opts.read_timeout;
        let ack = conn.read_ack_blocking(hello_deadline)?.ok_or_else(|| {
            ClientError::Protocol("connection closed before HELLO was acknowledged".into())
        })?;
        if ack.of != 0 {
            return Err(ClientError::Protocol(format!(
                "HELLO answered with ack of frame {}",
                ack.of
            )));
        }

        // Stream the rest; VISIT_END acks arrive asynchronously and are
        // drained (and counted) opportunistically to keep the pipe full.
        for frame in &frames[1..] {
            conn.write_frame(frame)?;
            conn.drain_acks()?;
        }

        // The BYE ack is authoritative: the server has decoded
        // everything and sealed the shard.
        let bye_seq = frames.last().expect("frames nonempty").seq;
        let deadline = Instant::now() + self.opts.read_timeout;
        let final_ack = loop {
            if let Some(ack) = conn.read_ack_blocking(deadline)? {
                if ack.of == bye_seq {
                    break ack;
                }
            } else {
                return Err(ClientError::Protocol(
                    "connection closed before BYE was acknowledged".into(),
                ));
            }
        };
        Ok(ClientReport {
            frames_sent: frames.len() as u64,
            exchanges: spec.captures.len() as u64,
            acked_exchanges: final_ack.exchanges,
        })
    }

    /// Executes the spec through a fault plan instead of streaming it
    /// faithfully.
    pub fn stream_with_fault(
        &self,
        addr: SocketAddr,
        spec: &SessionSpec,
        plan: FaultPlan,
        stall_bound: Duration,
    ) -> Result<FaultOutcome, ClientError> {
        let frames = self.frames(spec)?;
        let script = plan.compile(&frames);
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
        stream.set_write_timeout(Some(self.opts.write_timeout))?;
        stream.set_nodelay(true)?;
        let mut conn = ClientConn::new(stream);

        for step in &script {
            match step {
                FaultStep::Write(bytes) => {
                    if let Err(e) = conn.stream.write_all(bytes) {
                        // The server already rejected us and closed the
                        // socket — exactly what the fault should cause.
                        let _ = e;
                        return Ok(conn.observed_error().unwrap_or(FaultOutcome::Hangup));
                    }
                }
                FaultStep::StallUntilClosed => {
                    let deadline = Instant::now() + stall_bound;
                    loop {
                        match conn.poll_server() {
                            PollResult::Err(reason) => {
                                return Ok(FaultOutcome::ServerError(reason))
                            }
                            PollResult::Closed => return Ok(FaultOutcome::ClosedDuringStall),
                            PollResult::Open => {}
                        }
                        if Instant::now() > deadline {
                            return Ok(FaultOutcome::StallTimeout);
                        }
                    }
                }
                FaultStep::Disconnect => {
                    // Send the FIN now — the judgment poll below keeps
                    // the read side open to catch the server's verdict.
                    let _ = conn.stream.shutdown(std::net::Shutdown::Write);
                    break;
                }
            }
        }
        // Give the server a beat to pronounce judgement, then report
        // whatever it said.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match conn.poll_server() {
                PollResult::Err(reason) => return Ok(FaultOutcome::ServerError(reason)),
                PollResult::Closed => {
                    return Ok(conn.observed_error().unwrap_or(FaultOutcome::Hangup))
                }
                PollResult::Open => {}
            }
            if Instant::now() > deadline {
                return Ok(conn.observed_error().unwrap_or(FaultOutcome::Hangup));
            }
        }
    }
}

enum PollResult {
    Open,
    Closed,
    Err(String),
}

struct ClientConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    seen_error: Option<String>,
}

impl ClientConn {
    fn new(stream: TcpStream) -> ClientConn {
        ClientConn {
            stream,
            decoder: FrameDecoder::new(),
            seen_error: None,
        }
    }

    fn observed_error(&self) -> Option<FaultOutcome> {
        self.seen_error.clone().map(FaultOutcome::ServerError)
    }

    fn write_frame(&mut self, frame: &Frame) -> Result<(), ClientError> {
        self.stream.write_all(&frame.encode())?;
        Ok(())
    }

    /// Reads whatever answer frames are already buffered, without
    /// blocking beyond the socket's short timeout. ERR is fatal.
    fn drain_acks(&mut self) -> Result<(), ClientError> {
        loop {
            match self.decoder.next_frame() {
                Ok(Some(frame)) => {
                    self.note_answer(&frame)?;
                    continue;
                }
                Ok(None) => {}
                Err(e) => return Err(ClientError::Protocol(e.to_string())),
            }
            // Peek the socket without waiting: only pull bytes the
            // kernel already has.
            let mut buf = [0u8; 4096];
            self.stream.set_nonblocking(true)?;
            let read = self.stream.read(&mut buf);
            self.stream.set_nonblocking(false)?;
            match read {
                Ok(0) => {
                    return Err(ClientError::Protocol(
                        self.seen_error
                            .clone()
                            .unwrap_or_else(|| "server closed the connection".into()),
                    ))
                }
                Ok(n) => self.decoder.push_bytes(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn note_answer(&mut self, frame: &Frame) -> Result<(), ClientError> {
        match frame.command {
            Command::Ack => Ok(()),
            Command::Err => {
                let reason = frame
                    .parse::<crate::frame::ErrInfo>()
                    .map(|e| e.reason)
                    .unwrap_or_else(|_| "unparseable server error".into());
                self.seen_error = Some(reason.clone());
                Err(ClientError::Protocol(format!("server rejected: {reason}")))
            }
            other => Err(ClientError::Protocol(format!(
                "unexpected {other:?} from server"
            ))),
        }
    }

    /// Blocks (bounded by the socket timeout and `deadline`) until an
    /// ACK arrives; `None` on clean EOF.
    fn read_ack_blocking(&mut self, deadline: Instant) -> Result<Option<Ack>, ClientError> {
        loop {
            match self.decoder.next_frame() {
                Ok(Some(frame)) => match frame.command {
                    Command::Ack => {
                        return frame
                            .parse::<Ack>()
                            .map(Some)
                            .map_err(|e| ClientError::Protocol(e.to_string()))
                    }
                    _ => {
                        self.note_answer(&frame)?;
                        continue;
                    }
                },
                Ok(None) => {}
                Err(e) => return Err(ClientError::Protocol(e.to_string())),
            }
            if Instant::now() > deadline {
                return Err(ClientError::Protocol("timed out waiting for ack".into()));
            }
            let mut buf = [0u8; 4096];
            match self.stream.read(&mut buf) {
                Ok(0) => return Ok(None),
                Ok(n) => self.decoder.push_bytes(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// One short, non-blocking look at the server side of the socket.
    fn poll_server(&mut self) -> PollResult {
        if let Ok(Some(frame)) = self.decoder.next_frame() {
            if frame.command == Command::Err {
                let reason = frame
                    .parse::<crate::frame::ErrInfo>()
                    .map(|e| e.reason)
                    .unwrap_or_else(|_| "unparseable server error".into());
                return PollResult::Err(reason);
            }
            return PollResult::Open;
        }
        let mut buf = [0u8; 1024];
        match self.stream.read(&mut buf) {
            Ok(0) => PollResult::Closed,
            Ok(n) => {
                self.decoder.push_bytes(&buf[..n]);
                PollResult::Open
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                PollResult::Open
            }
            Err(_) => PollResult::Closed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbtv_broadcast::ChannelId;
    use hbbtv_net::{Request, Response, Status, Timestamp};
    use hbbtv_proxy::VisitId;
    use hbbtv_study::RunKind;
    use std::collections::BTreeMap;

    fn tiny_run(visits: usize, per_visit: usize) -> RunDataset {
        let mut vs = Vec::new();
        let mut captures = Vec::new();
        for v in 0..visits {
            vs.push(VisitSummary {
                visit: VisitId(v as u32),
                channel: ChannelId(v as u32 + 1),
                opened: Timestamp::from_unix(100 + v as u64),
                captures: per_visit,
            });
            for c in 0..per_visit {
                captures.push(CapturedExchange {
                    session: "General".into(),
                    visit: Some(VisitId(v as u32)),
                    channel: Some(ChannelId(v as u32 + 1)),
                    channel_name: Some(format!("ch{v}")),
                    request: Request::get(
                        format!("http://app-{v}.example.de/r{c}").parse().unwrap(),
                    )
                    .at(Timestamp::from_unix(110 + v as u64))
                    .build(),
                    response: Response::builder(Status::OK).build(),
                });
            }
        }
        RunDataset {
            run: RunKind::General,
            channels_measured: (1..=visits as u32).map(ChannelId).collect(),
            channel_names: BTreeMap::new(),
            visits: vs,
            captures,
            cookies: vec![],
            local_storage: vec![],
            screenshots: vec![],
            interactions: 0,
            consented_channels: vec![],
        }
    }

    #[test]
    fn sharding_partitions_visits_and_captures_exactly() {
        let run = tiny_run(5, 3);
        let specs = shard_run("s", &run, 2).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].visits.len(), 3);
        assert_eq!(specs[1].visits.len(), 2);
        assert_eq!(specs[0].captures.len(), 9);
        assert_eq!(specs[1].captures.len(), 6);
        assert!(specs[0].trailer.is_some());
        assert!(specs[1].trailer.is_none());
        let rejoined: Vec<_> = specs
            .iter()
            .flat_map(|s| s.captures.iter().cloned())
            .collect();
        assert_eq!(rejoined, run.captures, "concatenation restores the log");
    }

    #[test]
    fn shard_count_clamps_to_visit_count() {
        let run = tiny_run(2, 1);
        let specs = shard_run("s", &run, 64).unwrap();
        assert_eq!(specs.len(), 2, "no empty shards");
    }

    #[test]
    fn unpartitionable_run_is_refused() {
        let mut run = tiny_run(2, 2);
        run.visits[0].captures = 3; // now inconsistent with the log
        assert!(shard_run("s", &run, 2).is_err());
    }

    #[test]
    fn frame_sequence_is_seq_contiguous_and_complete() {
        let run = tiny_run(3, 5);
        let spec = &shard_run("s", &run, 1).unwrap()[0];
        let client = SimTvClient::with_options(StreamOptions {
            batch: 2,
            heartbeat_every: 3,
            ..StreamOptions::default()
        });
        let frames = client.frames(spec).unwrap();
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.seq, i as u32, "seq numbers are gapless");
        }
        assert_eq!(frames.first().unwrap().command, Command::Hello);
        assert_eq!(frames.last().unwrap().command, Command::Bye);
        let captured: usize = frames
            .iter()
            .filter(|f| f.command == Command::Capture)
            .map(|f| crate::frame::parse_capture_batch(&f.payload).unwrap().len())
            .sum();
        assert_eq!(captured, 15);
        assert!(frames.iter().any(|f| f.command == Command::Heartbeat));
    }
}
