//! Deterministic fault injection for ingest sessions.
//!
//! A [`FaultPlan`] turns a healthy session's frame sequence into a
//! *fault script* — the exact bytes (and stalls, and disconnects) a
//! misbehaving TV would put on the wire. Everything derives from the
//! plan's seed through a splitmix64 stream, so a failing soak run
//! replays byte-for-byte from its seed: which frame is torn, where the
//! cut lands, which batches swap — all pure functions of `(plan,
//! frames)`.
//!
//! The seven kinds cover the failure classes a long-running collector
//! fleet actually sees (flaky embedded TCP stacks, power cuts
//! mid-write, buggy retry loops, middleboxes, confused operators):
//!
//! | kind | wire effect | server defense |
//! |------|-------------|----------------|
//! | [`FaultKind::GarbagePrefix`] | noise before `HELLO` | length/command validation |
//! | [`FaultKind::TornFrame`] | frame truncated, stream continues | decode error or seq break |
//! | [`FaultKind::MidFrameDisconnect`] | FIN lands mid-frame | EOF-mid-session rejection |
//! | [`FaultKind::DuplicateBatch`] | a `CAPTURE` frame sent twice | per-session seq numbers |
//! | [`FaultKind::ReorderedBatches`] | adjacent `CAPTURE`s swapped | per-session seq numbers |
//! | [`FaultKind::StalledWriter`] | writer goes silent, socket open | heartbeat-timeout GC |
//! | [`FaultKind::GarbageStats`] | `STATS` frame with a junk payload | request validation, session-local rejection |

use crate::frame::{Command, Frame};

/// The failure classes the collector must contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Random bytes precede the `HELLO` (a client that talked the wrong
    /// protocol, or a corrupted handshake).
    GarbagePrefix,
    /// One frame is truncated but the writer keeps going with the next
    /// frame — the stream stays alive and misaligned.
    TornFrame,
    /// The connection drops in the middle of a frame.
    MidFrameDisconnect,
    /// One capture batch is transmitted twice (a retry bug).
    DuplicateBatch,
    /// Two adjacent capture batches swap places (a reordering proxy or
    /// a multi-socket retry).
    ReorderedBatches,
    /// The writer stalls silently with the socket open — no frames, no
    /// heartbeats, no FIN.
    StalledWriter,
    /// A `STATS` introspection request with a garbage (non-JSON)
    /// payload lands mid-stream (a broken operator tool on the data
    /// port). Must reject only the offending session.
    GarbageStats,
}

impl FaultKind {
    /// Every kind, for suites that sweep all of them.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::GarbagePrefix,
        FaultKind::TornFrame,
        FaultKind::MidFrameDisconnect,
        FaultKind::DuplicateBatch,
        FaultKind::ReorderedBatches,
        FaultKind::StalledWriter,
        FaultKind::GarbageStats,
    ];
}

/// A seeded fault: which [`FaultKind`], and the randomness that places
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The failure class to inject.
    pub kind: FaultKind,
    /// Seed for all placement decisions.
    pub seed: u64,
}

/// One step of a fault script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultStep {
    /// Put these bytes on the wire.
    Write(Vec<u8>),
    /// Go silent with the socket open until the server hangs up (the
    /// executor bounds the wait; the heartbeat GC is what should end
    /// it).
    StallUntilClosed,
    /// Close the connection (FIN) and stop.
    Disconnect,
}

/// Deterministic splitmix64, the standard 64-bit mixer. Hand-rolled so
/// fault placement does not depend on any RNG crate's version-to-version
/// stream stability.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the stream.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` ≥ 1).
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound >= 1);
        (self.next_u64() % bound as u64) as usize
    }
}

impl FaultPlan {
    /// Compiles the healthy frame sequence into a fault script.
    ///
    /// `frames` is the session's full intended output (HELLO through
    /// BYE) in order. The script replaces the tail of the session from
    /// the injection point on; every choice comes from the plan's seed.
    pub fn compile(&self, frames: &[Frame]) -> Vec<FaultStep> {
        let mut rng = SplitMix64::new(self.seed);
        // Prefer to strike a CAPTURE frame — that is where data-loss
        // bugs hide — falling back to any mid-session frame.
        let capture_at: Vec<usize> = frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.command == Command::Capture)
            .map(|(i, _)| i)
            .collect();
        let target = if capture_at.is_empty() {
            frames.len() / 2
        } else {
            capture_at[rng.below(capture_at.len())]
        };

        let mut steps = Vec::new();
        let emit = |range: std::ops::Range<usize>, steps: &mut Vec<FaultStep>| {
            let mut bytes = Vec::new();
            for f in &frames[range] {
                f.encode_into(&mut bytes);
            }
            if !bytes.is_empty() {
                steps.push(FaultStep::Write(bytes));
            }
        };

        match self.kind {
            FaultKind::GarbagePrefix => {
                let n = 16 + rng.below(48);
                let garbage: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
                steps.push(FaultStep::Write(garbage));
                emit(0..frames.len(), &mut steps);
                steps.push(FaultStep::Disconnect);
            }
            FaultKind::TornFrame => {
                emit(0..target, &mut steps);
                let encoded = frames[target].encode();
                // Keep at least one byte, lose at least one.
                let cut = 1 + rng.below(encoded.len() - 1);
                steps.push(FaultStep::Write(encoded[..cut].to_vec()));
                // The writer is oblivious and keeps streaming.
                emit(target + 1..frames.len(), &mut steps);
                steps.push(FaultStep::Disconnect);
            }
            FaultKind::MidFrameDisconnect => {
                emit(0..target, &mut steps);
                let encoded = frames[target].encode();
                let cut = 1 + rng.below(encoded.len() - 1);
                steps.push(FaultStep::Write(encoded[..cut].to_vec()));
                steps.push(FaultStep::Disconnect);
            }
            FaultKind::DuplicateBatch => {
                emit(0..target + 1, &mut steps);
                steps.push(FaultStep::Write(frames[target].encode()));
                emit(target + 1..frames.len(), &mut steps);
                steps.push(FaultStep::Disconnect);
            }
            FaultKind::ReorderedBatches => {
                // Swap the target with its successor frame (whatever it
                // is — a CAPTURE/VISIT_END swap is just as illegal). A
                // sub-two-frame session has nothing to swap; degrade to
                // a clean stream so the executor still runs.
                if frames.len() < 2 {
                    emit(0..frames.len(), &mut steps);
                    steps.push(FaultStep::Disconnect);
                } else {
                    let first = target.min(frames.len() - 2);
                    let second = first + 1;
                    emit(0..first, &mut steps);
                    let mut bytes = frames[second].encode();
                    bytes.extend(frames[first].encode());
                    steps.push(FaultStep::Write(bytes));
                    emit(second + 1..frames.len(), &mut steps);
                    steps.push(FaultStep::Disconnect);
                }
            }
            FaultKind::StalledWriter => {
                emit(0..target, &mut steps);
                steps.push(FaultStep::StallUntilClosed);
            }
            FaultKind::GarbageStats => {
                // STATS is out-of-band (no session seq), so it can land
                // between any two frames; the payload is junk bytes
                // that fail request validation. The writer is oblivious
                // and keeps streaming the rest of the session.
                emit(0..target, &mut steps);
                let n = 8 + rng.below(24);
                let mut garbage: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
                // 0xff is never valid UTF-8, so the payload fails
                // validation for every seed.
                garbage[0] = 0xff;
                let stats = Frame {
                    command: Command::Stats,
                    seq: 0,
                    payload: garbage,
                };
                steps.push(FaultStep::Write(stats.encode()));
                emit(target..frames.len(), &mut steps);
                steps.push(FaultStep::Disconnect);
            }
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Bye, Hello, PROTO_VERSION};

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::json(
                Command::Hello,
                0,
                &Hello {
                    proto: PROTO_VERSION,
                    study: "s".into(),
                    run: "General".into(),
                    shard: 0,
                    shards: 1,
                },
            ),
            Frame::json(
                Command::VisitBegin,
                1,
                &crate::frame::VisitBegin {
                    visit: hbbtv_proxy::VisitId(0),
                    channel: hbbtv_broadcast::ChannelId(1),
                    opened: hbbtv_net::Timestamp::from_unix(1),
                },
            ),
            crate::frame::capture_frame(2, &[]),
            crate::frame::capture_frame(3, &[]),
            Frame::json(
                Command::VisitEnd,
                4,
                &crate::frame::VisitEnd {
                    visit: hbbtv_proxy::VisitId(0),
                    captures: 0,
                },
            ),
            Frame::json(Command::Bye, 5, &Bye { trailer: None }),
        ]
    }

    #[test]
    fn scripts_are_deterministic_in_the_seed() {
        let frames = sample_frames();
        for kind in FaultKind::ALL {
            let a = FaultPlan { kind, seed: 42 }.compile(&frames);
            let b = FaultPlan { kind, seed: 42 }.compile(&frames);
            assert_eq!(a, b, "{kind:?} must be deterministic");
            let c = FaultPlan { kind, seed: 43 }.compile(&frames);
            // Different seeds are allowed to coincide for some kinds
            // (duplicate always duplicates *a* capture frame), but the
            // script must still be well-formed.
            assert!(!c.is_empty());
        }
    }

    #[test]
    fn torn_frame_loses_bytes() {
        let frames = sample_frames();
        let healthy: usize = frames.iter().map(|f| f.encoded_len()).sum();
        let script = FaultPlan {
            kind: FaultKind::TornFrame,
            seed: 7,
        }
        .compile(&frames);
        let written: usize = script
            .iter()
            .map(|s| match s {
                FaultStep::Write(b) => b.len(),
                _ => 0,
            })
            .sum();
        assert!(written < healthy, "a torn frame must lose bytes");
        assert_eq!(script.last(), Some(&FaultStep::Disconnect));
    }

    #[test]
    fn duplicate_adds_exactly_one_frame() {
        let frames = sample_frames();
        let healthy: usize = frames.iter().map(|f| f.encoded_len()).sum();
        let script = FaultPlan {
            kind: FaultKind::DuplicateBatch,
            seed: 9,
        }
        .compile(&frames);
        let written: usize = script
            .iter()
            .map(|s| match s {
                FaultStep::Write(b) => b.len(),
                _ => 0,
            })
            .sum();
        assert!(written > healthy);
    }

    #[test]
    fn stalled_writer_ends_in_a_stall_not_a_disconnect() {
        let frames = sample_frames();
        let script = FaultPlan {
            kind: FaultKind::StalledWriter,
            seed: 3,
        }
        .compile(&frames);
        assert!(matches!(script.last(), Some(FaultStep::StallUntilClosed)));
    }

    #[test]
    fn reordered_swaps_preserve_total_bytes() {
        let frames = sample_frames();
        let healthy: usize = frames.iter().map(|f| f.encoded_len()).sum();
        let script = FaultPlan {
            kind: FaultKind::ReorderedBatches,
            seed: 11,
        }
        .compile(&frames);
        let written: usize = script
            .iter()
            .map(|s| match s {
                FaultStep::Write(b) => b.len(),
                _ => 0,
            })
            .sum();
        assert_eq!(written, healthy);
    }
}
