//! The ingest wire format: length-prefixed little-endian frames.
//!
//! Every message on an ingest connection — in either direction — is one
//! *frame*:
//!
//! ```text
//! offset  size  field
//! 0       4     len      u32 LE — byte length of everything after it
//! 4       1     command  u8     — see [`Command`]
//! 5       4     seq      u32 LE — per-direction sequence number
//! 9       len-5 payload  UTF-8 JSON (empty for HEARTBEAT)
//! ```
//!
//! The payload of a `CAPTURE` frame is a JSON array of
//! [`CapturedExchange`] in **exactly** the golden wire format pinned by
//! `tests/golden/study_dataset.json` — the collector is a transport for
//! the BigQuery schema, not a second serialization. Sequence numbers
//! start at 0 (`HELLO` for clients) and increment by one per frame per
//! direction; the server rejects any gap, repeat, or reordering, which
//! is what turns duplicated or reordered batches from silent data
//! corruption into immediate protocol errors.
//!
//! [`FrameDecoder`] is incremental: feed it arbitrary byte slices
//! (including torn reads that end mid-header or mid-payload) and pop
//! complete frames as they materialize. It never panics on any input —
//! garbage produces a [`FrameError`], not undefined lengths — and it
//! refuses frames larger than [`MAX_FRAME_LEN`] before buffering them,
//! so a hostile length prefix cannot balloon memory.

use hbbtv_proxy::CapturedExchange;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Hard cap on `len` (command byte + seq + payload). A capture batch of
/// a few hundred exchanges serializes to well under a megabyte; 16 MiB
/// leaves two orders of magnitude of slack while keeping a garbage
/// length prefix from reserving gigabytes.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Bytes of frame header before the payload: len(4) + command(1) +
/// seq(4).
pub const HEADER_LEN: usize = 9;

/// Protocol version spoken by this crate, carried in [`Hello::proto`].
pub const PROTO_VERSION: u32 = 1;

/// Frame commands. The u8 on the wire is the discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Command {
    /// Client → server: open a session (payload [`Hello`]). Answered
    /// with `ACK`.
    Hello = 0x01,
    /// Server → client: positive answer (payload [`Ack`]).
    Ack = 0x02,
    /// Client → server: a channel visit opens (payload [`VisitBegin`]).
    VisitBegin = 0x03,
    /// Client → server: a batch of captured exchanges (payload
    /// `Vec<CapturedExchange>` in the golden wire format).
    Capture = 0x04,
    /// Client → server: the visit closes (payload [`VisitEnd`]).
    /// Answered with `ACK`.
    VisitEnd = 0x05,
    /// Client → server: liveness signal (empty payload).
    Heartbeat = 0x06,
    /// Client → server: session done (payload [`Bye`]). Answered with
    /// `ACK` carrying the final exchange count, then the connection
    /// closes.
    Bye = 0x07,
    /// Server → client: protocol error (payload [`ErrInfo`]); the
    /// session is rejected and the connection closes.
    Err = 0x08,
    /// Client → server: operator introspection request (payload
    /// [`StatsRequest`], empty payload accepted). Out-of-band: it does
    /// not consume a session sequence number and is legal in any state
    /// before `BYE`, so a monitoring poller needs no session at all.
    /// Answered with `STATS_REPLY`.
    Stats = 0x09,
    /// Server → client: the introspection answer (payload
    /// [`StatsReport`]).
    StatsReply = 0x0A,
}

impl Command {
    fn from_u8(b: u8) -> Option<Command> {
        Some(match b {
            0x01 => Command::Hello,
            0x02 => Command::Ack,
            0x03 => Command::VisitBegin,
            0x04 => Command::Capture,
            0x05 => Command::VisitEnd,
            0x06 => Command::Heartbeat,
            0x07 => Command::Bye,
            0x08 => Command::Err,
            0x09 => Command::Stats,
            0x0A => Command::StatsReply,
            _ => return None,
        })
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame says.
    pub command: Command,
    /// Per-direction sequence number.
    pub seq: u32,
    /// JSON payload bytes (empty for heartbeats).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a frame with a JSON-serialized payload.
    pub fn json<T: Serialize>(command: Command, seq: u32, payload: &T) -> Frame {
        Frame {
            command,
            seq,
            payload: serde_json::to_string(payload)
                .expect("ingest payloads serialize")
                .into_bytes(),
        }
    }

    /// Builds a payload-less frame (heartbeats).
    pub fn empty(command: Command, seq: u32) -> Frame {
        Frame {
            command,
            seq,
            payload: Vec::new(),
        }
    }

    /// Appends the encoded frame to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let len = (self.payload.len() + 5) as u32;
        out.extend_from_slice(&len.to_le_bytes());
        out.push(self.command as u8);
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.payload);
    }

    /// The encoded frame as a fresh byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        self.encode_into(&mut out);
        out
    }

    /// Total encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Parses the payload as JSON.
    pub fn parse<T: Deserialize>(&self) -> Result<T, FrameError> {
        let text = std::str::from_utf8(&self.payload).map_err(|_| FrameError::BadPayload {
            command: self.command,
            detail: "payload is not utf-8".into(),
        })?;
        serde_json::from_str(text).map_err(|e| FrameError::BadPayload {
            command: self.command,
            detail: e.to_string(),
        })
    }
}

/// `HELLO` payload: identifies the session and its place in the shard
/// layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hello {
    /// Protocol version; the server rejects anything but
    /// [`PROTO_VERSION`].
    pub proto: u32,
    /// Collector namespace: which study (TV fleet / cohort) this
    /// session contributes to.
    pub study: String,
    /// Run label (`RunKind::label()`), e.g. `"General"`.
    pub run: String,
    /// This session's shard index within the run, `0..shards`.
    pub shard: u32,
    /// Total shards the run is split into; the run completes when all
    /// of them said `BYE`.
    pub shards: u32,
}

/// `ACK` payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ack {
    /// Sequence number of the client frame being answered.
    pub of: u32,
    /// Exchanges accepted for the session so far. Only authoritative on
    /// the `BYE` ack, where the server has drained every pending decode.
    pub exchanges: u64,
}

/// `VISIT_BEGIN` payload: mirrors
/// [`VisitSummary`](hbbtv_study::VisitSummary) minus the capture count,
/// which the TV cannot know until the visit ends. Field types are the
/// golden schema's own, so the visit identity round-trips exactly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VisitBegin {
    /// Visit id within the run (canonical protocol order).
    pub visit: hbbtv_proxy::VisitId,
    /// Channel being visited.
    pub channel: hbbtv_broadcast::ChannelId,
    /// When the visit opened on the run's simulated clock.
    pub opened: hbbtv_net::Timestamp,
}

/// `VISIT_END` payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VisitEnd {
    /// The visit being closed (must match the open visit).
    pub visit: hbbtv_proxy::VisitId,
    /// Exchanges streamed for this visit; the server verifies the count
    /// after its decode queue drains.
    pub captures: u64,
}

/// `BYE` payload: the session's trailing run data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bye {
    /// Run-level fields that exist once per run, not per shard. Exactly
    /// one shard (by convention shard 0) carries it.
    pub trailer: Option<RunTrailer>,
}

/// Everything a [`RunDataset`](hbbtv_study::RunDataset) holds beyond
/// visits and captures. Serialized with the same serde derives as the
/// golden dataset schema, so a streamed run reassembles field-for-field
/// identical to its in-process original.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunTrailer {
    /// Channels actually measured, in protocol order.
    pub channels_measured: Vec<hbbtv_broadcast::ChannelId>,
    /// Channel names by id.
    pub channel_names: std::collections::BTreeMap<hbbtv_broadcast::ChannelId, String>,
    /// The run's post-extraction cookie jar.
    pub cookies: Vec<hbbtv_tv::StoredCookie>,
    /// Local-storage objects: (origin, key, value).
    pub local_storage: Vec<(String, String, String)>,
    /// Screenshots taken during the run.
    pub screenshots: Vec<hbbtv_tv::Screenshot>,
    /// Remote-control interactions performed.
    pub interactions: usize,
    /// Channels that ended up granting full consent.
    pub consented_channels: Vec<hbbtv_broadcast::ChannelId>,
}

/// `ERR` payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrInfo {
    /// Human-readable rejection reason.
    pub reason: String,
}

/// `STATS` payload. Currently empty — a versioned struct rather than a
/// bare empty payload so future filters (per-study, per-run) extend it
/// without a new command. An empty payload is accepted as the default
/// request; anything else must parse as this struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StatsRequest {}

/// One live session in the `STATS_REPLY` table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionStat {
    /// Study namespace (empty until the HELLO landed).
    pub study: String,
    /// Run label (empty until the HELLO landed).
    pub run: String,
    /// Shard index within the run.
    pub shard: u32,
    /// Total shards of the run.
    pub shards: u32,
    /// Session phase: `"await_hello"`, `"active"`, `"in_visit"`,
    /// `"draining"`, or `"observer"` (a STATS-only poller).
    pub state: String,
    /// Visits opened so far.
    pub visits: u64,
    /// Exchanges decoded for this session so far.
    pub exchanges: u64,
    /// Raw bytes read off this session's socket.
    pub bytes: u64,
    /// Capture batches queued or in flight for decode.
    pub queued: u64,
    /// Whether the reader is currently parked on a full queue.
    pub stalled: bool,
    /// Milliseconds since the last frame (the heartbeat-GC clock).
    pub last_activity_ms: u64,
    /// STATS requests this session has been answered.
    pub stats_served: u64,
}

/// `STATS_REPLY` payload: one consistent snapshot of the collector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReport {
    /// Protocol version of the answering collector.
    pub proto: u32,
    /// The watchdog verdict (same assessment stream as `/health`).
    pub health: hbbtv_obs::HealthReport,
    /// Every counter of the server scope (`ingest.*`, and `frame.*`
    /// when a live study shares the scope), by name.
    pub counters: std::collections::BTreeMap<String, u64>,
    /// Every gauge of the server scope, by name.
    pub gauges: std::collections::BTreeMap<String, i64>,
    /// Every histogram of the server scope, summarized, by name.
    pub histograms: std::collections::BTreeMap<String, hbbtv_obs::HistogramSummary>,
    /// The per-session table, in accept order.
    pub sessions: Vec<SessionStat>,
}

/// Validates a `STATS` request payload: empty means the default
/// request, anything else must parse as [`StatsRequest`]. The error is
/// the parse detail (the caller turns it into a violation that rejects
/// only the offending session).
pub fn parse_stats_request(payload: &[u8]) -> Result<StatsRequest, String> {
    if payload.is_empty() {
        return Ok(StatsRequest::default());
    }
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not utf-8".to_string())?;
    if !text.trim_start().starts_with('{') {
        return Err("payload is not a JSON object".to_string());
    }
    serde_json::from_str(text).map_err(|e| e.to_string())
}

/// Why a byte stream failed to decode as frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME_LEN`] (or is shorter than
    /// the command + seq it must contain).
    BadLength {
        /// The offending `len` value.
        len: u64,
    },
    /// The command byte is not a known [`Command`].
    BadCommand {
        /// The offending byte.
        byte: u8,
    },
    /// The payload failed to parse as the command's JSON schema.
    BadPayload {
        /// Which command's payload.
        command: Command,
        /// Parser detail.
        detail: String,
    },
    /// The stream ended in the middle of a frame.
    Truncated,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadLength { len } => write!(f, "frame length {len} out of bounds"),
            FrameError::BadCommand { byte } => write!(f, "unknown command byte {byte:#04x}"),
            FrameError::BadPayload { command, detail } => {
                write!(f, "bad {command:?} payload: {detail}")
            }
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame decoder over a growing byte buffer.
///
/// # Examples
///
/// ```
/// use hbbtv_ingest::frame::{Command, Frame, FrameDecoder};
///
/// let frame = Frame::empty(Command::Heartbeat, 7);
/// let bytes = frame.encode();
/// let mut dec = FrameDecoder::new();
/// // Feed the bytes one at a time: no frame until the last byte lands.
/// for (i, b) in bytes.iter().enumerate() {
///     dec.push_bytes(&[*b]);
///     let got = dec.next_frame().unwrap();
///     assert_eq!(got.is_some(), i == bytes.len() - 1);
/// }
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: VecDeque<u8>,
    /// Sticky error: once the stream misparses, every subsequent byte is
    /// suspect — callers must reject the connection.
    poisoned: Option<FrameError>,
}

impl FrameDecoder {
    /// A decoder with an empty buffer.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends raw bytes read from the socket.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether the stream ended cleanly: no buffered partial frame and
    /// no decode error.
    pub fn at_frame_boundary(&self) -> bool {
        self.buf.is_empty() && self.poisoned.is_none()
    }

    /// Pops the next complete frame, `Ok(None)` if more bytes are
    /// needed, or the (sticky) decode error.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = {
            let mut b = [0u8; 4];
            for (i, slot) in b.iter_mut().enumerate() {
                *slot = self.buf[i];
            }
            u32::from_le_bytes(b) as usize
        };
        if !(5..=MAX_FRAME_LEN).contains(&len) {
            return Err(self.poison(FrameError::BadLength { len: len as u64 }));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.drain(..4);
        let cmd_byte = self.buf.pop_front().expect("length checked");
        let Some(command) = Command::from_u8(cmd_byte) else {
            return Err(self.poison(FrameError::BadCommand { byte: cmd_byte }));
        };
        let mut seq_bytes = [0u8; 4];
        for slot in &mut seq_bytes {
            *slot = self.buf.pop_front().expect("length checked");
        }
        let payload: Vec<u8> = self.buf.drain(..len - 5).collect();
        Ok(Some(Frame {
            command,
            seq: u32::from_le_bytes(seq_bytes),
            payload,
        }))
    }

    fn poison(&mut self, err: FrameError) -> FrameError {
        self.poisoned = Some(err.clone());
        err
    }
}

/// Encodes a capture batch frame. Split out so client, golden
/// transcript, and tests all serialize batches through one door.
pub fn capture_frame(seq: u32, batch: &[CapturedExchange]) -> Frame {
    Frame::json(Command::Capture, seq, &batch)
}

/// Decodes a capture batch payload (the golden wire format).
pub fn parse_capture_batch(payload: &[u8]) -> Result<Vec<CapturedExchange>, FrameError> {
    let text = std::str::from_utf8(payload).map_err(|_| FrameError::BadPayload {
        command: Command::Capture,
        detail: "payload is not utf-8".into(),
    })?;
    serde_json::from_str(text).map_err(|e| FrameError::BadPayload {
        command: Command::Capture,
        detail: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_control_frames() {
        let frames = vec![
            Frame::json(
                Command::Hello,
                0,
                &Hello {
                    proto: PROTO_VERSION,
                    study: "s0".into(),
                    run: "General".into(),
                    shard: 0,
                    shards: 4,
                },
            ),
            Frame::json(
                Command::Ack,
                0,
                &Ack {
                    of: 0,
                    exchanges: 0,
                },
            ),
            Frame::json(
                Command::VisitBegin,
                1,
                &VisitBegin {
                    visit: hbbtv_proxy::VisitId(0),
                    channel: hbbtv_broadcast::ChannelId(7),
                    opened: hbbtv_net::Timestamp::from_unix(100),
                },
            ),
            Frame::empty(Command::Heartbeat, 2),
            Frame::json(
                Command::VisitEnd,
                3,
                &VisitEnd {
                    visit: hbbtv_proxy::VisitId(0),
                    captures: 2,
                },
            ),
            Frame::json(Command::Bye, 4, &Bye { trailer: None }),
            Frame::json(
                Command::Err,
                1,
                &ErrInfo {
                    reason: "nope".into(),
                },
            ),
        ];
        let mut bytes = Vec::new();
        for f in &frames {
            f.encode_into(&mut bytes);
        }
        let mut dec = FrameDecoder::new();
        dec.push_bytes(&bytes);
        for expected in &frames {
            let got = dec.next_frame().unwrap().expect("frame available");
            assert_eq!(&got, expected);
        }
        assert!(dec.next_frame().unwrap().is_none());
        assert!(dec.at_frame_boundary());
    }

    #[test]
    fn oversized_length_is_rejected_before_buffering() {
        let mut dec = FrameDecoder::new();
        dec.push_bytes(&(u32::MAX).to_le_bytes());
        let err = dec.next_frame().unwrap_err();
        assert!(matches!(err, FrameError::BadLength { .. }));
        // The error is sticky.
        dec.push_bytes(&Frame::empty(Command::Heartbeat, 0).encode());
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn undersized_length_is_rejected() {
        let mut dec = FrameDecoder::new();
        dec.push_bytes(&4u32.to_le_bytes());
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::BadLength { len: 4 })
        ));
    }

    #[test]
    fn unknown_command_is_rejected() {
        let mut dec = FrameDecoder::new();
        dec.push_bytes(&5u32.to_le_bytes());
        dec.push_bytes(&[0xEE, 0, 0, 0, 0]);
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::BadCommand { byte: 0xEE })
        ));
    }

    #[test]
    fn stats_frames_round_trip() {
        let report = StatsReport {
            proto: PROTO_VERSION,
            health: hbbtv_obs::HealthReport {
                status: hbbtv_obs::HealthStatus::Degraded,
                raw: hbbtv_obs::HealthStatus::Degraded,
                reasons: vec![hbbtv_obs::HealthReason {
                    code: "gc_rate".into(),
                    severity: hbbtv_obs::HealthStatus::Degraded,
                    value: 0.5,
                    threshold: 0.2,
                    detail: "heartbeat-GC'd sessions/s: 0.50 >= 0.20".into(),
                }],
            },
            counters: [("ingest.sessions".to_string(), 3u64)]
                .into_iter()
                .collect(),
            gauges: [("ingest.sessions_open".to_string(), 2i64)]
                .into_iter()
                .collect(),
            histograms: [(
                "ingest.batch_exchanges".to_string(),
                hbbtv_obs::HistogramSummary {
                    count: 4,
                    sum: 7,
                    max: 5,
                    p50: 1,
                    p90: 5,
                    p99: 5,
                },
            )]
            .into_iter()
            .collect(),
            sessions: vec![SessionStat {
                study: "s0".into(),
                run: "General".into(),
                shard: 1,
                shards: 4,
                state: "in_visit".into(),
                visits: 2,
                exchanges: 128,
                bytes: 65536,
                queued: 3,
                stalled: true,
                last_activity_ms: 250,
                stats_served: 0,
            }],
        };
        let frames = [
            Frame::json(Command::Stats, 0, &StatsRequest::default()),
            Frame::empty(Command::Stats, 1),
            Frame::json(Command::StatsReply, 0, &report),
        ];
        let mut dec = FrameDecoder::new();
        for f in &frames {
            dec.push_bytes(&f.encode());
        }
        for expected in &frames {
            let got = dec.next_frame().unwrap().expect("frame available");
            assert_eq!(&got, expected);
        }
        let back: StatsReport = frames[2].parse().unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn stats_request_accepts_empty_and_rejects_garbage() {
        assert!(parse_stats_request(b"").is_ok());
        assert!(parse_stats_request(b"{}").is_ok());
        assert!(parse_stats_request(b"\x00\xffnot json").is_err());
        assert!(parse_stats_request(b"[1,2,3]").is_err());
    }

    #[test]
    fn empty_capture_batch_round_trips() {
        let f = capture_frame(9, &[]);
        let mut dec = FrameDecoder::new();
        dec.push_bytes(&f.encode());
        let got = dec.next_frame().unwrap().unwrap();
        assert_eq!(got.command, Command::Capture);
        assert_eq!(parse_capture_batch(&got.payload).unwrap(), vec![]);
    }
}
