//! UDP discovery for the ingest collector.
//!
//! TVs on a lab network find the collector without configuration: they
//! broadcast a one-line magic request and the collector answers with
//! the TCP port its acceptor is bound to. The exchange is plain ASCII
//! so a tcpdump of the lab segment stays human-readable.
//!
//! ```text
//! TV        -> broadcast  "HBBTV-INGEST v1?"
//! collector -> unicast    "HBBTV-INGEST v1 <tcp-port>"
//! ```
//!
//! Anything that is not the exact magic request is ignored — the
//! responder never answers noise, so it cannot be used as an
//! amplification reflector on a shared segment.

use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The discovery request a TV broadcasts.
pub const DISCOVERY_REQUEST: &[u8] = b"HBBTV-INGEST v1?";
/// Prefix of the collector's answer; the TCP port follows in ASCII.
pub const DISCOVERY_ANSWER_PREFIX: &str = "HBBTV-INGEST v1 ";

/// A running UDP responder advertising one collector's TCP port.
pub struct DiscoveryResponder {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl DiscoveryResponder {
    /// Binds a responder on `bind` (use port 0 for an ephemeral port)
    /// that advertises `tcp_port`.
    pub fn start(bind: SocketAddr, tcp_port: u16) -> std::io::Result<DiscoveryResponder> {
        let socket = UdpSocket::bind(bind)?;
        socket.set_read_timeout(Some(Duration::from_millis(100)))?;
        let addr = socket.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ingest-discovery".into())
            .spawn(move || {
                let answer = format!("{DISCOVERY_ANSWER_PREFIX}{tcp_port}");
                let mut buf = [0u8; 64];
                while !stop2.load(Ordering::Relaxed) {
                    match socket.recv_from(&mut buf) {
                        Ok((n, from)) if &buf[..n] == DISCOVERY_REQUEST => {
                            let _ = socket.send_to(answer.as_bytes(), from);
                        }
                        Ok(_) => {} // noise: never answered
                        Err(e)
                            if e.kind() == ErrorKind::WouldBlock
                                || e.kind() == ErrorKind::TimedOut => {}
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn discovery thread");
        Ok(DiscoveryResponder {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The UDP address the responder listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the responder thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for DiscoveryResponder {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Asks `responder` (a discovery responder's UDP address) for the
/// collector's TCP port, retrying until `timeout`.
pub fn discover(responder: SocketAddr, timeout: Duration) -> std::io::Result<u16> {
    let socket = UdpSocket::bind((responder.ip(), 0))?;
    socket.set_read_timeout(Some(Duration::from_millis(100)))?;
    let deadline = Instant::now() + timeout;
    let mut buf = [0u8; 64];
    loop {
        socket.send_to(DISCOVERY_REQUEST, responder)?;
        match socket.recv_from(&mut buf) {
            Ok((n, from)) if from == responder => {
                let text = std::str::from_utf8(&buf[..n]).map_err(|_| {
                    std::io::Error::new(ErrorKind::InvalidData, "non-utf8 discovery answer")
                })?;
                if let Some(port) = text.strip_prefix(DISCOVERY_ANSWER_PREFIX) {
                    return port.parse::<u16>().map_err(|_| {
                        std::io::Error::new(ErrorKind::InvalidData, "bad port in discovery answer")
                    });
                }
                return Err(std::io::Error::new(
                    ErrorKind::InvalidData,
                    "malformed discovery answer",
                ));
            }
            Ok(_) => {} // answer from someone else: keep waiting
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
        if Instant::now() > deadline {
            return Err(std::io::Error::new(
                ErrorKind::TimedOut,
                "no collector answered discovery",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_discovers_the_advertised_port() {
        let responder = DiscoveryResponder::start("127.0.0.1:0".parse().unwrap(), 4711).unwrap();
        let port = discover(responder.addr(), Duration::from_secs(5)).unwrap();
        assert_eq!(port, 4711);
    }

    #[test]
    fn noise_is_ignored_but_service_continues() {
        let responder = DiscoveryResponder::start("127.0.0.1:0".parse().unwrap(), 4712).unwrap();
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        socket.send_to(b"GET / HTTP/1.1", responder.addr()).unwrap();
        socket
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let mut buf = [0u8; 64];
        assert!(socket.recv_from(&mut buf).is_err(), "noise gets no answer");
        let port = discover(responder.addr(), Duration::from_secs(5)).unwrap();
        assert_eq!(port, 4712, "responder still serves real requests");
    }
}
