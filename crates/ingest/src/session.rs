//! Per-connection session state: the protocol state machine and shard
//! reassembly.
//!
//! This module is deliberately socket-free. [`SessionState`] consumes
//! decoded [`Frame`]s and emits [`Action`]s for the transport layer to
//! perform; [`Assembler`] collects finalized [`ShardResult`]s and
//! reassembles them into [`RunDataset`]s/[`StudyDataset`]s. Keeping both
//! pure makes every protocol rule unit-testable without a socket in
//! sight, and it is what the fault-injection suite leans on: a
//! violation is a value, not a hang.
//!
//! ## The state machine
//!
//! ```text
//! AwaitHello --HELLO--> Active --VISIT_BEGIN--> InVisit
//!                        ^  |                    |   ^
//!                        |  +----BYE--> ByeSeen  |   |
//!                        +-----VISIT_END---------+   CAPTURE (loops)
//! ```
//!
//! `HEARTBEAT` is legal in `Active` and `InVisit`. Any other
//! command/state pair, any sequence-number gap or repeat, and any
//! malformed payload is a [`Violation`]: the session is rejected and
//! none of its data survives.
//!
//! ## Sharding = visit sharding
//!
//! A run streams in as `shards` sessions, each carrying a **contiguous
//! range of visits** and exactly the capture-log slice those visits
//! recorded — the same decomposition `hbbtv_proxy::VisitHandle` gives
//! the parallel harness, where the run's capture log is the
//! concatenation of per-visit shard logs in canonical visit order.
//! Reassembly is therefore pure concatenation in shard order, which is
//! what makes a streamed dataset byte-identical to its in-process
//! original.

use crate::frame::{
    Ack, Bye, Command, Frame, FrameError, Hello, RunTrailer, VisitBegin, VisitEnd, PROTO_VERSION,
};
use hbbtv_proxy::{CapturedExchange, VisitId};
use hbbtv_study::{RunDataset, RunKind, StudyDataset, VisitSummary};
use std::collections::BTreeMap;
use std::fmt;

/// Why a session was rejected. Carried into the server's rejection log
/// so tests (and operators) can tell a torn frame from a timeout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The byte stream failed to decode as frames.
    Decode(String),
    /// A frame arrived with the wrong sequence number (duplicate,
    /// reordered, or gapped).
    BadSeq {
        /// What the server expected next.
        expected: u32,
        /// What arrived.
        got: u32,
    },
    /// A legal frame arrived in the wrong state.
    BadState(String),
    /// The HELLO itself was unacceptable (version, shard layout, run
    /// label).
    BadHello(String),
    /// VISIT_END's declared capture count did not match what was
    /// received and decoded.
    CountMismatch {
        /// The visit in question.
        visit: VisitId,
        /// Count the client declared.
        declared: u64,
        /// Exchanges the server actually decoded for the visit.
        received: u64,
    },
    /// The connection stalled past the heartbeat timeout.
    HeartbeatTimeout,
    /// The peer closed the connection mid-session.
    Eof,
    /// Socket-level failure.
    Io(String),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Decode(e) => write!(f, "decode error: {e}"),
            Violation::BadSeq { expected, got } => {
                write!(f, "sequence violation: expected {expected}, got {got}")
            }
            Violation::BadState(e) => write!(f, "protocol violation: {e}"),
            Violation::BadHello(e) => write!(f, "bad hello: {e}"),
            Violation::CountMismatch {
                visit,
                declared,
                received,
            } => write!(
                f,
                "visit {} declared {declared} captures but {received} arrived",
                visit.0
            ),
            Violation::HeartbeatTimeout => write!(f, "heartbeat timeout"),
            Violation::Eof => write!(f, "connection closed mid-session"),
            Violation::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl From<FrameError> for Violation {
    fn from(e: FrameError) -> Violation {
        Violation::Decode(e.to_string())
    }
}

/// What the transport layer must do after a frame was consumed.
#[derive(Debug, PartialEq)]
pub enum Action {
    /// The session identified itself: register `(study, run, shard)`
    /// before any data is accepted.
    Register(Hello),
    /// Send an ACK now.
    Ack(Ack),
    /// Queue a capture batch for pool decoding. `visit_ord` is the
    /// session-local ordinal of the visit the batch belongs to.
    QueueBatch {
        /// Session-local visit ordinal (index into finished+open visits).
        visit_ord: usize,
        /// Raw JSON payload, decoded later on the worker pool.
        payload: Vec<u8>,
    },
    /// BYE received: finalize once every queued batch has been decoded,
    /// then ACK with the authoritative exchange count.
    ByeReady {
        /// Sequence number of the BYE frame, for its deferred ACK.
        bye_seq: u32,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    AwaitHello,
    Active,
    InVisit,
    ByeSeen,
}

/// Progress of one visit within a session.
#[derive(Debug)]
struct VisitProgress {
    begin: VisitBegin,
    /// Capture count declared by VISIT_END; `None` while the visit is
    /// open.
    declared: Option<u64>,
    /// Exchanges decoded for this visit so far.
    received: u64,
}

/// The protocol state machine for one ingest session.
#[derive(Debug)]
pub struct SessionState {
    phase: Phase,
    next_seq: u32,
    hello: Option<Hello>,
    visits: Vec<VisitProgress>,
    captures: Vec<CapturedExchange>,
    trailer: Option<RunTrailer>,
}

impl Default for SessionState {
    fn default() -> Self {
        SessionState::new()
    }
}

impl SessionState {
    /// A fresh session awaiting its HELLO.
    pub fn new() -> SessionState {
        SessionState {
            phase: Phase::AwaitHello,
            next_seq: 0,
            hello: None,
            visits: Vec::new(),
            captures: Vec::new(),
            trailer: None,
        }
    }

    /// The session's HELLO, once received.
    pub fn hello(&self) -> Option<&Hello> {
        self.hello.as_ref()
    }

    /// Whether BYE has been received (the session is draining).
    pub fn bye_seen(&self) -> bool {
        self.phase == Phase::ByeSeen
    }

    /// Exchanges decoded so far.
    pub fn exchanges(&self) -> u64 {
        self.captures.len() as u64
    }

    /// The protocol phase as the stable lowercase name used in the
    /// `STATS` session table (`"await_hello"`, `"active"`,
    /// `"in_visit"`, `"draining"`).
    pub fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::AwaitHello => "await_hello",
            Phase::Active => "active",
            Phase::InVisit => "in_visit",
            Phase::ByeSeen => "draining",
        }
    }

    /// Visits opened so far (including the one in progress, if any).
    pub fn visit_count(&self) -> usize {
        self.visits.len()
    }

    /// Consumes one frame, advancing the state machine.
    pub fn on_frame(&mut self, frame: Frame) -> Result<Vec<Action>, Violation> {
        if frame.seq != self.next_seq {
            return Err(Violation::BadSeq {
                expected: self.next_seq,
                got: frame.seq,
            });
        }
        self.next_seq = self.next_seq.wrapping_add(1);
        match (self.phase, frame.command) {
            (Phase::AwaitHello, Command::Hello) => {
                let hello: Hello = frame.parse()?;
                if hello.proto != PROTO_VERSION {
                    return Err(Violation::BadHello(format!(
                        "protocol version {} (want {PROTO_VERSION})",
                        hello.proto
                    )));
                }
                if hello.shards == 0 || hello.shard >= hello.shards {
                    return Err(Violation::BadHello(format!(
                        "shard {}/{} out of range",
                        hello.shard, hello.shards
                    )));
                }
                if run_kind_of(&hello.run).is_none() {
                    return Err(Violation::BadHello(format!("unknown run {:?}", hello.run)));
                }
                self.hello = Some(hello.clone());
                self.phase = Phase::Active;
                Ok(vec![
                    Action::Register(hello),
                    Action::Ack(Ack {
                        of: frame.seq,
                        exchanges: 0,
                    }),
                ])
            }
            (Phase::Active, Command::VisitBegin) => {
                let begin: VisitBegin = frame.parse()?;
                if let Some(last) = self.visits.last() {
                    if begin.visit <= last.begin.visit {
                        return Err(Violation::BadState(format!(
                            "visit {} does not advance past {}",
                            begin.visit.0, last.begin.visit.0
                        )));
                    }
                }
                self.visits.push(VisitProgress {
                    begin,
                    declared: None,
                    received: 0,
                });
                self.phase = Phase::InVisit;
                Ok(vec![])
            }
            (Phase::InVisit, Command::Capture) => Ok(vec![Action::QueueBatch {
                visit_ord: self.visits.len() - 1,
                payload: frame.payload,
            }]),
            (Phase::InVisit, Command::VisitEnd) => {
                let end: VisitEnd = frame.parse()?;
                let open = self.visits.last_mut().expect("InVisit has an open visit");
                if end.visit != open.begin.visit {
                    return Err(Violation::BadState(format!(
                        "VISIT_END for {} while visit {} is open",
                        end.visit.0, open.begin.visit.0
                    )));
                }
                open.declared = Some(end.captures);
                self.phase = Phase::Active;
                Ok(vec![Action::Ack(Ack {
                    of: frame.seq,
                    exchanges: self.captures.len() as u64,
                })])
            }
            (Phase::Active | Phase::InVisit, Command::Heartbeat) => Ok(vec![]),
            (Phase::Active, Command::Bye) => {
                let bye: Bye = frame.parse()?;
                self.trailer = bye.trailer;
                self.phase = Phase::ByeSeen;
                Ok(vec![Action::ByeReady { bye_seq: frame.seq }])
            }
            (phase, command) => Err(Violation::BadState(format!(
                "{command:?} not legal in {phase:?}"
            ))),
        }
    }

    /// Applies one decoded capture batch (called from the pool drain, in
    /// the exact order the batches were queued).
    pub fn apply_batch(&mut self, visit_ord: usize, batch: Vec<CapturedExchange>) {
        self.visits[visit_ord].received += batch.len() as u64;
        self.captures.extend(batch);
    }

    /// Seals the session after BYE once every queued batch is decoded:
    /// verifies per-visit declared counts and produces the shard's
    /// contribution to the run.
    pub fn finalize(&mut self) -> Result<ShardResult, Violation> {
        debug_assert_eq!(self.phase, Phase::ByeSeen);
        let hello = self.hello.clone().expect("ByeSeen implies hello");
        let mut summaries = Vec::with_capacity(self.visits.len());
        for v in &self.visits {
            let declared = v.declared.unwrap_or(0);
            if declared != v.received {
                return Err(Violation::CountMismatch {
                    visit: v.begin.visit,
                    declared,
                    received: v.received,
                });
            }
            summaries.push(VisitSummary {
                visit: v.begin.visit,
                channel: v.begin.channel,
                opened: v.begin.opened,
                captures: v.received as usize,
            });
        }
        Ok(ShardResult {
            hello,
            visits: summaries,
            captures: std::mem::take(&mut self.captures),
            trailer: self.trailer.take(),
        })
    }
}

/// One finalized session: a shard's worth of a run.
#[derive(Debug)]
pub struct ShardResult {
    /// The session's identity.
    pub hello: Hello,
    /// Visit summaries, reassembled from VISIT_BEGIN/VISIT_END pairs.
    pub visits: Vec<VisitSummary>,
    /// The shard's capture-log slice, in streamed order.
    pub captures: Vec<CapturedExchange>,
    /// Run-level trailer, on the shard that carried it.
    pub trailer: Option<RunTrailer>,
}

/// Parses a run label back to its [`RunKind`].
pub fn run_kind_of(label: &str) -> Option<RunKind> {
    RunKind::ALL.iter().copied().find(|k| k.label() == label)
}

#[derive(Debug)]
struct RunSlot {
    shards: u32,
    results: Vec<Option<ShardResult>>,
}

impl RunSlot {
    fn complete(&self) -> bool {
        self.results.iter().all(|r| r.is_some())
    }
}

/// Collects finalized shards and reassembles complete runs/studies.
#[derive(Debug, Default)]
pub struct Assembler {
    runs: BTreeMap<(String, String), RunSlot>,
}

impl Assembler {
    /// A fresh, empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Adds one finalized shard. Rejects shard-layout conflicts and
    /// duplicate shards (a retry of an already-landed shard must not
    /// silently double data).
    pub fn add(&mut self, result: ShardResult) -> Result<(), String> {
        let key = (result.hello.study.clone(), result.hello.run.clone());
        let slot = self.runs.entry(key).or_insert_with(|| RunSlot {
            shards: result.hello.shards,
            results: (0..result.hello.shards).map(|_| None).collect(),
        });
        if slot.shards != result.hello.shards {
            return Err(format!(
                "shard layout conflict: run {} already has {} shards, session declared {}",
                result.hello.run, slot.shards, result.hello.shards
            ));
        }
        let idx = result.hello.shard as usize;
        if slot.results[idx].is_some() {
            return Err(format!(
                "duplicate shard {} for run {}",
                result.hello.shard, result.hello.run
            ));
        }
        slot.results[idx] = Some(result);
        Ok(())
    }

    /// Run kinds of `study` whose every shard has landed, in canonical
    /// order.
    pub fn complete_runs(&self, study: &str) -> Vec<RunKind> {
        RunKind::ALL
            .iter()
            .copied()
            .filter(|k| {
                self.runs
                    .get(&(study.to_string(), k.label().to_string()))
                    .is_some_and(|slot| slot.complete())
            })
            .collect()
    }

    /// Removes and reassembles one complete run: shards concatenate in
    /// shard order, which by the visit-sharding contract reproduces the
    /// original capture log exactly.
    pub fn take_run(&mut self, study: &str, kind: RunKind) -> Result<RunDataset, String> {
        let key = (study.to_string(), kind.label().to_string());
        let complete = self.runs.get(&key).is_some_and(|s| s.complete());
        if !complete {
            return Err(format!("run {kind} of study {study:?} is not complete"));
        }
        let slot = self.runs.remove(&key).expect("checked above");
        let mut visits = Vec::new();
        let mut captures = Vec::new();
        let mut trailer = None;
        for result in slot.results.into_iter().flatten() {
            visits.extend(result.visits);
            captures.extend(result.captures);
            if let Some(t) = result.trailer {
                if trailer.is_some() {
                    return Err(format!("run {kind}: more than one shard carried a trailer"));
                }
                trailer = Some(t);
            }
        }
        let Some(t) = trailer else {
            return Err(format!("run {kind}: no shard carried the run trailer"));
        };
        Ok(RunDataset {
            run: kind,
            channels_measured: t.channels_measured,
            channel_names: t.channel_names,
            visits,
            captures,
            cookies: t.cookies,
            local_storage: t.local_storage,
            screenshots: t.screenshots,
            interactions: t.interactions,
            consented_channels: t.consented_channels,
        })
    }

    /// Removes and reassembles every complete run of `study` into a
    /// dataset, runs in canonical [`RunKind::ALL`] order. Incomplete
    /// runs (lost shards, rejected sessions) are simply absent — losing
    /// one TV must not block the fleet.
    pub fn take_study(&mut self, study: &str) -> Result<StudyDataset, String> {
        let mut runs = Vec::new();
        for kind in self.complete_runs(study) {
            runs.push(self.take_run(study, kind)?);
        }
        Ok(StudyDataset { runs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbtv_broadcast::ChannelId;
    use hbbtv_net::Timestamp;

    fn hello_frame(seq: u32) -> Frame {
        Frame::json(
            Command::Hello,
            seq,
            &Hello {
                proto: PROTO_VERSION,
                study: "s".into(),
                run: "General".into(),
                shard: 0,
                shards: 1,
            },
        )
    }

    fn begin_frame(seq: u32, visit: u32) -> Frame {
        Frame::json(
            Command::VisitBegin,
            seq,
            &VisitBegin {
                visit: VisitId(visit),
                channel: ChannelId(1),
                opened: Timestamp::from_unix(100),
            },
        )
    }

    #[test]
    fn happy_path_produces_shard_result() {
        let mut s = SessionState::new();
        let a = s.on_frame(hello_frame(0)).unwrap();
        assert!(matches!(a[0], Action::Register(_)));
        assert!(matches!(a[1], Action::Ack(Ack { of: 0, .. })));
        s.on_frame(begin_frame(1, 0)).unwrap();
        let a = s.on_frame(crate::frame::capture_frame(2, &[])).unwrap();
        let Action::QueueBatch { visit_ord, payload } = &a[0] else {
            panic!("expected QueueBatch");
        };
        assert_eq!(*visit_ord, 0);
        s.apply_batch(0, crate::frame::parse_capture_batch(payload).unwrap());
        s.on_frame(Frame::json(
            Command::VisitEnd,
            3,
            &VisitEnd {
                visit: VisitId(0),
                captures: 0,
            },
        ))
        .unwrap();
        let a = s
            .on_frame(Frame::json(Command::Bye, 4, &Bye { trailer: None }))
            .unwrap();
        assert_eq!(a, vec![Action::ByeReady { bye_seq: 4 }]);
        let shard = s.finalize().unwrap();
        assert_eq!(shard.visits.len(), 1);
        assert_eq!(shard.visits[0].captures, 0);
    }

    #[test]
    fn seq_gap_and_repeat_are_violations() {
        let mut s = SessionState::new();
        s.on_frame(hello_frame(0)).unwrap();
        let err = s.on_frame(begin_frame(5, 0)).unwrap_err();
        assert_eq!(
            err,
            Violation::BadSeq {
                expected: 1,
                got: 5
            }
        );

        let mut s = SessionState::new();
        s.on_frame(hello_frame(0)).unwrap();
        let err = s.on_frame(hello_frame(0)).unwrap_err();
        assert_eq!(
            err,
            Violation::BadSeq {
                expected: 1,
                got: 0
            }
        );
    }

    #[test]
    fn capture_outside_a_visit_is_a_violation() {
        let mut s = SessionState::new();
        s.on_frame(hello_frame(0)).unwrap();
        let err = s.on_frame(crate::frame::capture_frame(1, &[])).unwrap_err();
        assert!(matches!(err, Violation::BadState(_)));
    }

    #[test]
    fn non_monotonic_visits_are_rejected() {
        let mut s = SessionState::new();
        s.on_frame(hello_frame(0)).unwrap();
        s.on_frame(begin_frame(1, 3)).unwrap();
        s.on_frame(Frame::json(
            Command::VisitEnd,
            2,
            &VisitEnd {
                visit: VisitId(3),
                captures: 0,
            },
        ))
        .unwrap();
        let err = s.on_frame(begin_frame(3, 3)).unwrap_err();
        assert!(matches!(err, Violation::BadState(_)));
    }

    #[test]
    fn bad_hello_variants() {
        let mut s = SessionState::new();
        let bad_proto = Frame::json(
            Command::Hello,
            0,
            &Hello {
                proto: 99,
                study: "s".into(),
                run: "General".into(),
                shard: 0,
                shards: 1,
            },
        );
        assert!(matches!(
            s.on_frame(bad_proto).unwrap_err(),
            Violation::BadHello(_)
        ));

        let mut s = SessionState::new();
        let bad_shard = Frame::json(
            Command::Hello,
            0,
            &Hello {
                proto: PROTO_VERSION,
                study: "s".into(),
                run: "General".into(),
                shard: 2,
                shards: 2,
            },
        );
        assert!(matches!(
            s.on_frame(bad_shard).unwrap_err(),
            Violation::BadHello(_)
        ));

        let mut s = SessionState::new();
        let bad_run = Frame::json(
            Command::Hello,
            0,
            &Hello {
                proto: PROTO_VERSION,
                study: "s".into(),
                run: "Purple".into(),
                shard: 0,
                shards: 1,
            },
        );
        assert!(matches!(
            s.on_frame(bad_run).unwrap_err(),
            Violation::BadHello(_)
        ));
    }

    #[test]
    fn count_mismatch_is_caught_at_finalize() {
        let mut s = SessionState::new();
        s.on_frame(hello_frame(0)).unwrap();
        s.on_frame(begin_frame(1, 0)).unwrap();
        s.on_frame(Frame::json(
            Command::VisitEnd,
            2,
            &VisitEnd {
                visit: VisitId(0),
                captures: 7,
            },
        ))
        .unwrap();
        s.on_frame(Frame::json(Command::Bye, 3, &Bye { trailer: None }))
            .unwrap();
        let err = s.finalize().unwrap_err();
        assert_eq!(
            err,
            Violation::CountMismatch {
                visit: VisitId(0),
                declared: 7,
                received: 0
            }
        );
    }

    #[test]
    fn assembler_rejects_duplicate_and_conflicting_shards() {
        let mk = |shard: u32, shards: u32| ShardResult {
            hello: Hello {
                proto: PROTO_VERSION,
                study: "s".into(),
                run: "General".into(),
                shard,
                shards,
            },
            visits: vec![],
            captures: vec![],
            trailer: None,
        };
        let mut asm = Assembler::new();
        asm.add(mk(0, 2)).unwrap();
        assert!(asm.add(mk(0, 2)).is_err(), "duplicate shard");
        assert!(asm.add(mk(1, 3)).is_err(), "layout conflict");
        assert!(asm.complete_runs("s").is_empty());
        asm.add(mk(1, 2)).unwrap();
        assert_eq!(asm.complete_runs("s"), vec![RunKind::General]);
        // Complete but trailer-less: reassembly reports it.
        assert!(asm.take_run("s", RunKind::General).is_err());
    }
}
