//! Shared byte-level Aho–Corasick automaton.
//!
//! Two consumers, one machine: the policy keyword scanner
//! (`hbbtv-policies`, ~95 bilingual needles over policy texts) and the
//! filter-list residual engine (`hbbtv-filterlists`, one literal per
//! substring/start-anchored rule, up to ~10^4 needles at 10^5-rule list
//! scale). Both need the same thing — one forward pass over a byte
//! stream that reports every needle occurrence — but at very different
//! needle counts, so the transition table is *byte-class compressed*: a
//! 256-entry class map folds every byte that occurs in no needle into
//! class 0 (provably always transitioning to the root), and the dense
//! `states × classes` table only spends columns on bytes that actually
//! appear. At policy scale that is ~30 columns instead of 256; at
//! filter-list scale it keeps a 10^4-needle automaton in single-digit
//! megabytes where a raw 256-wide table would cost ~25× more.
//!
//! The automaton is case-exact: callers that want folding (policies)
//! fold bytes *before* stepping. Matching is reported per needle id via
//! closed output sets (a state's outputs include every needle ending at
//! any suffix of the path to it), precomputed at build so the walk
//! itself never chases failure links.
//!
//! The raw tables are exposed (`raw_*` accessors + [`Automaton::from_raw`])
//! so the filter-list crate can serialize an automaton into its
//! prebuilt "HBFL" image and revalidate it on load without rebuilding.

#![forbid(unsafe_code)]

use std::collections::VecDeque;

const VACANT: u32 = u32::MAX;

/// A dense-table, byte-class-compressed Aho–Corasick DFA.
///
/// Built once from `(needle, id)` pairs; [`step`](Automaton::step) is
/// two indexed loads per input byte, [`outputs`](Automaton::outputs)
/// yields the ids of every needle ending at the current position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Automaton {
    /// Byte → column. Class 0 is reserved for bytes in no needle; its
    /// column is all-root by construction.
    classes: Box<[u8; 256]>,
    n_classes: u32,
    /// `n_states × n_classes` row-major transition table.
    trans: Vec<u32>,
    /// Per-state closed-output ranges into `out_ids`; length
    /// `n_states + 1`, monotone.
    out_start: Vec<u32>,
    /// Flattened closed output sets (needle ids).
    out_ids: Vec<u32>,
}

impl Automaton {
    /// Builds the automaton over `(needle, id)` pairs.
    ///
    /// Empty needles are ignored (a zero-length needle would "match"
    /// at every position). Duplicate needles with distinct ids are
    /// fine: every id is reported. Ids are caller-defined payloads —
    /// they need not be dense or unique.
    pub fn build(needles: &[(&[u8], u32)]) -> Automaton {
        // Byte classes, assigned in ascending byte order so the table
        // layout is deterministic. Class 0 = "occurs in no needle".
        let mut classes = Box::new([0u8; 256]);
        let mut used = [false; 256];
        for (needle, _) in needles {
            for &b in *needle {
                used[b as usize] = true;
            }
        }
        let mut n_classes = 1u32;
        for b in 0..256 {
            if used[b] {
                assert!(n_classes < 256, "at most 255 distinct needle bytes");
                classes[b] = n_classes as u8;
                n_classes += 1;
            }
        }
        let k = n_classes as usize;

        // Trie over class-mapped bytes.
        let mut rows: Vec<u32> = vec![VACANT; k];
        let mut own: Vec<Vec<u32>> = vec![Vec::new()];
        for &(needle, id) in needles {
            if needle.is_empty() {
                continue;
            }
            let mut s = 0usize;
            for &b in needle {
                let c = classes[b as usize] as usize;
                let next = rows[s * k + c];
                s = if next == VACANT {
                    rows.extend(std::iter::repeat_n(VACANT, k));
                    own.push(Vec::new());
                    let fresh = (own.len() - 1) as u32;
                    rows[s * k + c] = fresh;
                    fresh as usize
                } else {
                    next as usize
                };
            }
            own[s].push(id);
        }
        let n_states = own.len();

        // Breadth-first failure links, fused with the DFA conversion
        // (as in the policies scanner this generalizes): once a state
        // is popped its row is total. The pop order is recorded so
        // closed outputs can be folded parents-before-children.
        let mut fail = vec![0u32; n_states];
        let mut order: Vec<u32> = Vec::with_capacity(n_states);
        let mut queue = VecDeque::new();
        for slot in rows[..k].iter_mut() {
            if *slot == VACANT {
                *slot = 0;
            } else if *slot != 0 {
                queue.push_back(*slot);
            }
        }
        while let Some(s) = queue.pop_front() {
            order.push(s);
            let f = fail[s as usize] as usize;
            let fail_row: Vec<u32> = rows[f * k..(f + 1) * k].to_vec();
            let row = &mut rows[s as usize * k..(s as usize + 1) * k];
            for (slot, via_fail) in row.iter_mut().zip(fail_row) {
                if *slot == VACANT {
                    *slot = via_fail;
                } else {
                    fail[*slot as usize] = via_fail;
                    queue.push_back(*slot);
                }
            }
        }

        // Closed outputs in BFS order: out(s) = own(s) ∪ out(fail(s)).
        let mut closed: Vec<Vec<u32>> = own;
        for &s in &order {
            let f = fail[s as usize] as usize;
            if !closed[f].is_empty() {
                let inherited = closed[f].clone();
                closed[s as usize].extend(inherited);
            }
        }
        let mut out_start = Vec::with_capacity(n_states + 1);
        let mut out_ids = Vec::new();
        let mut at = 0u32;
        for list in &closed {
            out_start.push(at);
            out_ids.extend_from_slice(list);
            at += list.len() as u32;
        }
        out_start.push(at);

        Automaton {
            classes,
            n_classes,
            trans: rows,
            out_start,
            out_ids,
        }
    }

    /// Advances one byte. State 0 is the root/start state.
    #[inline]
    pub fn step(&self, state: u32, byte: u8) -> u32 {
        let c = self.classes[byte as usize] as u32;
        self.trans[(state * self.n_classes + c) as usize]
    }

    /// The ids of every needle ending at `state` (closed over failure
    /// links — suffix matches included).
    #[inline]
    pub fn outputs(&self, state: u32) -> &[u32] {
        let a = self.out_start[state as usize] as usize;
        let z = self.out_start[state as usize + 1] as usize;
        &self.out_ids[a..z]
    }

    /// Walks `hay` and invokes `f` once per needle occurrence (same id
    /// can fire repeatedly if its needle recurs).
    #[inline]
    pub fn for_each_match(&self, hay: &[u8], mut f: impl FnMut(u32)) {
        let mut s = 0u32;
        for &b in hay {
            s = self.step(s, b);
            let a = self.out_start[s as usize];
            let z = self.out_start[s as usize + 1];
            if a != z {
                for &id in &self.out_ids[a as usize..z as usize] {
                    f(id);
                }
            }
        }
    }

    /// Number of DFA states (≥ 1; the root always exists).
    pub fn n_states(&self) -> u32 {
        (self.trans.len() as u32) / self.n_classes
    }

    /// Number of byte classes, including reserved class 0.
    pub fn n_classes(&self) -> u32 {
        self.n_classes
    }

    /// True when no (non-empty) needle was supplied: every walk stays
    /// at the root and reports nothing.
    pub fn is_trivial(&self) -> bool {
        self.out_ids.is_empty()
    }

    /// Raw byte→class map, for serialization.
    pub fn raw_classes(&self) -> &[u8; 256] {
        &self.classes
    }

    /// Raw row-major transition table, for serialization.
    pub fn raw_trans(&self) -> &[u32] {
        &self.trans
    }

    /// Raw per-state output offsets, for serialization.
    pub fn raw_out_start(&self) -> &[u32] {
        &self.out_start
    }

    /// Raw flattened output ids, for serialization.
    pub fn raw_out_ids(&self) -> &[u32] {
        &self.out_ids
    }

    /// Reassembles an automaton from raw tables (the deserialization
    /// path), revalidating every structural invariant so a corrupt
    /// image can never index out of bounds at match time.
    pub fn from_raw(
        classes: [u8; 256],
        n_classes: u32,
        trans: Vec<u32>,
        out_start: Vec<u32>,
        out_ids: Vec<u32>,
    ) -> Result<Automaton, String> {
        if n_classes == 0 || n_classes > 256 {
            return Err(format!("automaton: bad class count {n_classes}"));
        }
        if classes.iter().any(|&c| (c as u32) >= n_classes) {
            return Err("automaton: class map entry out of range".into());
        }
        if trans.is_empty() || !trans.len().is_multiple_of(n_classes as usize) {
            return Err(format!(
                "automaton: transition table length {} not a multiple of {n_classes}",
                trans.len()
            ));
        }
        let n_states = (trans.len() / n_classes as usize) as u32;
        if trans.iter().any(|&t| t >= n_states) {
            return Err("automaton: transition target out of range".into());
        }
        if out_start.len() != n_states as usize + 1 {
            return Err(format!(
                "automaton: output index length {} for {n_states} states",
                out_start.len()
            ));
        }
        if out_start.windows(2).any(|w| w[0] > w[1]) {
            return Err("automaton: output index not monotone".into());
        }
        if *out_start.last().unwrap() as usize != out_ids.len() {
            return Err("automaton: output index does not cover output ids".into());
        }
        Ok(Automaton {
            classes: Box::new(classes),
            n_classes,
            trans,
            out_start,
            out_ids,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn build_strs(needles: &[(&str, u32)]) -> Automaton {
        let pairs: Vec<(&[u8], u32)> = needles.iter().map(|&(n, id)| (n.as_bytes(), id)).collect();
        Automaton::build(&pairs)
    }

    fn all_matches(a: &Automaton, hay: &str) -> Vec<u32> {
        let mut out = Vec::new();
        a.for_each_match(hay.as_bytes(), |id| out.push(id));
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn reports_overlapping_and_suffix_needles() {
        let a = build_strs(&[("he", 0), ("she", 1), ("his", 2), ("hers", 3)]);
        assert_eq!(all_matches(&a, "ushers"), vec![0, 1, 3]);
        assert_eq!(all_matches(&a, "his"), vec![2]);
        assert_eq!(all_matches(&a, "xyz"), Vec::<u32>::new());
    }

    #[test]
    fn duplicate_needles_report_every_id() {
        let a = build_strs(&[("abc", 7), ("abc", 9)]);
        assert_eq!(all_matches(&a, "xxabcxx"), vec![7, 9]);
    }

    #[test]
    fn empty_needles_are_ignored() {
        let a = build_strs(&[("", 0), ("b", 1)]);
        assert!(!a.is_trivial());
        assert_eq!(all_matches(&a, "aaa"), Vec::<u32>::new());
        assert_eq!(all_matches(&a, "abba"), vec![1]);
    }

    #[test]
    fn trivial_automaton_matches_nothing() {
        let a = Automaton::build(&[]);
        assert!(a.is_trivial());
        assert_eq!(a.n_states(), 1);
        assert_eq!(all_matches(&a, "anything"), Vec::<u32>::new());
    }

    #[test]
    fn unused_bytes_share_class_zero() {
        let a = build_strs(&[("ab", 0)]);
        // 'a', 'b' used -> classes 1, 2; everything else class 0.
        assert_eq!(a.n_classes(), 3);
        assert_eq!(a.raw_classes()[b'z' as usize], 0);
        // Class-0 column must be all-root.
        let k = a.n_classes() as usize;
        for s in 0..a.n_states() as usize {
            assert_eq!(a.raw_trans()[s * k], 0);
        }
    }

    #[test]
    fn raw_roundtrip_rebuilds_identical_machine() {
        let a = build_strs(&[("track", 0), ("rack", 1), ("ck", 2)]);
        let b = Automaton::from_raw(
            *a.raw_classes(),
            a.n_classes(),
            a.raw_trans().to_vec(),
            a.raw_out_start().to_vec(),
            a.raw_out_ids().to_vec(),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_raw_rejects_structural_corruption() {
        let a = build_strs(&[("ab", 0)]);
        let (cls, k) = (*a.raw_classes(), a.n_classes());
        let (t, s, o) = (
            a.raw_trans().to_vec(),
            a.raw_out_start().to_vec(),
            a.raw_out_ids().to_vec(),
        );
        assert!(Automaton::from_raw(cls, 0, t.clone(), s.clone(), o.clone()).is_err());
        let mut bad_t = t.clone();
        bad_t[0] = 10_000;
        assert!(Automaton::from_raw(cls, k, bad_t, s.clone(), o.clone()).is_err());
        let mut bad_s = s.clone();
        bad_s.pop();
        assert!(Automaton::from_raw(cls, k, t.clone(), bad_s, o.clone()).is_err());
        let mut bad_o = o.clone();
        bad_o.push(0);
        assert!(Automaton::from_raw(cls, k, t, s, bad_o).is_err());
    }

    proptest! {
        /// The automaton agrees with naive substring search over random
        /// needle sets and haystacks.
        #[test]
        fn agrees_with_naive_contains(
            needles in proptest::collection::vec("[a-d]{1,4}", 1..12),
            hay in "[a-e]{0,40}",
        ) {
            let pairs: Vec<(&[u8], u32)> = needles
                .iter()
                .enumerate()
                .map(|(i, n)| (n.as_bytes(), i as u32))
                .collect();
            let a = Automaton::build(&pairs);
            let mut got = Vec::new();
            a.for_each_match(hay.as_bytes(), |id| got.push(id));
            got.sort_unstable();
            got.dedup();
            let want: Vec<u32> = needles
                .iter()
                .enumerate()
                .filter(|(_, n)| hay.contains(n.as_str()))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(got, want);
        }

        /// Occurrence *positions* are also right: every callback fires at
        /// the end of a real occurrence.
        #[test]
        fn match_counts_agree_with_naive(
            needle in "[ab]{1,3}",
            hay in "[abc]{0,30}",
        ) {
            let a = Automaton::build(&[(needle.as_bytes(), 5)]);
            let mut count = 0usize;
            a.for_each_match(hay.as_bytes(), |id| {
                assert_eq!(id, 5);
                count += 1;
            });
            let naive = (0..hay.len())
                .filter(|&i| hay[i..].starts_with(needle.as_str()))
                .count();
            prop_assert_eq!(count, naive);
        }
    }
}
