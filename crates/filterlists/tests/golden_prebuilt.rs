//! Golden-image test for the HBFL prebuilt engine format.
//!
//! The checked-in `tests/golden/easylist.hbfl` pins the serialized
//! form of the bundled EasyList snapshot. Encoding drift (a field
//! reordered, a width changed, a hash function touched) fails here
//! before it can silently invalidate prebuilt images in the field —
//! any such change must bump the HBFL version and re-bless the golden:
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test -p hbbtv-filterlists --test golden_prebuilt
//! ```

use hbbtv_filterlists::{bundled, FilterList, MatchOutcome, RequestContext, ResourceKind};
use hbbtv_net::Url;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/easylist.hbfl")
}

#[test]
fn golden_easylist_image_is_stable_and_loads() {
    let list = bundled::easylist();
    let image = list.to_prebuilt();

    let path = golden_path();
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &image).expect("write golden image");
        return;
    }

    let golden = std::fs::read(&path).expect(
        "tests/golden/easylist.hbfl missing — regenerate with \
         BLESS_GOLDEN=1 cargo test -p hbbtv-filterlists --test golden_prebuilt",
    );
    assert_eq!(
        golden, image,
        "HBFL encoding drifted from the checked-in golden image; \
         bump the format version and re-bless with BLESS_GOLDEN=1"
    );

    // The golden image must load and answer byte-identically to the
    // freshly parsed engine on a URL sample that exercises hosts,
    // domain buckets, residual rules, and misses.
    let loaded = FilterList::from_prebuilt(&golden).expect("golden image loads");
    assert_eq!(loaded.name(), list.name());
    assert_eq!(loaded.len(), list.len());
    let urls = [
        "http://ad.doubleclick.net/pixel",
        "http://cdn.adsafeprotected.com/x.js",
        "http://tvping.com/track?id=1",
        "http://example.de/page/1",
        "http://an.xiti.com/hit.gif",
        "http://clean.example/banner/ad.png",
    ];
    let mut matched = 0;
    for text in urls {
        let url: Url = text.parse().expect("well-formed sample URL");
        for third in [false, true] {
            for kind in [
                ResourceKind::Other,
                ResourceKind::Image,
                ResourceKind::Script,
            ] {
                let ctx = RequestContext {
                    third_party: third,
                    kind,
                };
                let a = list.matching_rule(&url, ctx);
                let b = loaded.matching_rule(&url, ctx);
                assert_eq!(a, b, "golden engine diverged on {text}");
                if !matches!(a, MatchOutcome::NoMatch) {
                    matched += 1;
                }
            }
        }
    }
    assert!(matched > 0, "sample never hit the list — test is vacuous");
}
