//! Property-based tests for the filter-list matcher.

use hbbtv_filterlists::{
    parse_adblock_line, parse_hosts, FilterList, RequestContext, ResourceKind,
};
use hbbtv_net::Url;
use proptest::prelude::*;

fn domain() -> impl Strategy<Value = String> {
    (
        "[a-z]{2,8}",
        prop_oneof![Just("de"), Just("com"), Just("net"), Just("tv")],
    )
        .prop_map(|(name, tld)| format!("{name}.{tld}"))
}

fn any_ctx() -> RequestContext {
    RequestContext {
        third_party: true,
        kind: ResourceKind::Other,
    }
}

/// A small closed pool of domains shared between the rule generator and
/// the URL generator, so the differential test actually exercises hits
/// (bucket probes) and not just misses.
fn pool_domain() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("ads.de"),
        Just("cdn.tv"),
        Just("track.com"),
        Just("media.net"),
    ]
    .prop_map(str::to_string)
}

/// One filter-list line covering every rule shape the engine routes
/// differently: domain buckets, start anchors, residual substrings,
/// wildcards, the empty-domain edge case, exceptions, and options.
fn rule_line() -> impl Strategy<Value = String> {
    (
        pool_domain(),
        "[a-z]{2,5}",
        0usize..6,
        any::<bool>(),
        0usize..4,
    )
        .prop_map(|(d, frag, shape, exception, opt)| {
            let body = match shape {
                0 => format!("||{d}^"),
                1 => format!("||{d}/{frag}"),
                2 => format!("|http://{d}/{frag}"),
                3 => format!("/{frag}"),
                4 => format!("||{d}/*/{frag}"),
                _ => format!("||/{frag}"),
            };
            let opts = match opt {
                0 => "",
                1 => "$third-party",
                2 => "$image",
                _ => "$script",
            };
            let at = if exception { "@@" } else { "" };
            format!("{at}{body}{opts}")
        })
}

proptest! {
    /// `||domain^` always blocks that domain and all subdomains, never a
    /// lookalike suffix domain.
    #[test]
    fn domain_anchor_soundness(d in domain(), sub in "[a-z]{1,6}") {
        let list = FilterList::parse_adblock("t", &format!("||{d}^"));
        let direct: Url = format!("http://{d}/x").parse().unwrap();
        let subdomain: Url = format!("http://{sub}.{d}/x").parse().unwrap();
        let lookalike: Url = format!("http://{sub}{d}/x").parse().unwrap();
        prop_assert!(list.matches(&direct, any_ctx()));
        prop_assert!(list.matches(&subdomain, any_ctx()));
        prop_assert!(!list.matches(&lookalike, any_ctx()));
    }

    /// Hosts-list blocking agrees with the Adblock domain anchor on plain
    /// domains.
    #[test]
    fn hosts_and_adblock_agree_on_domains(d in domain(), other in domain()) {
        let hosts = FilterList::parse_hosts_list("h", &format!("0.0.0.0 {d}\n"));
        let adblock = FilterList::parse_adblock("a", &format!("||{d}^\n"));
        for target in [&d, &other] {
            let u: Url = format!("http://{target}/p").parse().unwrap();
            prop_assert_eq!(
                hosts.matches(&u, any_ctx()),
                adblock.matches(&u, any_ctx()),
                "lists disagree on {}", target
            );
        }
    }

    /// Every line of a hosts file contributes at most one domain, and
    /// parsing is idempotent under duplication.
    #[test]
    fn hosts_parse_is_set_like(domains in prop::collection::vec(domain(), 1..10)) {
        let text: String = domains.iter().map(|d| format!("0.0.0.0 {d}\n")).collect();
        let doubled = format!("{text}{text}");
        prop_assert_eq!(parse_hosts(&text), parse_hosts(&doubled));
    }

    /// An exception rule with the same body as a block rule always wins.
    #[test]
    fn exceptions_override_blocks(d in domain()) {
        let list = FilterList::parse_adblock("t", &format!("||{d}^\n@@||{d}^\n"));
        let u: Url = format!("http://{d}/x").parse().unwrap();
        prop_assert!(!list.matches(&u, any_ctx()));
    }

    /// Parsing never panics on arbitrary printable input lines.
    #[test]
    fn parse_is_total(line in "[ -~]{0,60}") {
        let _ = parse_adblock_line(&line);
        let _ = parse_hosts(&line);
    }

    /// Differential test: the indexed engine agrees with the retained
    /// naive linear scan on every generated (rule set, URL, context)
    /// triple — both the boolean verdict and the reported outcome
    /// (which specific rule fired, in list order).
    #[test]
    fn indexed_engine_equals_linear_scan(
        lines in prop::collection::vec(rule_line(), 1..12),
        host_d in pool_domain(),
        sub in "[a-z]{1,5}",
        path in "/[a-z0-9/]{0,10}",
        host_shape in 0usize..3,
        third in any::<bool>(),
    ) {
        let text: String = lines.iter().map(|l| format!("{l}\n")).collect();
        let list = FilterList::parse_adblock("diff", &text);
        let host = match host_shape {
            0 => host_d.clone(),
            1 => format!("{sub}.{host_d}"),
            _ => format!("{sub}{host_d}"), // lookalike suffix, no dot
        };
        let url: Url = format!("http://{host}{path}").parse().unwrap();
        for kind in [ResourceKind::Other, ResourceKind::Image, ResourceKind::Script] {
            let ctx = RequestContext { third_party: third, kind };
            prop_assert_eq!(
                list.matches(&url, ctx),
                list.matches_linear(&url, ctx),
                "matches diverged for {} against:\n{}", url, text
            );
            prop_assert_eq!(
                list.matching_rule(&url, ctx),
                list.matching_rule_linear(&url, ctx),
                "outcome diverged for {} against:\n{}", url, text
            );
        }
    }

    /// Differential test over the full serving path: an engine loaded
    /// back from its HBFL prebuilt image answers byte-identically —
    /// same boolean verdict, same firing rule — to both the in-memory
    /// build it was serialized from and the linear oracle, on the same
    /// generated (rule set, URL, context) triples as the in-memory
    /// differential test (so the Aho–Corasick residual, kind
    /// partitions, and always-list all round-trip through the image).
    #[test]
    fn prebuilt_engine_equals_memory_and_linear(
        lines in prop::collection::vec(rule_line(), 1..12),
        host_d in pool_domain(),
        sub in "[a-z]{1,5}",
        path in "/[a-z0-9/]{0,10}",
        host_shape in 0usize..3,
        third in any::<bool>(),
    ) {
        let text: String = lines.iter().map(|l| format!("{l}\n")).collect();
        let list = FilterList::parse_adblock("diff", &text);
        let image = list.to_prebuilt();
        let loaded = FilterList::from_prebuilt(&image).expect("own image loads");
        prop_assert_eq!(loaded.name(), list.name());
        prop_assert_eq!(loaded.len(), list.len());
        let host = match host_shape {
            0 => host_d.clone(),
            1 => format!("{sub}.{host_d}"),
            _ => format!("{sub}{host_d}"), // lookalike suffix, no dot
        };
        let url: Url = format!("http://{host}{path}").parse().unwrap();
        for kind in [ResourceKind::Other, ResourceKind::Image, ResourceKind::Script] {
            let ctx = RequestContext { third_party: third, kind };
            prop_assert_eq!(
                loaded.matching_rule(&url, ctx),
                list.matching_rule(&url, ctx),
                "prebuilt outcome diverged from memory for {} against:\n{}", url, text
            );
            prop_assert_eq!(
                loaded.matching_rule(&url, ctx),
                list.matching_rule_linear(&url, ctx),
                "prebuilt outcome diverged from linear for {} against:\n{}", url, text
            );
        }
    }

    /// Flipping any bit of a prebuilt image, or truncating it at any
    /// point, makes the loader return a clean `Err` — never a panic
    /// and never a quietly different engine (the payload checksum
    /// covers every byte after the header, and the header fields are
    /// each validated).
    #[test]
    fn corrupt_prebuilt_images_are_rejected(
        lines in prop::collection::vec(rule_line(), 1..8),
        pos_seed in 0usize..1_000_000,
        bit in 0u32..8,
        cut_seed in 0usize..1_000_000,
    ) {
        let text: String = lines.iter().map(|l| format!("{l}\n")).collect();
        let image = FilterList::parse_adblock("c", &text).to_prebuilt();
        let mut flipped = image.clone();
        let pos = pos_seed % flipped.len();
        flipped[pos] ^= 1 << bit;
        prop_assert!(
            FilterList::from_prebuilt(&flipped).is_err(),
            "accepted an image with byte {} flipped", pos
        );
        let cut = cut_seed % image.len();
        prop_assert!(
            FilterList::from_prebuilt(&image[..cut]).is_err(),
            "accepted an image truncated to {} bytes", cut
        );
    }

    /// A substring rule matches iff the URL text contains the literal
    /// (for wildcard-free, separator-free patterns).
    #[test]
    fn substring_rule_equals_contains(pat in "/[a-z]{3,8}", path in "/[a-z0-9/]{0,12}") {
        let rule = parse_adblock_line(&pat).unwrap();
        let url_text = format!("http://site.de{path}");
        let url: Url = url_text.parse().unwrap();
        prop_assert_eq!(
            rule.pattern_matches(&url.to_string(), url.host()),
            url.to_string().contains(&pat)
        );
    }
}
