//! Adblock-syntax rule parsing.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The resource type of a request, used by `$image`/`$script` options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// A document / HTML page.
    Document,
    /// A script resource.
    Script,
    /// An image resource (tracking pixels are images).
    Image,
    /// Anything else (XHR, media, …).
    Other,
}

/// How a pattern is anchored within the URL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Anchor {
    /// `||pattern` — matches at a domain-label boundary of the host.
    Domain,
    /// `|pattern` — matches at the very start of the URL.
    Start,
    /// Unanchored substring match.
    None,
}

/// Parsed `$option` list of a rule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleOptions {
    /// `$third-party` — only match third-party requests.
    pub third_party_only: bool,
    /// `$~third-party` — only match first-party requests.
    pub first_party_only: bool,
    /// `$image` — only match image resources.
    pub image_only: bool,
    /// `$script` — only match script resources.
    pub script_only: bool,
}

/// A single parsed network-filter rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// The raw pattern with anchors stripped; `*` wildcards remain.
    pub pattern: String,
    /// Anchoring mode.
    pub anchor: Anchor,
    /// Whether the pattern ends with `^` (separator or end-of-URL).
    pub end_separator: bool,
    /// Whether this is an `@@` exception (allow) rule.
    pub exception: bool,
    /// Parsed options.
    pub options: RuleOptions,
    /// The original line, for reporting which rule fired.
    pub source: String,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

/// Parses one line of Adblock filter syntax.
///
/// Returns `None` for comments (`!`), empty lines, and cosmetic rules
/// (`##`, `#@#`), which do not affect network requests.
pub fn parse_adblock_line(line: &str) -> Option<Rule> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('!') || line.starts_with('[') {
        return None;
    }
    // Cosmetic filtering rules are not network rules.
    if line.contains("##") || line.contains("#@#") || line.contains("#?#") {
        return None;
    }
    let source = line.to_string();
    let (exception, rest) = match line.strip_prefix("@@") {
        Some(r) => (true, r),
        None => (false, line),
    };
    let (body, opts_str) = match rest.rsplit_once('$') {
        // A `$` inside a path could be a literal, but EasyList treats the
        // last `$` as the option separator when the suffix looks like
        // options; we accept simple comma-separated option tokens only.
        Some((b, o)) if o.split(',').all(is_option_token) && !o.is_empty() => (b, Some(o)),
        _ => (rest, None),
    };
    let mut options = RuleOptions::default();
    if let Some(o) = opts_str {
        for token in o.split(',') {
            match token.trim() {
                "third-party" => options.third_party_only = true,
                "~third-party" => options.first_party_only = true,
                "image" => options.image_only = true,
                "script" => options.script_only = true,
                _ => {} // Unknown options are tolerated (treated as no-op).
            }
        }
    }
    let (anchor, body) = if let Some(b) = body.strip_prefix("||") {
        (Anchor::Domain, b)
    } else if let Some(b) = body.strip_prefix('|') {
        (Anchor::Start, b)
    } else {
        (Anchor::None, body)
    };
    let (body, end_separator) = match body.strip_suffix('^') {
        Some(b) => (b, true),
        None => (body, false),
    };
    if body.is_empty() {
        return None;
    }
    Some(Rule {
        pattern: body.to_string(),
        anchor,
        end_separator,
        exception,
        options,
        source,
    })
}

fn is_option_token(t: &str) -> bool {
    matches!(
        t.trim(),
        "third-party" | "~third-party" | "image" | "script" | "xmlhttprequest" | "subdocument"
    )
}

impl Rule {
    /// Whether this rule's pattern (ignoring options) matches the URL
    /// text. `url_text` must be the full absolute URL; `host` its host.
    pub fn pattern_matches(&self, url_text: &str, host: &str) -> bool {
        self.pattern_matches_at(url_text, host, after_host(url_text, host))
    }

    /// [`Rule::pattern_matches`] with the post-host slice already
    /// computed — the zero-alloc entry point the match engine and
    /// [`UrlView`](crate::UrlView) use.
    pub(crate) fn pattern_matches_at(&self, url_text: &str, host: &str, after: &str) -> bool {
        match self.anchor {
            Anchor::Domain => {
                // `||example.com^` (optionally with a path after the
                // domain). Split the pattern into domain part and path
                // remainder.
                let (dom, path) = split_domain_pattern(&self.pattern);
                if !host_matches_domain(host, dom) {
                    return false;
                }
                if path.is_empty() {
                    // With or without a trailing `^`: the host boundary
                    // is already guaranteed by the domain check.
                    return true;
                }
                // Match the path remainder against the URL after the
                // host (`[:port]/path?query`).
                wildcard_match(after, path, self.end_separator)
            }
            Anchor::Start => wildcard_match(url_text, &self.pattern, self.end_separator),
            Anchor::None => wildcard_find(url_text, &self.pattern, self.end_separator),
        }
    }
}

/// Splits a `||` pattern into its domain part and path remainder
/// (`tracker.de/pixel` → `("tracker.de", "/pixel")`).
pub(crate) fn split_domain_pattern(pattern: &str) -> (&str, &str) {
    match pattern.find('/') {
        Some(i) => (&pattern[..i], &pattern[i..]),
        None => (pattern, ""),
    }
}

/// Whether `host` is `dom` or a subdomain of it, without allocating.
///
/// An empty domain pattern (a rule like `||/pixel`) anchors on nothing
/// and never matches a host — made explicit here; an earlier version hid
/// this outcome behind `==`/`&&` operator precedence.
pub(crate) fn host_matches_domain(host: &str, dom: &str) -> bool {
    if dom.is_empty() {
        return false;
    }
    if host == dom {
        return true;
    }
    // `.dom` suffix check via byte compare instead of `format!(".{dom}")`.
    host.len() > dom.len()
        && host.ends_with(dom)
        && host.as_bytes()[host.len() - dom.len() - 1] == b'.'
}

/// The URL text after the host: `[:port]/path[?query]`.
///
/// Computed from the serialized layout (`scheme://host…`) rather than a
/// substring search: `url_text.find(host)` can land before the authority
/// for dotless hosts (`http://tt/x` finds `tt` inside `http`), skewing
/// the path offset for `||host/path` rules.
pub(crate) fn after_host<'a>(url_text: &'a str, host: &str) -> &'a str {
    let authority = url_text.find("://").map_or(0, |i| i + 3);
    url_text.get(authority + host.len()..).unwrap_or("")
}

/// Is `c` an Adblock "separator" character (for `^`)?
fn is_separator(c: char) -> bool {
    !(c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | '%'))
}

/// A sequence of `*`-separated literal parts, abstracted so the one
/// backtracking matcher serves every storage layout: the per-call split
/// (`&[&str]`), and the engine's arena-backed `(offset, len)` ranges
/// (which can come straight out of a prebuilt image without
/// materializing strings).
pub(crate) trait Parts<'p>: Copy {
    /// Splits off the first part, or `None` when exhausted.
    fn split_first(self) -> Option<(&'p str, Self)>;
}

impl<'p, S: AsRef<str>> Parts<'p> for &'p [S] {
    #[inline]
    fn split_first(self) -> Option<(&'p str, Self)> {
        <[S]>::split_first(self).map(|(p, rest)| (p.as_ref(), rest))
    }
}

/// Recursive matcher over `*`-separated literal parts with backtracking.
///
/// `anchored` requires the first part to match at the very start of
/// `text`; every later part may match anywhere after the previous one
/// (that is what the `*` between them means). When `end_sep` is set, the
/// character right after the final matched part must be a separator (or
/// the end of the text). Generic over the part representation (see
/// [`Parts`]) so the linear scan and the indexed/prebuilt engines run
/// through exactly the same code.
pub(crate) fn parts_match<'p, P: Parts<'p>>(
    text: &str,
    parts: P,
    anchored: bool,
    end_sep: bool,
) -> bool {
    match parts.split_first() {
        None => !end_sep || text.is_empty() || text.chars().next().map(is_separator) == Some(true),
        Some((p, rest)) => {
            if anchored {
                match text.strip_prefix(p) {
                    Some(t) => parts_match(t, rest, false, end_sep),
                    None => false,
                }
            } else {
                // Backtrack over every occurrence of `p`.
                let mut start = 0;
                while start <= text.len() {
                    match text[start..].find(p) {
                        Some(i) => {
                            let abs = start + i;
                            if parts_match(&text[abs + p.len()..], rest, false, end_sep) {
                                return true;
                            }
                            start = abs + 1;
                        }
                        None => return false,
                    }
                }
                false
            }
        }
    }
}

/// Splits a pattern on `*`, dropping empty segments (consecutive or
/// leading/trailing stars).
fn split_pattern(pattern: &str) -> Vec<&str> {
    pattern.split('*').filter(|p| !p.is_empty()).collect()
}

/// Matches `pattern` (with `*` wildcards) against the start of `text`.
fn wildcard_match(text: &str, pattern: &str, end_separator: bool) -> bool {
    let parts = split_pattern(pattern);
    if parts.is_empty() {
        return true;
    }
    let anchored = !pattern.starts_with('*');
    // A trailing `*` swallows the end-separator requirement.
    let end_sep = end_separator && !pattern.ends_with('*');
    parts_match(text, parts.as_slice(), anchored, end_sep)
}

/// Finds `pattern` anywhere inside `text`.
fn wildcard_find(text: &str, pattern: &str, end_separator: bool) -> bool {
    let parts = split_pattern(pattern);
    if parts.is_empty() {
        return true;
    }
    let end_sep = end_separator && !pattern.ends_with('*');
    // Unanchored throughout: the first part may start anywhere.
    parts_match(text, parts.as_slice(), false, end_sep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(line: &str) -> Rule {
        parse_adblock_line(line).expect("rule should parse")
    }

    #[test]
    fn comments_and_cosmetics_are_skipped() {
        assert!(parse_adblock_line("! a comment").is_none());
        assert!(parse_adblock_line("").is_none());
        assert!(parse_adblock_line("[Adblock Plus 2.0]").is_none());
        assert!(parse_adblock_line("example.com##.ad-banner").is_none());
    }

    #[test]
    fn domain_anchor_matches_host_and_subdomains() {
        let r = rule("||doubleclick.net^");
        assert!(r.pattern_matches("http://doubleclick.net/x", "doubleclick.net"));
        assert!(r.pattern_matches("http://ad.doubleclick.net/x", "ad.doubleclick.net"));
        assert!(!r.pattern_matches("http://notdoubleclick.net/x", "notdoubleclick.net"));
        assert!(!r.pattern_matches(
            "http://doubleclick.net.evil.com/x",
            "doubleclick.net.evil.com"
        ));
    }

    #[test]
    fn domain_anchor_with_path() {
        let r = rule("||tracker.de/pixel");
        assert!(r.pattern_matches("http://tracker.de/pixel.gif", "tracker.de"));
        assert!(!r.pattern_matches("http://tracker.de/other", "tracker.de"));
    }

    #[test]
    fn empty_domain_pattern_never_matches_a_host() {
        // `||/pixel` parses to a Domain-anchored rule with an empty
        // domain part. It must match nothing: there is no host to
        // anchor on. (An earlier implementation only got this right
        // through `==`/`&&` operator precedence; `host_matches_domain`
        // now rejects the empty domain explicitly.)
        let r = rule("||/pixel");
        assert_eq!(r.anchor, Anchor::Domain);
        assert!(!r.pattern_matches("http://x.de/pixel", "x.de"));
        assert!(!r.pattern_matches("http://pixel/pixel", "pixel"));
        assert!(!host_matches_domain("x.de", ""));
        assert!(!host_matches_domain("", ""));
    }

    #[test]
    fn domain_path_offset_survives_dotless_and_echoed_hosts() {
        // The post-host slice is computed from the URL layout, not a
        // substring search. Two regressions guard that:
        // 1. A dotless host also occurs inside the scheme
        //    (`http://tt/x` — `find("tt")` lands in "http").
        let r = rule("||tt/x");
        assert!(r.pattern_matches("http://tt/x", "tt"));
        assert_eq!(after_host("http://tt/x", "tt"), "/x");
        // 2. The host echoed earlier in the text (e.g. inside a proxy
        //    URL's path) must not shift the offset.
        assert_eq!(
            after_host("http://a.de/p?u=a.de/pixel", "a.de"),
            "/p?u=a.de/pixel"
        );
        let r = rule("||a.de/pixel");
        assert!(!r.pattern_matches("http://a.de/p?u=a.de/pixel", "a.de"));
    }

    #[test]
    fn substring_rule_matches_anywhere() {
        let r = rule("/beacon?");
        assert!(r.pattern_matches("http://x.de/api/beacon?id=1", "x.de"));
        assert!(!r.pattern_matches("http://x.de/beacons", "x.de"));
    }

    #[test]
    fn wildcard_patterns() {
        let r = rule("/track/*/pixel");
        assert!(r.pattern_matches("http://x.de/track/v2/pixel.gif", "x.de"));
        assert!(!r.pattern_matches("http://x.de/track/pixel", "x.de"));
    }

    #[test]
    fn start_anchor() {
        let r = rule("|http://ads.");
        assert!(r.pattern_matches("http://ads.example.de/x", "ads.example.de"));
        assert!(!r.pattern_matches("https://ads.example.de/x", "ads.example.de"));
    }

    #[test]
    fn end_separator_semantics() {
        let r = rule("/pixel^");
        assert!(r.pattern_matches("http://x.de/pixel?u=1", "x.de"));
        assert!(
            r.pattern_matches("http://x.de/pixel", "x.de"),
            "end of URL counts"
        );
        assert!(!r.pattern_matches("http://x.de/pixels", "x.de"));
    }

    #[test]
    fn options_parse() {
        let r = rule("||adform.net^$third-party,image");
        assert!(r.options.third_party_only);
        assert!(r.options.image_only);
        assert!(!r.options.script_only);
        let r = rule("||x.de^$~third-party");
        assert!(r.options.first_party_only);
    }

    #[test]
    fn exception_rules() {
        let r = rule("@@||good.de^");
        assert!(r.exception);
        assert!(r.pattern_matches("http://good.de/", "good.de"));
    }

    #[test]
    fn dollar_in_path_is_not_an_option() {
        let r = rule("/p$ath");
        assert_eq!(r.pattern, "/p$ath");
        assert!(!r.options.third_party_only);
    }
}
