//! Bundled synthetic filter-list snapshots.
//!
//! The real study used EasyList (2023-03-23), EasyPrivacy (2024-07-22),
//! the StevenBlack Pi-hole hosts list (2023-11-01), Perflyst's
//! PiHoleBlocklist, and Kamran's Smart-TV list. We cannot redistribute
//! those lists, and our traffic is synthetic anyway — what matters for
//! reproducing §V-D is each list's *coverage profile*:
//!
//! * Web-centric lists know the classic ad/analytics domains (which HbbTV
//!   apps embed only occasionally) but miss HbbTV-native trackers —
//!   `tvping.com`, the ecosystem's highest-volume pixel tracker, is on
//!   **no** list, exactly as the paper observed.
//! * The Pi-hole hosts list is broader than EasyList/EasyPrivacy
//!   (1.17% vs 0.5% vs 0.15% of URLs flagged).
//! * Smart-TV lists (Perflyst, Kamran) know platform telemetry domains
//!   but even fewer HbbTV trackers, blocking 27% / 64% fewer requests
//!   than Pi-hole.
//!
//! Domain names of simulated trackers are shared with the
//! `hbbtv-trackers` crate; the constants below are the single source of
//! truth for which of them each list covers.

use crate::matcher::FilterList;
use std::path::Path;
use std::sync::OnceLock;

/// Synthetic EasyList snapshot (Adblock syntax): classic ad-serving
/// domains plus a handful of generic pixel paths.
pub const EASYLIST_TEXT: &str = "\
[Adblock Plus 2.0]
! Title: EasyList (synthetic snapshot for hbbtv-lab)
||doubleclick.net^
||adform.net^$third-party
||criteo.com^
||adition.com^$third-party
||theadex.com^
||yieldlab.net^$third-party
||taboola.com^
||outbrain.com^
||amazon-adsystem.com^
||flashtalking.com^
||smartadserver.com^
||adnxs.com^$third-party
||rubiconproject.com^
||pubmatic.com^
/adframe/*$third-party
/ad-banner/
/adserver/*/impression
@@||ard.de/static/ad-free^
";

/// Synthetic EasyPrivacy snapshot (Adblock syntax): analytics and
/// measurement domains, including the European TV-measurement providers.
pub const EASYPRIVACY_TEXT: &str = "\
! Title: EasyPrivacy (synthetic snapshot for hbbtv-lab)
||google-analytics.com^
||googletagmanager.com^
||xiti.com^$third-party
||webtrekk.net^
||etracker.com^
||scorecardresearch.com^
||chartbeat.com^
||hotjar.com^
||quantserve.com^
/collect?tid=
/piwik.php
";

/// Synthetic Pi-hole (StevenBlack-style) hosts snapshot: the broadest
/// list — ad domains, analytics domains, and a few CDN-hosted trackers
/// including `smartclip.net` (which §VII finds flagged on Super RTL).
pub const PIHOLE_TEXT: &str = "\
# StevenBlack unified hosts (synthetic snapshot for hbbtv-lab)
127.0.0.1 localhost
0.0.0.0 doubleclick.net
0.0.0.0 ad.doubleclick.net
0.0.0.0 adform.net
0.0.0.0 criteo.com
0.0.0.0 adition.com
0.0.0.0 theadex.com
0.0.0.0 yieldlab.net
0.0.0.0 taboola.com
0.0.0.0 outbrain.com
0.0.0.0 amazon-adsystem.com
0.0.0.0 flashtalking.com
0.0.0.0 smartadserver.com
0.0.0.0 adnxs.com
0.0.0.0 rubiconproject.com
0.0.0.0 pubmatic.com
0.0.0.0 google-analytics.com
0.0.0.0 googletagmanager.com
0.0.0.0 xiti.com
0.0.0.0 ioam.de
0.0.0.0 webtrekk.net
0.0.0.0 etracker.com
0.0.0.0 scorecardresearch.com
0.0.0.0 chartbeat.com
0.0.0.0 smartclip.net
0.0.0.0 emetriq.de
0.0.0.0 adalliance.io
0.0.0.0 samsungads.com
";

/// Synthetic Perflyst PiHoleBlocklist (Smart-TV) snapshot: platform
/// telemetry plus the analytics domains TV firmware talks to. Knows some
/// web analytics but fewer ad domains than Pi-hole.
pub const PERFLYST_TEXT: &str = "\
# Perflyst PiHoleBlocklist SmartTV (synthetic snapshot for hbbtv-lab)
samsungads.com
samsungacr.com
lgsmartad.com
lgtvsdp.com
vizio-metrics.com
smarttv-telemetry.net
ioam.de
scorecardresearch.com
smartclip.net
google-analytics.com
googletagmanager.com
doubleclick.net
xiti.com
emetriq.de
";

/// Synthetic Kamran Smart-TV blocklist snapshot: the narrowest list —
/// platform telemetry only.
pub const KAMRAN_TEXT: &str = "\
# hkamran80/blocklists smart-tv (synthetic snapshot for hbbtv-lab)
samsungads.com
samsungacr.com
lgsmartad.com
lgtvsdp.com
vizio-metrics.com
roku-analytics.com
doubleclick.net
google-analytics.com
";

/// Process-wide registry: each bundled list is materialized once, on
/// first use, then shared by reference from every analysis pass and
/// worker thread. (`FilterList` is `Sync`; the matcher holds no
/// interior mutability.)
///
/// When `HBBTV_PREBUILT_DIR` is set and contains `<slug>.hbfl`, the
/// list is loaded from that prebuilt image
/// ([`FilterList::from_prebuilt`]) instead of being parsed — same
/// engine, none of the parse/index work. A missing file falls back to
/// parsing silently; an *invalid* image is reported on stderr and then
/// falls back, so a stale or corrupt cache degrades to correctness, not
/// to a crash.
static EASYLIST: OnceLock<FilterList> = OnceLock::new();
static EASYPRIVACY: OnceLock<FilterList> = OnceLock::new();
static PIHOLE: OnceLock<FilterList> = OnceLock::new();
static PERFLYST: OnceLock<FilterList> = OnceLock::new();
static KAMRAN: OnceLock<FilterList> = OnceLock::new();

/// Environment variable naming a directory of `<slug>.hbfl` images.
pub const PREBUILT_DIR_ENV: &str = "HBBTV_PREBUILT_DIR";

/// The five bundled list slugs, in [`all_refs`] order — the file stems
/// the prebuilt registry looks for under [`PREBUILT_DIR_ENV`].
pub const SLUGS: [&str; 5] = ["pihole", "easylist", "easyprivacy", "perflyst", "kamran"];

/// Loads `<dir>/<slug>.hbfl` if the env hook is set and the image is
/// valid; otherwise parses `text` via `parse`.
fn load_or_parse(slug: &str, parse: impl FnOnce() -> FilterList) -> FilterList {
    if let Ok(dir) = std::env::var(PREBUILT_DIR_ENV) {
        let path = Path::new(&dir).join(format!("{slug}.hbfl"));
        if let Ok(bytes) = std::fs::read(&path) {
            match FilterList::from_prebuilt(&bytes) {
                Ok(list) => return list,
                Err(err) => eprintln!(
                    "hbbtv-filterlists: ignoring invalid prebuilt image {}: {err}",
                    path.display()
                ),
            }
        }
    }
    parse()
}

/// The shared synthetic EasyList.
pub fn easylist_ref() -> &'static FilterList {
    EASYLIST.get_or_init(|| {
        load_or_parse("easylist", || {
            FilterList::parse_adblock("EasyList", EASYLIST_TEXT)
        })
    })
}

/// The shared synthetic EasyPrivacy.
pub fn easyprivacy_ref() -> &'static FilterList {
    EASYPRIVACY.get_or_init(|| {
        load_or_parse("easyprivacy", || {
            FilterList::parse_adblock("EasyPrivacy", EASYPRIVACY_TEXT)
        })
    })
}

/// The shared synthetic Pi-hole hosts list.
pub fn pihole_ref() -> &'static FilterList {
    PIHOLE.get_or_init(|| {
        load_or_parse("pihole", || {
            FilterList::parse_hosts_list("Pi-hole", PIHOLE_TEXT)
        })
    })
}

/// The shared synthetic Perflyst Smart-TV list.
pub fn perflyst_ref() -> &'static FilterList {
    PERFLYST.get_or_init(|| {
        load_or_parse("perflyst", || {
            FilterList::parse_hosts_list("Perflyst SmartTV", PERFLYST_TEXT)
        })
    })
}

/// The shared synthetic Kamran Smart-TV list.
pub fn kamran_ref() -> &'static FilterList {
    KAMRAN.get_or_init(|| {
        load_or_parse("kamran", || {
            FilterList::parse_hosts_list("Kamran SmartTV", KAMRAN_TEXT)
        })
    })
}

/// All five shared lists in the order Table III reports them.
pub fn all_refs() -> [&'static FilterList; 5] {
    [
        pihole_ref(),
        easylist_ref(),
        easyprivacy_ref(),
        perflyst_ref(),
        kamran_ref(),
    ]
}

/// The parsed synthetic EasyList (owned; prefer [`easylist_ref`]).
pub fn easylist() -> FilterList {
    easylist_ref().clone()
}

/// The parsed synthetic EasyPrivacy (owned; prefer [`easyprivacy_ref`]).
pub fn easyprivacy() -> FilterList {
    easyprivacy_ref().clone()
}

/// The parsed synthetic Pi-hole hosts list (owned; prefer
/// [`pihole_ref`]).
pub fn pihole() -> FilterList {
    pihole_ref().clone()
}

/// The parsed synthetic Perflyst Smart-TV list (owned; prefer
/// [`perflyst_ref`]).
pub fn perflyst() -> FilterList {
    perflyst_ref().clone()
}

/// The parsed synthetic Kamran Smart-TV list (owned; prefer
/// [`kamran_ref`]).
pub fn kamran() -> FilterList {
    kamran_ref().clone()
}

/// All five lists in Table III order (owned; prefer [`all_refs`]).
pub fn all() -> Vec<FilterList> {
    vec![pihole(), easylist(), easyprivacy(), perflyst(), kamran()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::RequestContext;
    use hbbtv_net::Url;

    fn u(s: &str) -> Url {
        s.parse().unwrap()
    }

    #[test]
    fn lists_parse_nonempty() {
        for list in all() {
            assert!(!list.is_empty(), "{} parsed empty", list.name());
        }
    }

    #[test]
    fn tvping_is_on_no_list() {
        // The paper's central filter-list finding: the highest-volume
        // HbbTV pixel tracker is invisible to every list.
        let url = u("http://tvping.com/ping?c=1&s=2&u=3");
        for list in all() {
            assert!(
                !list.matches(&url, RequestContext::third_party_image()),
                "{} unexpectedly covers tvping.com",
                list.name()
            );
        }
    }

    #[test]
    fn easylist_knows_web_ads_but_not_analytics() {
        let el = easylist();
        assert!(el.matches(
            &u("http://ad.doubleclick.net/impression"),
            RequestContext::third_party_image()
        ));
        assert!(!el.matches(
            &u("http://google-analytics.com/collect?tid=UA-1"),
            RequestContext::third_party_image()
        ));
    }

    #[test]
    fn easyprivacy_knows_analytics() {
        let ep = easyprivacy();
        assert!(ep.matches(
            &u("http://an.xiti.com/hit.xiti?s=1"),
            RequestContext::third_party_image()
        ));
        assert!(ep.matches(
            &u("http://google-analytics.com/collect?tid=UA-1"),
            RequestContext::third_party_image()
        ));
    }

    #[test]
    fn xiti_first_party_hit_is_not_flagged_by_easyprivacy() {
        // `||xiti.com^$third-party` must not fire on a first-party fetch.
        let ep = easyprivacy();
        assert!(!ep.matches(
            &u("http://xiti.com/self"),
            RequestContext {
                third_party: false,
                kind: crate::ResourceKind::Image
            }
        ));
    }

    #[test]
    fn pihole_is_broadest_on_reference_urls() {
        let reference = [
            "http://ad.doubleclick.net/x",
            "http://google-analytics.com/collect",
            "http://an.xiti.com/hit",
            "http://cdn.smartclip.net/policy.js",
            "http://emetriq.de/t.gif",
            "http://tvping.com/ping",
            "http://samsungads.com/t",
        ];
        let counts: Vec<usize> = all()
            .iter()
            .map(|list| {
                reference
                    .iter()
                    .filter(|s| list.matches(&u(s), RequestContext::third_party_image()))
                    .count()
            })
            .collect();
        // Order: pihole, easylist, easyprivacy, perflyst, kamran.
        assert!(counts[0] >= counts[1], "pihole >= easylist");
        assert!(counts[0] >= counts[2], "pihole >= easyprivacy");
        assert!(counts[0] >= counts[3], "pihole >= perflyst");
        assert!(counts[3] >= counts[4], "perflyst >= kamran");
    }

    #[test]
    fn smarttv_lists_know_platform_telemetry() {
        let ctx = RequestContext::third_party_image();
        assert!(perflyst().matches(&u("http://samsungads.com/t"), ctx));
        assert!(kamran().matches(&u("http://lgsmartad.com/t"), ctx));
        assert!(!kamran().matches(&u("http://smartclip.net/t"), ctx));
    }
}
