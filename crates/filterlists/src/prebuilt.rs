//! Prebuilt filter-list images ("HBFL" v1).
//!
//! Parsing a 10^5-rule list and deriving its engine — hashing every
//! domain into buckets, BFS-building the residual automaton — is work a
//! fleet of analysis processes repeats identically at every start. An
//! HBFL image is that work done once: [`FilterList::to_prebuilt`]
//! serializes the *compiled* engine (arena, matcher records, bucket
//! tables, automaton transition tables), and
//! [`FilterList::from_prebuilt`] brings it back with a header check, a
//! checksum pass, and one linear decode — no line parsing, no hashing,
//! no automaton construction. The matchers' flat arena layout decodes
//! with plain block copies; the crate is `forbid(unsafe_code)`, so
//! "zero-copy" here means *zero re-derivation* — bytes are copied into
//! aligned vectors once, never re-parsed or re-hashed.
//!
//! Layout (all integers little-endian), mirroring the HBFS frame store:
//!
//! ```text
//! magic "HBFL" | version u16 | reserved u16 | fnv1a(payload) u64 | payload
//! ```
//!
//! The payload is the list name, the rule/exception source lines (kept
//! so [`FilterList::matching_rule`] can lazily materialize `Rule`
//! values — the hot match path never needs them), the hosts
//! [`DomainSet`], and the two encoded [`RuleIndex`]es.
//!
//! Decoding is loudly defensive: the checksum is verified before
//! anything is interpreted, then every span, id, table shape, and
//! automaton invariant is revalidated structurally, so a truncated or
//! bit-flipped image yields [`io::ErrorKind::InvalidData`] — never a
//! panic, never an engine that indexes out of bounds at match time.

use crate::engine::{
    BucketSlot, BucketTable, DomainSet, MatcherRec, Partition, RuleIndex, Span, EMPTY_SLOT,
    NO_AUTOMATON,
};
use crate::matcher::{FilterList, RuleStore};
use hbbtv_automaton::Automaton;
use std::io;
use std::sync::OnceLock;

const MAGIC: &[u8; 4] = b"HBFL";
const VERSION: u16 = 1;
/// Bytes before the payload: magic + version + reserved + checksum.
const HEADER_LEN: usize = 16;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("hbfl: {}", msg.into()))
}

/// FNV-1a over the payload — the same integrity hash the HBFS frame
/// store uses, so one corrupted-byte story covers both on-disk formats.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str_block(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn u32_slice(&mut self, v: &[u32]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u32(x);
        }
    }
    fn spans(&mut self, v: &[Span]) {
        self.u32(v.len() as u32);
        for s in v {
            self.u32(s.off);
            self.u32(s.len);
        }
    }
}

fn encode_domain_set(e: &mut Enc, set: &DomainSet) {
    e.str_block(&set.arena);
    e.u32(set.mask);
    e.spans(&set.slots);
    e.u32(set.len);
}

fn encode_index(e: &mut Enc, index: &RuleIndex) {
    e.str_block(&index.arena);
    e.u32(index.matchers.len() as u32);
    for m in &index.matchers {
        e.u8(m.tag);
        e.u8(m.flags);
        e.buf.extend_from_slice(&m.parts_len.to_le_bytes());
        e.u32(m.parts_start);
    }
    e.spans(&index.parts);
    e.u32(index.partitions.len() as u32);
    for p in &index.partitions {
        e.u32(p.table.mask);
        e.u32(p.table.slots.len() as u32);
        for s in &p.table.slots {
            e.u32(s.dom.off);
            e.u32(s.dom.len);
            e.u32(s.ids_start);
            e.u32(s.ids_len);
        }
        e.u32_slice(&p.ids);
        e.u32(p.automaton);
        e.u32_slice(&p.always);
    }
    e.buf.extend_from_slice(&index.of_kind);
    e.u32(index.automatons.len() as u32);
    for a in index.automatons.iter() {
        e.buf.extend_from_slice(a.raw_classes());
        e.u32(a.n_classes());
        e.u32_slice(a.raw_trans());
        e.u32_slice(a.raw_out_start());
        e.u32_slice(a.raw_out_ids());
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("truncated payload"))?;
        let out = &self.buf[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// A length prefix that must still fit in the remaining payload at
    /// `width` bytes per element — rejects absurd counts before any
    /// allocation happens.
    fn count(&mut self, width: usize, what: &str) -> io::Result<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(width) > self.buf.len() - self.at {
            return Err(bad(format!("{what} count {n} exceeds payload")));
        }
        Ok(n)
    }

    fn str_block(&mut self, what: &str) -> io::Result<Box<str>> {
        let n = self.count(1, what)?;
        let bytes = self.take(n)?;
        let s = std::str::from_utf8(bytes).map_err(|_| bad(format!("{what} is not UTF-8")))?;
        Ok(s.into())
    }

    fn u32_vec(&mut self, what: &str) -> io::Result<Vec<u32>> {
        let n = self.count(4, what)?;
        (0..n).map(|_| self.u32()).collect()
    }

    fn spans_vec(&mut self, what: &str) -> io::Result<Vec<Span>> {
        let n = self.count(8, what)?;
        (0..n)
            .map(|_| {
                Ok(Span {
                    off: self.u32()?,
                    len: self.u32()?,
                })
            })
            .collect()
    }

    fn done(&self) -> io::Result<()> {
        if self.at != self.buf.len() {
            return Err(bad(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.at
            )));
        }
        Ok(())
    }
}

/// Validates that `span` selects a real (char-boundary) slice of
/// `arena`.
fn check_span(arena: &str, span: Span, what: &str) -> io::Result<()> {
    arena
        .get(span.off as usize..span.off as usize + span.len as usize)
        .map(|_| ())
        .ok_or_else(|| bad(format!("{what} span out of arena bounds")))
}

fn decode_domain_set(d: &mut Dec<'_>) -> io::Result<DomainSet> {
    let arena = d.str_block("hosts arena")?;
    let mask = d.u32()?;
    let slots = d.spans_vec("hosts slots")?;
    let len = d.u32()?;
    if slots.is_empty() {
        if mask != 0 || len != 0 {
            return Err(bad("empty hosts table with nonzero mask or len"));
        }
    } else {
        if !slots.len().is_power_of_two() || mask as usize != slots.len() - 1 {
            return Err(bad("hosts table mask does not match slot count"));
        }
        if len as usize > slots.len() {
            return Err(bad("hosts table len exceeds capacity"));
        }
        let mut occupied = 0u32;
        for &s in &slots {
            if s.off == EMPTY_SLOT {
                if s.len != 0 {
                    return Err(bad("hosts empty slot with nonzero length"));
                }
            } else {
                check_span(&arena, s, "hosts slot")?;
                occupied += 1;
            }
        }
        if occupied != len {
            return Err(bad("hosts table len does not match occupied slots"));
        }
    }
    Ok(DomainSet {
        arena,
        mask,
        slots,
        len,
    })
}

fn decode_automaton(d: &mut Dec<'_>, n_rules: usize) -> io::Result<Automaton> {
    let classes: [u8; 256] = d.take(256)?.try_into().expect("256 bytes");
    let n_classes = d.u32()?;
    let trans = d.u32_vec("automaton transitions")?;
    let out_start = d.u32_vec("automaton output index")?;
    let out_ids = d.u32_vec("automaton output ids")?;
    if out_ids.iter().any(|&id| id as usize >= n_rules) {
        return Err(bad("automaton output id out of rule range"));
    }
    Automaton::from_raw(classes, n_classes, trans, out_start, out_ids).map_err(bad)
}

fn decode_index(d: &mut Dec<'_>) -> io::Result<RuleIndex> {
    let arena = d.str_block("index arena")?;
    let n_matchers = d.count(8, "matchers")?;
    let mut matchers = Vec::with_capacity(n_matchers);
    for _ in 0..n_matchers {
        let tag = d.u8()?;
        let flags = d.u8()?;
        let parts_len = u16::from_le_bytes(d.take(2)?.try_into().expect("2 bytes"));
        let parts_start = d.u32()?;
        if tag > 3 {
            return Err(bad(format!("matcher tag {tag} out of range")));
        }
        matchers.push(MatcherRec {
            tag,
            flags,
            parts_len,
            parts_start,
        });
    }
    let parts = d.spans_vec("parts")?;
    for &span in &parts {
        check_span(&arena, span, "part")?;
    }
    for m in &matchers {
        let end = m.parts_start as usize + m.parts_len as usize;
        if end > parts.len() {
            return Err(bad("matcher parts range out of bounds"));
        }
    }

    let n_parts = d.count(4, "partitions")?;
    if n_parts > 4 {
        return Err(bad(format!("{n_parts} partitions for 4 resource kinds")));
    }
    let mut partitions = Vec::with_capacity(n_parts);
    // Automatons come after the partitions in the stream; remember how
    // many each partition claims and bound-check once the count is read.
    for _ in 0..n_parts {
        let mask = d.u32()?;
        let n_slots = d.count(16, "bucket slots")?;
        let mut slots = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            slots.push(BucketSlot {
                dom: Span {
                    off: d.u32()?,
                    len: d.u32()?,
                },
                ids_start: d.u32()?,
                ids_len: d.u32()?,
            });
        }
        let ids = d.u32_vec("bucket ids")?;
        let automaton = d.u32()?;
        let always = d.u32_vec("always ids")?;

        if slots.is_empty() {
            if mask != 0 {
                return Err(bad("empty bucket table with nonzero mask"));
            }
        } else if !slots.len().is_power_of_two() || mask as usize != slots.len() - 1 {
            return Err(bad("bucket table mask does not match slot count"));
        }
        for s in &slots {
            if s.dom.off == EMPTY_SLOT {
                if s.dom.len != 0 || s.ids_len != 0 {
                    return Err(bad("empty bucket slot with payload"));
                }
                continue;
            }
            check_span(&arena, s.dom, "bucket domain")?;
            let end = s.ids_start as usize + s.ids_len as usize;
            if end > ids.len() {
                return Err(bad("bucket ids range out of bounds"));
            }
            let group = &ids[s.ids_start as usize..end];
            if group.windows(2).any(|w| w[0] >= w[1]) {
                return Err(bad("bucket ids not strictly ascending"));
            }
        }
        if ids.iter().any(|&i| i as usize >= n_matchers) {
            return Err(bad("bucket id out of rule range"));
        }
        if always.windows(2).any(|w| w[0] >= w[1])
            || always.iter().any(|&i| i as usize >= n_matchers)
        {
            return Err(bad("always list corrupt"));
        }
        partitions.push(Partition {
            table: BucketTable { mask, slots },
            ids,
            automaton,
            always,
        });
    }

    let of_kind: [u8; 4] = d.take(4)?.try_into().expect("4 bytes");
    if n_parts == 0 {
        if of_kind != [0; 4] {
            return Err(bad("kind map points into empty partition list"));
        }
    } else if of_kind.iter().any(|&p| p as usize >= n_parts) {
        return Err(bad("kind map partition out of range"));
    }

    let n_autos = d.count(256, "automatons")?;
    let automatons: Vec<Automaton> = (0..n_autos)
        .map(|_| decode_automaton(d, n_matchers))
        .collect::<io::Result<_>>()?;
    for p in &partitions {
        if p.automaton != NO_AUTOMATON && p.automaton as usize >= automatons.len() {
            return Err(bad("partition automaton out of range"));
        }
    }

    Ok(RuleIndex {
        arena,
        matchers,
        parts,
        partitions,
        of_kind,
        automatons,
    })
}

impl FilterList {
    /// Serializes this list — engine included — into an HBFL v1 image.
    ///
    /// The image embeds the compiled bucket tables and automaton
    /// transition tables verbatim, so [`FilterList::from_prebuilt`]
    /// restores an engine that answers every query identically to this
    /// one without re-deriving anything.
    pub fn to_prebuilt(&self) -> Vec<u8> {
        let mut e = Enc::default();
        e.str_block(&self.name);
        let (rule_lines, exc_lines) = self.store.source_lines();
        let mut src = String::new();
        let mut spans_of = |lines: &[&str]| -> Vec<Span> {
            lines
                .iter()
                .map(|line| {
                    let off = src.len() as u32;
                    src.push_str(line);
                    Span {
                        off,
                        len: line.len() as u32,
                    }
                })
                .collect()
        };
        let rule_spans = spans_of(&rule_lines);
        let exc_spans = spans_of(&exc_lines);
        e.str_block(&src);
        e.spans(&rule_spans);
        e.spans(&exc_spans);
        encode_domain_set(&mut e, &self.hosts);
        encode_index(&mut e, &self.index);
        encode_index(&mut e, &self.exception_index);

        let mut out = Vec::with_capacity(HEADER_LEN + e.buf.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&fnv1a(&e.buf).to_le_bytes());
        out.extend_from_slice(&e.buf);
        out
    }

    /// Loads a list from an HBFL v1 image produced by
    /// [`FilterList::to_prebuilt`].
    ///
    /// Validates the header, verifies the FNV-1a payload checksum, then
    /// decodes with full structural revalidation (spans, table shapes,
    /// rule ids, automaton invariants). Corruption — truncation, bit
    /// flips, wrong magic/version — yields
    /// [`io::ErrorKind::InvalidData`]. The rule *source lines* inside a
    /// checksum-valid image are trusted to re-parse (the producer only
    /// stores lines that parsed); they are materialized lazily and only
    /// for APIs that report `Rule` values.
    pub fn from_prebuilt(bytes: &[u8]) -> io::Result<FilterList> {
        if bytes.len() < HEADER_LEN {
            return Err(bad("image shorter than header"));
        }
        if &bytes[0..4] != MAGIC {
            return Err(bad("bad magic (not an HBFL image)"));
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
        if version != VERSION {
            return Err(bad(format!("unsupported version {version}")));
        }
        if bytes[6..8] != [0, 0] {
            return Err(bad("nonzero reserved field"));
        }
        let checksum = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let payload = &bytes[HEADER_LEN..];
        if fnv1a(payload) != checksum {
            return Err(bad("payload checksum mismatch"));
        }

        let mut d = Dec {
            buf: payload,
            at: 0,
        };
        let name = d.str_block("name")?;
        let src = d.str_block("rule source")?;
        let rule_lines = d.spans_vec("rule lines")?;
        let exc_lines = d.spans_vec("exception lines")?;
        for &span in rule_lines.iter().chain(&exc_lines) {
            check_span(&src, span, "source line")?;
        }
        let hosts = decode_domain_set(&mut d)?;
        let index = decode_index(&mut d)?;
        let exception_index = decode_index(&mut d)?;
        d.done()?;
        if index.matchers.len() != rule_lines.len() {
            return Err(bad("rule index not aligned with source lines"));
        }
        if exception_index.matchers.len() != exc_lines.len() {
            return Err(bad("exception index not aligned with source lines"));
        }

        crate::stats::note_engine(
            index.automaton_states() + exception_index.automaton_states(),
            true,
        );
        Ok(FilterList {
            name: name.into_string(),
            store: RuleStore::Prebuilt {
                src,
                rule_lines,
                exc_lines,
                cache: OnceLock::new(),
            },
            hosts,
            index,
            exception_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::RequestContext;
    use crate::rule::ResourceKind;
    use hbbtv_net::Url;

    fn u(s: &str) -> Url {
        s.parse().unwrap()
    }

    fn contexts() -> [RequestContext; 4] {
        [
            RequestContext {
                third_party: true,
                kind: ResourceKind::Image,
            },
            RequestContext {
                third_party: false,
                kind: ResourceKind::Script,
            },
            RequestContext {
                third_party: true,
                kind: ResourceKind::Document,
            },
            RequestContext {
                third_party: false,
                kind: ResourceKind::Other,
            },
        ]
    }

    #[test]
    fn roundtrip_preserves_every_outcome() {
        let original = FilterList::parse_adblock("el", crate::bundled::EASYLIST_TEXT);
        let image = original.to_prebuilt();
        let loaded = FilterList::from_prebuilt(&image).expect("image decodes");
        assert_eq!(loaded.name(), original.name());
        assert_eq!(loaded.len(), original.len());
        let urls = [
            "http://ad.doubleclick.net/impression",
            "http://x.de/adframe/v2/pixel",
            "http://ard.de/static/ad-free/app.js",
            "http://clean.example.de/page",
            "http://adform.net/banner",
        ];
        for url in urls {
            let u = u(url);
            for ctx in contexts() {
                assert_eq!(
                    loaded.matching_rule(&u, ctx),
                    original.matching_rule(&u, ctx),
                    "outcome diverged for {url}"
                );
            }
        }
    }

    #[test]
    fn hosts_lists_roundtrip() {
        let original = FilterList::parse_hosts_list("ph", crate::bundled::PIHOLE_TEXT);
        let loaded = FilterList::from_prebuilt(&original.to_prebuilt()).unwrap();
        assert_eq!(loaded.len(), original.len());
        for url in ["http://ad.doubleclick.net/x", "http://tvping.com/ping"] {
            assert_eq!(
                loaded.matches(&u(url), RequestContext::third_party_image()),
                original.matches(&u(url), RequestContext::third_party_image()),
            );
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = FilterList::parse_adblock("el", crate::bundled::EASYLIST_TEXT).to_prebuilt();
        let b = FilterList::parse_adblock("el", crate::bundled::EASYLIST_TEXT).to_prebuilt();
        assert_eq!(a, b, "same text must serialize byte-identically");
        // And an encode of a decode is the image itself.
        let reloaded = FilterList::from_prebuilt(&a).unwrap().to_prebuilt();
        assert_eq!(a, reloaded);
    }

    #[test]
    fn header_corruption_is_rejected() {
        let image = FilterList::parse_adblock("el", crate::bundled::EASYLIST_TEXT).to_prebuilt();
        // Too short.
        assert!(FilterList::from_prebuilt(&image[..8]).is_err());
        assert!(FilterList::from_prebuilt(&[]).is_err());
        // Wrong magic.
        let mut bad = image.clone();
        bad[0] = b'X';
        assert!(FilterList::from_prebuilt(&bad).is_err());
        // Wrong version.
        let mut bad = image.clone();
        bad[4] = 9;
        assert!(FilterList::from_prebuilt(&bad).is_err());
        // Reserved bits set.
        let mut bad = image.clone();
        bad[6] = 1;
        assert!(FilterList::from_prebuilt(&bad).is_err());
        // Payload flip breaks the checksum.
        let mut bad = image.clone();
        let at = HEADER_LEN + 3;
        bad[at] ^= 0x40;
        assert!(FilterList::from_prebuilt(&bad).is_err());
        // Truncated payload.
        assert!(FilterList::from_prebuilt(&image[..image.len() - 1]).is_err());
    }

    #[test]
    fn structurally_corrupt_payloads_are_rejected_not_panicked() {
        // Rebuild the checksum after corrupting the payload so decode
        // gets past the integrity gate and must catch the damage
        // structurally.
        let image = FilterList::parse_adblock("el", crate::bundled::EASYLIST_TEXT).to_prebuilt();
        for at in (HEADER_LEN..image.len()).step_by(7) {
            let mut bad = image.clone();
            bad[at] ^= 0xff;
            let sum = fnv1a(&bad[HEADER_LEN..]);
            bad[8..16].copy_from_slice(&sum.to_le_bytes());
            // Any result is fine except a panic; a successful decode
            // must at least keep the matcher in bounds.
            if let Ok(list) = FilterList::from_prebuilt(&bad) {
                let _ = list.matches_view(
                    &crate::matcher::UrlView::new(
                        "http://ad.doubleclick.net/impression",
                        "ad.doubleclick.net",
                        "doubleclick.net",
                    ),
                    RequestContext::third_party_image(),
                );
            }
        }
    }
}
