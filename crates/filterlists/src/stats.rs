//! Global match-engine instrumentation: bucket probes, residual scans,
//! and first-match distances — the numbers that justify the indexed
//! engine's speedup over the linear scan.
//!
//! Counting is process-global and **off by default**; the only cost on
//! the disabled path is one relaxed atomic load per index query, so the
//! matcher benchmarks are unaffected. When several lists (or several
//! threads) match concurrently, the totals are exact but not
//! attributable to one caller — the cells are plain commutative
//! counters, so enable/snapshot windows stay deterministic for
//! single-threaded measurement passes (the bench runs one instrumented
//! pass with counting on, outside its timed loops).

use hbbtv_obs::{Counter, Histogram, HistogramSummary};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);

struct Cells {
    queries: Counter,
    bucket_probes: Counter,
    bucket_candidates: Counter,
    residual_checks: Counter,
    hits: Counter,
    first_match_distance: Histogram,
}

fn cells() -> &'static Cells {
    static CELLS: OnceLock<Cells> = OnceLock::new();
    CELLS.get_or_init(|| Cells {
        queries: Counter::new(),
        bucket_probes: Counter::new(),
        bucket_candidates: Counter::new(),
        residual_checks: Counter::new(),
        hits: Counter::new(),
        first_match_distance: Histogram::new(),
    })
}

/// Turns counting on (it starts off).
pub fn enable() {
    cells(); // materialize before the hot path can race the init
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns counting off.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether the engine should count this query.
#[inline]
pub(crate) fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every cell (bench isolation between passes).
pub fn reset() {
    let c = cells();
    c.queries.reset();
    c.bucket_probes.reset();
    c.bucket_candidates.reset();
    c.residual_checks.reset();
    c.hits.reset();
    c.first_match_distance.reset();
}

/// Folds one finished index query into the global cells.
/// `distance` is the number of rules examined before the query decided
/// (recorded only on a hit).
pub(crate) fn note_query(
    bucket_probes: u64,
    bucket_candidates: u64,
    residual_checks: u64,
    hit_distance: Option<u64>,
) {
    let c = cells();
    c.queries.inc();
    c.bucket_probes.add(bucket_probes);
    c.bucket_candidates.add(bucket_candidates);
    c.residual_checks.add(residual_checks);
    if let Some(distance) = hit_distance {
        c.hits.inc();
        c.first_match_distance.record(distance);
    }
}

/// A frozen view of the global match-engine cells.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MatcherStats {
    /// Index queries answered while counting was on.
    pub queries: u64,
    /// Domain-bucket lookups performed (≤ host label count per query).
    pub bucket_probes: u64,
    /// Rules examined out of probed buckets.
    pub bucket_candidates: u64,
    /// Rules examined from the residual (non-domain-anchored) list.
    pub residual_checks: u64,
    /// Queries that found a matching rule.
    pub hits: u64,
    /// Rules examined before each hit decided (the indexed engine's
    /// answer to "how far did we scan?").
    pub first_match_distance: HistogramSummary,
}

impl MatcherStats {
    /// Mean rules examined per query (bucket + residual).
    pub fn rules_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            (self.bucket_candidates + self.residual_checks) as f64 / self.queries as f64
        }
    }
}

/// Snapshots the global cells (zeros if counting never ran).
pub fn snapshot() -> MatcherStats {
    let c = cells();
    MatcherStats {
        queries: c.queries.get(),
        bucket_probes: c.bucket_probes.get(),
        bucket_candidates: c.bucket_candidates.get(),
        residual_checks: c.residual_checks.get(),
        hits: c.hits.get(),
        first_match_distance: c.first_match_distance.summary(),
    }
}
