//! Global match-engine instrumentation: bucket probes, residual
//! automaton walks, and first-match distances — the numbers that
//! justify the indexed engine's speedup over the linear scan.
//!
//! Per-query counting is process-global and **off by default**; the
//! only cost on the disabled path is one relaxed atomic load per index
//! query, so the matcher benchmarks are unaffected. When several lists
//! (or several threads) match concurrently, the totals are exact but
//! not attributable to one caller — the cells are plain commutative
//! counters, so enable/snapshot windows stay deterministic for
//! single-threaded measurement passes (the bench runs one instrumented
//! pass with counting on, outside its timed loops).
//!
//! Engine *construction* events ([`note_engine`](crate)) are recorded
//! unconditionally — builds happen a handful of times per process, and
//! the `engine.load_mode` question ("did this process parse its lists
//! or map prebuilt images?") must be answerable without arming the
//! per-query cells first.

use hbbtv_obs::{Counter, Histogram, HistogramSummary};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);

struct Cells {
    queries: Counter,
    bucket_probes: Counter,
    bucket_candidates: Counter,
    residual_checks: Counter,
    residual_walks: Counter,
    hits: Counter,
    first_match_distance: Histogram,
    automaton_states: Counter,
    engines_built: Counter,
    engines_prebuilt: Counter,
}

fn cells() -> &'static Cells {
    static CELLS: OnceLock<Cells> = OnceLock::new();
    CELLS.get_or_init(|| Cells {
        queries: Counter::new(),
        bucket_probes: Counter::new(),
        bucket_candidates: Counter::new(),
        residual_checks: Counter::new(),
        residual_walks: Counter::new(),
        hits: Counter::new(),
        first_match_distance: Histogram::new(),
        automaton_states: Counter::new(),
        engines_built: Counter::new(),
        engines_prebuilt: Counter::new(),
    })
}

/// Turns counting on (it starts off).
pub fn enable() {
    cells(); // materialize before the hot path can race the init
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns counting off.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether the engine should count this query.
#[inline]
pub(crate) fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every cell (bench isolation between passes).
pub fn reset() {
    let c = cells();
    c.queries.reset();
    c.bucket_probes.reset();
    c.bucket_candidates.reset();
    c.residual_checks.reset();
    c.residual_walks.reset();
    c.hits.reset();
    c.first_match_distance.reset();
    c.automaton_states.reset();
    c.engines_built.reset();
    c.engines_prebuilt.reset();
}

/// Folds one finished index query into the global cells.
/// `distance` is the number of rules examined before the query decided
/// (recorded only on a hit).
pub(crate) fn note_query(
    bucket_probes: u64,
    bucket_candidates: u64,
    residual_checks: u64,
    residual_walks: u64,
    hit_distance: Option<u64>,
) {
    let c = cells();
    c.queries.inc();
    c.bucket_probes.add(bucket_probes);
    c.bucket_candidates.add(bucket_candidates);
    c.residual_checks.add(residual_checks);
    c.residual_walks.add(residual_walks);
    if let Some(distance) = hit_distance {
        c.hits.inc();
        c.first_match_distance.record(distance);
    }
}

/// Records one engine construction: `states` DFA states materialized,
/// via a prebuilt image (`prebuilt`) or by parsing list text. Called
/// unconditionally — construction is rare and `load_mode` must not
/// depend on the per-query switch.
pub(crate) fn note_engine(states: u64, prebuilt: bool) {
    let c = cells();
    c.automaton_states.add(states);
    if prebuilt {
        c.engines_prebuilt.inc();
    } else {
        c.engines_built.inc();
    }
}

/// A frozen view of the global match-engine cells.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MatcherStats {
    /// Index queries answered while counting was on.
    pub queries: u64,
    /// Domain-bucket lookups performed (≤ host label count per query).
    pub bucket_probes: u64,
    /// Rules examined out of probed buckets.
    pub bucket_candidates: u64,
    /// Residual rules examined after surviving the automaton prefilter
    /// (plus the always-check list) — the linear engine's version of
    /// this number was the full residual rule count per query.
    pub residual_checks: u64,
    /// Residual automaton walks performed (≤ 1 per query; 0 when the
    /// partition has no residual rules with a literal part).
    pub residual_walks: u64,
    /// Queries that found a matching rule.
    pub hits: u64,
    /// Rules examined before each hit decided (the indexed engine's
    /// answer to "how far did we scan?").
    pub first_match_distance: HistogramSummary,
    /// Total DFA states across every residual automaton constructed
    /// this process (counted at build/load, not gated on [`enable`]).
    pub automaton_states: u64,
    /// Engines built by parsing list text.
    pub engines_built: u64,
    /// Engines loaded from prebuilt (HBFL) images.
    pub engines_prebuilt: u64,
}

impl MatcherStats {
    /// Mean rules examined per query (bucket + residual).
    pub fn rules_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            (self.bucket_candidates + self.residual_checks) as f64 / self.queries as f64
        }
    }

    /// How this process obtained its engines: `"parsed"`, `"prebuilt"`,
    /// `"mixed"`, or `"none"` when no engine has been constructed.
    pub fn load_mode(&self) -> &'static str {
        match (self.engines_built > 0, self.engines_prebuilt > 0) {
            (true, true) => "mixed",
            (false, true) => "prebuilt",
            (true, false) => "parsed",
            (false, false) => "none",
        }
    }
}

/// Snapshots the global cells (zeros if counting never ran).
pub fn snapshot() -> MatcherStats {
    let c = cells();
    MatcherStats {
        queries: c.queries.get(),
        bucket_probes: c.bucket_probes.get(),
        bucket_candidates: c.bucket_candidates.get(),
        residual_checks: c.residual_checks.get(),
        residual_walks: c.residual_walks.get(),
        hits: c.hits.get(),
        first_match_distance: c.first_match_distance.summary(),
        automaton_states: c.automaton_states.get(),
        engines_built: c.engines_built.get(),
        engines_prebuilt: c.engines_prebuilt.get(),
    }
}
