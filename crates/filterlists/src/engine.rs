//! Indexed match engine: domain-bucketed rule lookup with a residual
//! scan, in the style of production adblock engines.
//!
//! At build time every `||` (domain-anchored) rule lands in a hash
//! bucket keyed by its domain pattern; at match time a URL only probes
//! the buckets for its own host suffixes (`a.b.de` probes `a.b.de`,
//! `b.de`, `de`), so the per-URL cost is bounded by the host's label
//! count plus the few start-anchored/substring rules in the residual
//! scan — not by the list size. Wildcard patterns are pre-split into
//! literal parts once here instead of on every match call.
//!
//! The bucket probe is exhaustive and exact: a domain rule matches a
//! host iff the host equals the rule's domain or ends with `.domain`
//! (see [`host_matches_domain`]), which is precisely the set of
//! dot-boundary suffixes [`host_suffixes`] enumerates. Rules whose
//! domain part is empty or contains `*` can never pass that host check,
//! so they compile to [`Matcher::Never`] instead of a bucket entry.

use crate::matcher::{options_allow, RequestContext, UrlView};
use crate::rule::{parts_match, split_domain_pattern, Anchor, Rule};
use std::collections::HashMap;
use std::hash::Hasher;

/// A multiply-xor string hasher (the FxHash scheme) for the bucket and
/// host-table lookups. The keys are short domain labels from curated
/// filter lists — not attacker-controlled — so SipHash's DoS resistance
/// buys nothing here, while its per-lookup cost dominates small-list
/// matching (several suffix probes across five lists per exchange).
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = 0u64;
            for (i, &b) in rest.iter().enumerate() {
                tail |= u64::from(b) << (8 * i);
            }
            self.add(tail);
        }
    }

    #[inline]
    fn write_u8(&mut self, b: u8) {
        // `str`'s Hash impl terminates with a 0xff byte; fold it in as
        // one word so short keys stay two multiplies total.
        self.add(u64::from(b));
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Build-hasher for the engine's hash tables.
pub(crate) type FxBuildHasher = std::hash::BuildHasherDefault<FxHasher>;

/// A wildcard pattern pre-split on `*` with its anchoring resolved, so
/// match calls run straight into the backtracking part matcher.
#[derive(Debug, Clone)]
struct CompiledPattern {
    parts: Vec<Box<str>>,
    anchored: bool,
    end_sep: bool,
}

impl CompiledPattern {
    fn compile(pattern: &str, anchored: bool, end_separator: bool) -> Self {
        CompiledPattern {
            parts: pattern
                .split('*')
                .filter(|p| !p.is_empty())
                .map(Into::into)
                .collect(),
            // A leading `*` unanchors the pattern; a trailing `*`
            // swallows the end-separator requirement — mirroring the
            // per-call `wildcard_match`/`wildcard_find` exactly.
            anchored: anchored && !pattern.starts_with('*'),
            end_sep: end_separator && !pattern.ends_with('*'),
        }
    }

    fn matches(&self, text: &str) -> bool {
        // All-star patterns split into no parts and match everything,
        // as in the per-call path.
        self.parts.is_empty() || parts_match(text, &self.parts, self.anchored, self.end_sep)
    }
}

/// The per-rule compiled matcher. Domain rules don't re-check the host:
/// reaching one through its bucket already proves the host suffix.
#[derive(Debug, Clone)]
enum Matcher {
    /// `||dom` or `||dom/path…`: host is proven by the bucket probe,
    /// only the optional path remainder is matched (against the
    /// post-host text).
    Domain { path: Option<CompiledPattern> },
    /// `|pattern`: anchored at the start of the full URL text.
    Start(CompiledPattern),
    /// Unanchored substring pattern over the full URL text.
    Substring(CompiledPattern),
    /// A rule that cannot match any valid host (empty or wildcarded
    /// domain part) — kept so rule indices stay aligned.
    Never,
}

/// The index over one rule vector. Bucket entries and the residual list
/// store rule indices in ascending (list) order, which is what lets
/// [`RuleIndex::first_match`] reproduce the linear scan's
/// first-match-wins semantics.
#[derive(Debug, Clone, Default)]
pub(crate) struct RuleIndex {
    buckets: HashMap<Box<str>, Vec<u32>, FxBuildHasher>,
    residual: Vec<u32>,
    compiled: Vec<Matcher>,
}

impl RuleIndex {
    pub(crate) fn build(rules: &[Rule]) -> Self {
        let mut index = RuleIndex::default();
        for (i, rule) in rules.iter().enumerate() {
            let i = u32::try_from(i).expect("filter lists stay below 2^32 rules");
            let compiled = match rule.anchor {
                Anchor::Domain => {
                    let (dom, path) = split_domain_pattern(&rule.pattern);
                    if dom.is_empty() || dom.contains('*') {
                        Matcher::Never
                    } else {
                        index.buckets.entry(dom.into()).or_default().push(i);
                        let path = (!path.is_empty())
                            .then(|| CompiledPattern::compile(path, true, rule.end_separator));
                        Matcher::Domain { path }
                    }
                }
                Anchor::Start => {
                    index.residual.push(i);
                    Matcher::Start(CompiledPattern::compile(
                        &rule.pattern,
                        true,
                        rule.end_separator,
                    ))
                }
                Anchor::None => {
                    index.residual.push(i);
                    Matcher::Substring(CompiledPattern::compile(
                        &rule.pattern,
                        false,
                        rule.end_separator,
                    ))
                }
            };
            index.compiled.push(compiled);
        }
        index
    }

    /// Whether rule `i` fires on the view (options gate + compiled
    /// pattern). Zero allocations.
    fn applies(&self, i: u32, rules: &[Rule], view: &UrlView<'_>, ctx: RequestContext) -> bool {
        if !options_allow(&rules[i as usize], ctx) {
            return false;
        }
        match &self.compiled[i as usize] {
            Matcher::Domain { path } => match path {
                None => true,
                Some(p) => p.matches(view.after_host()),
            },
            Matcher::Start(p) => p.matches(view.text),
            Matcher::Substring(p) => p.matches(view.text),
            Matcher::Never => false,
        }
    }

    /// The lowest-index rule that fires — identical to what a linear
    /// `rules.iter().find(..)` would report. Each bucket (and the
    /// residual list) is ascending, so the first hit per probe is that
    /// probe's minimum and later probes stop as soon as their indices
    /// pass the current best.
    pub(crate) fn first_match(
        &self,
        rules: &[Rule],
        view: &UrlView<'_>,
        ctx: RequestContext,
    ) -> Option<u32> {
        if self.compiled.is_empty() {
            return None;
        }
        // One relaxed load when counting is off (the default); the
        // instrumented loops live in a separate cold copy so this hot
        // path compiles exactly as if the cells didn't exist.
        if crate::stats::enabled() {
            return self.first_match_counted(rules, view, ctx);
        }
        let mut best: Option<u32> = None;
        for &i in &self.residual {
            if best.is_some_and(|b| i >= b) {
                break;
            }
            if self.applies(i, rules, view, ctx) {
                best = Some(i);
                break;
            }
        }
        for suffix in host_suffixes(view.host) {
            if let Some(ids) = self.buckets.get(suffix) {
                for &i in ids {
                    if best.is_some_and(|b| i >= b) {
                        break;
                    }
                    if self.applies(i, rules, view, ctx) {
                        best = Some(i);
                        break;
                    }
                }
            }
        }
        best
    }

    /// [`RuleIndex::first_match`] with the global cells fed — same
    /// result, same probe order.
    #[cold]
    fn first_match_counted(
        &self,
        rules: &[Rule],
        view: &UrlView<'_>,
        ctx: RequestContext,
    ) -> Option<u32> {
        let (mut probes, mut candidates, mut residual_checks) = (0u64, 0u64, 0u64);
        let mut best: Option<u32> = None;
        for &i in &self.residual {
            if best.is_some_and(|b| i >= b) {
                break;
            }
            residual_checks += 1;
            if self.applies(i, rules, view, ctx) {
                best = Some(i);
                break;
            }
        }
        for suffix in host_suffixes(view.host) {
            if let Some(ids) = self.buckets.get(suffix) {
                probes += 1;
                for &i in ids {
                    if best.is_some_and(|b| i >= b) {
                        break;
                    }
                    candidates += 1;
                    if self.applies(i, rules, view, ctx) {
                        best = Some(i);
                        break;
                    }
                }
            }
        }
        let distance = best.map(|_| candidates + residual_checks);
        crate::stats::note_query(probes, candidates, residual_checks, distance);
        best
    }

    /// Whether any rule fires, in no particular order (used for the
    /// boolean `matches` path and for exception lists, where only
    /// existence matters).
    pub(crate) fn any_match(
        &self,
        rules: &[Rule],
        view: &UrlView<'_>,
        ctx: RequestContext,
    ) -> bool {
        if self.compiled.is_empty() {
            return false;
        }
        if crate::stats::enabled() {
            return self.any_match_counted(rules, view, ctx);
        }
        self.residual
            .iter()
            .any(|&i| self.applies(i, rules, view, ctx))
            || (!self.buckets.is_empty()
                && host_suffixes(view.host).any(|suffix| {
                    self.buckets
                        .get(suffix)
                        .is_some_and(|ids| ids.iter().any(|&i| self.applies(i, rules, view, ctx)))
                }))
    }

    /// [`RuleIndex::any_match`] with the global cells fed — same
    /// result, same probe order.
    #[cold]
    fn any_match_counted(&self, rules: &[Rule], view: &UrlView<'_>, ctx: RequestContext) -> bool {
        let (mut probes, mut candidates, mut residual_checks) = (0u64, 0u64, 0u64);
        let hit = self.residual.iter().any(|&i| {
            residual_checks += 1;
            self.applies(i, rules, view, ctx)
        }) || (!self.buckets.is_empty()
            && host_suffixes(view.host).any(|suffix| {
                self.buckets.get(suffix).is_some_and(|ids| {
                    probes += 1;
                    ids.iter().any(|&i| {
                        candidates += 1;
                        self.applies(i, rules, view, ctx)
                    })
                })
            }));
        let distance = hit.then_some(candidates + residual_checks);
        crate::stats::note_query(probes, candidates, residual_checks, distance);
        hit
    }
}

/// The host itself plus every suffix starting after a dot:
/// `a.b.de` → `a.b.de`, `b.de`, `de`.
fn host_suffixes(host: &str) -> impl Iterator<Item = &str> {
    std::iter::successors(Some(host), |h| h.find('.').map(|i| &h[i + 1..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_suffixes_walk_label_boundaries() {
        let got: Vec<&str> = host_suffixes("a.b.c.de").collect();
        assert_eq!(got, ["a.b.c.de", "b.c.de", "c.de", "de"]);
        let got: Vec<&str> = host_suffixes("de").collect();
        assert_eq!(got, ["de"]);
    }

    #[test]
    fn compiled_pattern_mirrors_wildcard_semantics() {
        let p = CompiledPattern::compile("/track/*/pixel", true, false);
        assert!(p.matches("/track/v2/pixel.gif"));
        assert!(!p.matches("/track/pixel"));
        // All-star patterns match everything, end separator or not.
        let p = CompiledPattern::compile("**", false, true);
        assert!(p.matches("anything"));
        // A trailing star swallows the end-separator requirement.
        let p = CompiledPattern::compile("/pixel*", false, true);
        assert!(p.matches("/pixels"));
    }

    #[test]
    fn stats_count_probes_candidates_and_distances() {
        use crate::matcher::{FilterList, RequestContext};
        use crate::rule::ResourceKind;
        use hbbtv_net::Url;

        let list = FilterList::parse_adblock(
            "test",
            "||ads.example.de^\n||tracker.de^\n/telemetry/collect",
        );
        let ctx = RequestContext {
            third_party: true,
            kind: ResourceKind::Other,
        };
        let hit: Url = "http://pixel.ads.example.de/1x1.gif".parse().unwrap();
        let miss: Url = "http://static.content.de/app.js".parse().unwrap();

        crate::stats::reset();
        crate::stats::enable();
        assert!(list.matches(&hit, ctx));
        assert!(!list.matches(&miss, ctx));
        crate::stats::disable();
        let stats = crate::stats::snapshot();

        // Other tests may race the global cells between enable and
        // disable, so assert lower bounds only.
        assert!(stats.queries >= 2, "both matches queried the index");
        assert!(stats.hits >= 1);
        assert!(
            stats.bucket_probes >= 1,
            "the hit URL probed its host-suffix bucket"
        );
        assert!(stats.residual_checks >= 1, "the residual rule was scanned");
        assert!(stats.first_match_distance.count >= 1);
        assert!(stats.rules_per_query() > 0.0);

        // Counting off again: the cells stay frozen.
        let before = crate::stats::snapshot().queries;
        let _ = list.matches(&hit, ctx);
        assert_eq!(crate::stats::snapshot().queries, before);
    }

    #[test]
    fn never_rules_stay_index_aligned() {
        let rules: Vec<Rule> = ["||/path-only", "||a*b.de^", "||real.de^"]
            .iter()
            .filter_map(|l| crate::rule::parse_adblock_line(l))
            .collect();
        assert_eq!(rules.len(), 3);
        let index = RuleIndex::build(&rules);
        assert_eq!(index.compiled.len(), 3);
        // Only the last rule got a bucket; the first two can never match.
        assert_eq!(index.buckets.len(), 1);
        assert!(index.buckets.contains_key("real.de"));
        assert!(index.residual.is_empty());
    }
}
