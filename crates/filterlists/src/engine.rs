//! Indexed match engine: a three-tier layout — domain buckets, resource
//! -kind partitions, and an Aho–Corasick residual — in the style of
//! production adblock engines, with a flat arena representation that
//! serializes directly into the prebuilt "HBFL" image
//! ([`crate::prebuilt`]).
//!
//! **Tier 1 — domain buckets.** Every `||` (domain-anchored) rule lands
//! in an open-addressed hash table keyed by its domain pattern; at match
//! time a URL only probes its own host suffixes (`a.b.de` probes
//! `a.b.de`, `b.de`, `de`), so bucket cost is bounded by the host's
//! label count, not the list size. The bucket probe is exhaustive and
//! exact: a domain rule matches a host iff the host equals the rule's
//! domain or ends with `.domain` (see [`host_matches_domain`]), which is
//! precisely the set of dot-boundary suffixes [`host_suffixes`]
//! enumerates. Rules whose domain part is empty or contains `*` can
//! never pass that host check, so they compile to `TAG_NEVER` instead
//! of a bucket entry.
//!
//! **Tier 2 — kind partitions.** Buckets *and* the residual are
//! partitioned by [`ResourceKind`]: a `$image` rule only exists in the
//! `Image` partition, so an image request never examines script-only
//! rules and vice versa. Kind-neutral rules would quadruplicate the
//! tables, so partitions with identical member sets are deduplicated —
//! a list with no kind-constrained rules builds exactly one partition
//! shared by all four kinds.
//!
//! **Tier 3 — residual automaton.** Start-anchored and substring rules
//! (the "residual" the buckets can't key) used to be scanned linearly —
//! the measured cliff at 10^4+ rules. Each such rule now contributes its
//! longest literal part as a needle to a shared byte-level Aho–Corasick
//! DFA ([`hbbtv_automaton::Automaton`]): one walk over the URL text
//! yields the only candidate rules whose pattern could possibly match
//! (a wildcard pattern needs *every* literal part present, so a missing
//! longest part disqualifies the rule), and only those few candidates
//! run the full backtracking/option check. All-wildcard patterns (no
//! literal part) go to a tiny always-check list.
//!
//! Rule options (`$third-party`, `$image`, …) are packed into each
//! rule's compiled record, so the entire match path runs without
//! touching the parsed `Rule` vector — which is what lets a prebuilt
//! image serve matches without materializing rules at all.

use crate::matcher::{RequestContext, UrlView};
use crate::rule::{split_domain_pattern, Anchor, Parts, ResourceKind, Rule};
use hbbtv_automaton::Automaton;
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::Hasher;

/// A multiply-xor string hasher (the FxHash scheme) for the bucket and
/// host-table lookups. The keys are short domain labels from curated
/// filter lists — not attacker-controlled — so SipHash's DoS resistance
/// buys nothing here, while its per-lookup cost dominates small-list
/// matching (several suffix probes across five lists per exchange).
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = 0u64;
            for (i, &b) in rest.iter().enumerate() {
                tail |= u64::from(b) << (8 * i);
            }
            self.add(tail);
        }
    }

    #[inline]
    fn write_u8(&mut self, b: u8) {
        // `str`'s Hash impl terminates with a 0xff byte; fold it in as
        // one word so short keys stay two multiplies total.
        self.add(u64::from(b));
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Build-hasher for the engine's (build-time) hash tables.
pub(crate) type FxBuildHasher = std::hash::BuildHasherDefault<FxHasher>;

/// One FxHash of a byte string — the probe hash for [`BucketTable`] and
/// [`DomainSet`]. Both the builder and the (possibly deserialized)
/// prober use this same function, which is what makes the serialized
/// slot layout portable.
#[inline]
pub(crate) fn fx_hash(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// A byte range into an engine arena. Everything variable-width in the
/// engine — domains, pattern parts, needles, host domains — is a `Span`
/// into one string, so the whole structure is flat and
/// serialization-friendly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct Span {
    pub(crate) off: u32,
    pub(crate) len: u32,
}

impl Span {
    #[inline]
    pub(crate) fn of(self, arena: &str) -> &str {
        &arena[self.off as usize..(self.off + self.len) as usize]
    }
}

/// Pushes `s` into the arena and returns its span.
fn intern(arena: &mut String, s: &str) -> Span {
    let off = u32::try_from(arena.len()).expect("arena below 4 GiB");
    arena.push_str(s);
    Span {
        off,
        len: s.len() as u32,
    }
}

/// Arena-backed part list for [`parts_match`](crate::rule::parts_match).
#[derive(Clone, Copy)]
struct ArenaParts<'p> {
    arena: &'p str,
    spans: &'p [Span],
}

impl<'p> Parts<'p> for ArenaParts<'p> {
    #[inline]
    fn split_first(self) -> Option<(&'p str, Self)> {
        self.spans.split_first().map(|(s, rest)| {
            (
                s.of(self.arena),
                ArenaParts {
                    arena: self.arena,
                    spans: rest,
                },
            )
        })
    }
}

// Compiled-rule tags.
pub(crate) const TAG_NEVER: u8 = 0;
pub(crate) const TAG_DOMAIN: u8 = 1;
pub(crate) const TAG_START: u8 = 2;
pub(crate) const TAG_SUBSTRING: u8 = 3;

// Compiled-rule flags: pattern anchoring plus the `$option` gates,
// packed so the match path never consults the parsed `Rule`.
pub(crate) const F_ANCHORED: u8 = 1 << 0;
pub(crate) const F_END_SEP: u8 = 1 << 1;
pub(crate) const F_THIRD_ONLY: u8 = 1 << 2;
pub(crate) const F_FIRST_ONLY: u8 = 1 << 3;
pub(crate) const F_IMAGE_ONLY: u8 = 1 << 4;
pub(crate) const F_SCRIPT_ONLY: u8 = 1 << 5;

/// One compiled rule: tag, flags, and the `*`-split literal parts as a
/// range into [`RuleIndex::parts`]. 8 bytes, fixed width.
///
/// * `TAG_DOMAIN` — `||dom` or `||dom/path…`: the host is proven by the
///   bucket probe; `parts` hold the optional path remainder (matched
///   against the post-host text; empty = no path, always matches).
/// * `TAG_START` — `|pattern`, anchored at the start of the URL text
///   (unless a leading `*` cleared `F_ANCHORED`).
/// * `TAG_SUBSTRING` — unanchored pattern over the URL text.
/// * `TAG_NEVER` — a rule that cannot match any host (empty or
///   wildcarded domain part), kept so rule indices stay aligned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct MatcherRec {
    pub(crate) tag: u8,
    pub(crate) flags: u8,
    pub(crate) parts_len: u16,
    pub(crate) parts_start: u32,
}

/// An open-addressed domain → candidate-ids table with linear probing.
///
/// Capacity is a power of two at most half full; an empty slot has
/// `dom.off == u32::MAX`. Insertion order is rule order, so the slot
/// layout is deterministic — the property that makes the serialized
/// image byte-stable.
#[derive(Debug, Clone, Default)]
pub(crate) struct BucketTable {
    pub(crate) mask: u32,
    pub(crate) slots: Vec<BucketSlot>,
}

/// One [`BucketTable`] slot: the domain key and its candidate-id range
/// in the partition's flat `ids` vector.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BucketSlot {
    pub(crate) dom: Span,
    pub(crate) ids_start: u32,
    pub(crate) ids_len: u32,
}

pub(crate) const EMPTY_SLOT: u32 = u32::MAX;

impl BucketTable {
    /// Builds the table from `(domain, ids)` groups (insertion order =
    /// first-occurrence order). Returns the table plus the flat ids.
    fn build(arena: &str, groups: &[(Span, Vec<u32>)]) -> (BucketTable, Vec<u32>) {
        if groups.is_empty() {
            return (BucketTable::default(), Vec::new());
        }
        let cap = (groups.len() * 2).next_power_of_two().max(4);
        let mask = (cap - 1) as u32;
        let mut slots = vec![
            BucketSlot {
                dom: Span {
                    off: EMPTY_SLOT,
                    len: 0
                },
                ids_start: 0,
                ids_len: 0,
            };
            cap
        ];
        let mut ids = Vec::new();
        for &(dom, ref group) in groups {
            let mut at = (fx_hash(dom.of(arena).as_bytes()) & u64::from(mask)) as usize;
            while slots[at].dom.off != EMPTY_SLOT {
                at = (at + 1) & mask as usize;
            }
            slots[at] = BucketSlot {
                dom,
                ids_start: ids.len() as u32,
                ids_len: group.len() as u32,
            };
            ids.extend_from_slice(group);
        }
        (BucketTable { mask, slots }, ids)
    }

    /// Probes for an exact domain key; returns the ids range.
    #[inline]
    fn get(&self, arena: &str, key: &str) -> Option<(u32, u32)> {
        if self.slots.is_empty() {
            return None;
        }
        let mut at = (fx_hash(key.as_bytes()) & u64::from(self.mask)) as usize;
        loop {
            let slot = &self.slots[at];
            if slot.dom.off == EMPTY_SLOT {
                return None;
            }
            if slot.dom.of(arena) == key {
                return Some((slot.ids_start, slot.ids_len));
            }
            at = (at + 1) & self.mask as usize;
        }
    }
}

/// Sentinel for "this partition has no residual automaton".
pub(crate) const NO_AUTOMATON: u32 = u32::MAX;

/// The per-resource-kind slice of the engine: this kind's domain
/// buckets plus its residual (automaton index + always-check list).
/// Partitions with identical member sets are shared across kinds via
/// [`RuleIndex::of_kind`].
#[derive(Debug, Clone, Default)]
pub(crate) struct Partition {
    pub(crate) table: BucketTable,
    /// Flat candidate-id lists the bucket slots point into; each
    /// bucket's ids ascend (rule order), preserving first-match-wins.
    pub(crate) ids: Vec<u32>,
    /// Index into [`RuleIndex::automatons`], or [`NO_AUTOMATON`].
    pub(crate) automaton: u32,
    /// Residual rules with no literal part (all-wildcard patterns):
    /// checked on every query, ascending.
    pub(crate) always: Vec<u32>,
}

/// Maps a [`ResourceKind`] to its partition slot.
#[inline]
pub(crate) fn kind_slot(kind: ResourceKind) -> usize {
    match kind {
        ResourceKind::Document => 0,
        ResourceKind::Script => 1,
        ResourceKind::Image => 2,
        ResourceKind::Other => 3,
    }
}

/// The index over one rule vector. Bucket entries, automaton candidate
/// sets, and the always lists store rule indices; candidates are
/// examined in ascending (list) order, which is what lets
/// [`RuleIndex::first_match`] reproduce the linear scan's
/// first-match-wins semantics.
#[derive(Debug, Clone, Default)]
pub(crate) struct RuleIndex {
    /// Every literal the engine reads: domains, pattern parts.
    pub(crate) arena: Box<str>,
    /// One compiled record per rule, index-aligned with the rule list.
    pub(crate) matchers: Vec<MatcherRec>,
    /// Flattened `*`-split literal parts, referenced by `matchers`.
    pub(crate) parts: Vec<Span>,
    /// Deduplicated kind partitions (≥ 1 once any rule exists).
    pub(crate) partitions: Vec<Partition>,
    /// `kind_slot` → index into `partitions`.
    pub(crate) of_kind: [u8; 4],
    /// Deduplicated residual automatons, shared across partitions.
    pub(crate) automatons: Vec<Automaton>,
}

thread_local! {
    /// Scratch for first-match candidate collection: the automaton
    /// reports candidates in text order, first-match needs id order.
    /// Thread-local so the match path stays allocation-free in steady
    /// state and `&self` across worker threads.
    static RESIDUAL_SCRATCH: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

impl RuleIndex {
    pub(crate) fn build(rules: &[Rule]) -> Self {
        let mut arena = String::new();
        let mut matchers = Vec::with_capacity(rules.len());
        let mut parts: Vec<Span> = Vec::new();
        // Per-rule bucket/residual membership, gathered during compile.
        let mut domain_of: Vec<Option<Span>> = Vec::with_capacity(rules.len());
        let mut needle_of: Vec<Option<Span>> = Vec::with_capacity(rules.len());

        for rule in rules {
            let mut flags = 0u8;
            if rule.options.third_party_only {
                flags |= F_THIRD_ONLY;
            }
            if rule.options.first_party_only {
                flags |= F_FIRST_ONLY;
            }
            if rule.options.image_only {
                flags |= F_IMAGE_ONLY;
            }
            if rule.options.script_only {
                flags |= F_SCRIPT_ONLY;
            }

            let (tag, pattern, anchored) = match rule.anchor {
                Anchor::Domain => {
                    let (dom, path) = split_domain_pattern(&rule.pattern);
                    if dom.is_empty() || dom.contains('*') {
                        (TAG_NEVER, "", false)
                    } else {
                        domain_of.push(Some(intern(&mut arena, dom)));
                        needle_of.push(None);
                        (TAG_DOMAIN, path, true)
                    }
                }
                Anchor::Start => (TAG_START, rule.pattern.as_str(), true),
                Anchor::None => (TAG_SUBSTRING, rule.pattern.as_str(), false),
            };
            if tag != TAG_DOMAIN {
                domain_of.push(None);
                needle_of.push(None);
            }

            // Mirror `wildcard_match`/`wildcard_find` exactly: a leading
            // `*` unanchors, a trailing `*` swallows the end-separator.
            if anchored && !pattern.starts_with('*') {
                flags |= F_ANCHORED;
            }
            if rule.end_separator
                && !pattern.ends_with('*')
                && !(tag == TAG_DOMAIN && pattern.is_empty())
            {
                flags |= F_END_SEP;
            }

            let parts_start = parts.len() as u32;
            let mut longest: Option<Span> = None;
            for part in pattern.split('*').filter(|p| !p.is_empty()) {
                let span = intern(&mut arena, part);
                parts.push(span);
                if longest.is_none_or(|l| span.len > l.len) {
                    longest = Some(span);
                }
            }
            let parts_len = (parts.len() as u32 - parts_start) as u16;
            if matches!(tag, TAG_START | TAG_SUBSTRING) {
                *needle_of.last_mut().expect("pushed above") = longest;
            }
            matchers.push(MatcherRec {
                tag,
                flags,
                parts_len,
                parts_start,
            });
        }
        let arena: Box<str> = arena.into_boxed_str();

        // Kind membership sets. A rule constrained to both image and
        // script can match neither (a request has one kind) — exactly
        // as `options_allow` decides — so it joins no partition.
        let mut kind_domain: [Vec<u32>; 4] = Default::default();
        let mut kind_residual: [Vec<u32>; 4] = Default::default();
        for (i, rec) in matchers.iter().enumerate() {
            let i = u32::try_from(i).expect("filter lists stay below 2^32 rules");
            let in_kind = |slot: usize| match (
                rec.flags & F_IMAGE_ONLY != 0,
                rec.flags & F_SCRIPT_ONLY != 0,
            ) {
                (false, false) => true,
                (true, false) => slot == kind_slot(ResourceKind::Image),
                (false, true) => slot == kind_slot(ResourceKind::Script),
                (true, true) => false,
            };
            for slot in 0..4 {
                if !in_kind(slot) {
                    continue;
                }
                match rec.tag {
                    TAG_DOMAIN => kind_domain[slot].push(i),
                    TAG_START | TAG_SUBSTRING => kind_residual[slot].push(i),
                    _ => {}
                }
            }
        }

        // Deduplicate: kinds with identical member sets share one
        // partition; identical residual sets share one automaton.
        let mut partitions: Vec<Partition> = Vec::new();
        let mut of_kind = [0u8; 4];
        let mut automatons: Vec<Automaton> = Vec::new();
        let mut part_memo: HashMap<(Vec<u32>, Vec<u32>), u8, FxBuildHasher> = HashMap::default();
        let mut auto_memo: HashMap<Vec<u32>, u32, FxBuildHasher> = HashMap::default();
        for slot in 0..4 {
            let key = (kind_domain[slot].clone(), kind_residual[slot].clone());
            if let Some(&p) = part_memo.get(&key) {
                of_kind[slot] = p;
                continue;
            }

            // Buckets: group this kind's domain rules by domain key,
            // first-occurrence order, ids ascending within a group.
            let mut group_of: HashMap<&str, usize, FxBuildHasher> = HashMap::default();
            let mut groups: Vec<(Span, Vec<u32>)> = Vec::new();
            for &i in &kind_domain[slot] {
                let dom = domain_of[i as usize].expect("domain rule has a domain span");
                let at = *group_of.entry(dom.of(&arena)).or_insert_with(|| {
                    groups.push((dom, Vec::new()));
                    groups.len() - 1
                });
                groups[at].1.push(i);
            }
            let (table, ids) = BucketTable::build(&arena, &groups);

            // Residual: automaton over each rule's longest literal part;
            // literal-free rules go to the always list.
            let mut always = Vec::new();
            let mut auto_rules: Vec<u32> = Vec::new();
            for &i in &kind_residual[slot] {
                match needle_of[i as usize] {
                    Some(_) => auto_rules.push(i),
                    None => always.push(i),
                }
            }
            let automaton = if auto_rules.is_empty() {
                NO_AUTOMATON
            } else if let Some(&a) = auto_memo.get(&auto_rules) {
                a
            } else {
                let needles: Vec<(&[u8], u32)> = auto_rules
                    .iter()
                    .map(|&i| {
                        let span = needle_of[i as usize].expect("filtered above");
                        (span.of(&arena).as_bytes(), i)
                    })
                    .collect();
                automatons.push(Automaton::build(&needles));
                let a = (automatons.len() - 1) as u32;
                auto_memo.insert(auto_rules.clone(), a);
                a
            };

            let p = u8::try_from(partitions.len()).expect("at most 4 partitions");
            partitions.push(Partition {
                table,
                ids,
                automaton,
                always,
            });
            part_memo.insert(key, p);
            of_kind[slot] = p;
        }

        RuleIndex {
            arena,
            matchers,
            parts,
            partitions,
            of_kind,
            automatons,
        }
    }

    /// Total DFA states across this index's automatons (obs feed).
    pub(crate) fn automaton_states(&self) -> u64 {
        self.automatons
            .iter()
            .map(|a| u64::from(a.n_states()))
            .sum()
    }

    #[inline]
    fn partition(&self, kind: ResourceKind) -> &Partition {
        &self.partitions[self.of_kind[kind_slot(kind)] as usize]
    }

    #[inline]
    fn automaton_of(&self, part: &Partition) -> Option<&Automaton> {
        if part.automaton == NO_AUTOMATON {
            None
        } else {
            Some(&self.automatons[part.automaton as usize])
        }
    }

    #[inline]
    fn bucket_ids<'s>(&'s self, part: &'s Partition, suffix: &str) -> Option<&'s [u32]> {
        part.table
            .get(&self.arena, suffix)
            .map(|(start, len)| &part.ids[start as usize..(start + len) as usize])
    }

    /// Whether rule `i` fires on the view (packed option gate + compiled
    /// pattern). Zero allocations, no `Rule` access.
    #[inline]
    fn applies(&self, i: u32, view: &UrlView<'_>, ctx: RequestContext) -> bool {
        let m = self.matchers[i as usize];
        let f = m.flags;
        if (f & F_THIRD_ONLY != 0 && !ctx.third_party)
            || (f & F_FIRST_ONLY != 0 && ctx.third_party)
            || (f & F_IMAGE_ONLY != 0 && ctx.kind != ResourceKind::Image)
            || (f & F_SCRIPT_ONLY != 0 && ctx.kind != ResourceKind::Script)
        {
            return false;
        }
        let spans =
            &self.parts[m.parts_start as usize..m.parts_start as usize + m.parts_len as usize];
        // All-star patterns split into no parts and match everything,
        // as in the per-call path (`Domain` with no path likewise: the
        // bucket probe already proved the host).
        if spans.is_empty() {
            return m.tag != TAG_NEVER;
        }
        let parts = ArenaParts {
            arena: &self.arena,
            spans,
        };
        let text = match m.tag {
            TAG_DOMAIN => view.after_host(),
            _ => view.text,
        };
        crate::rule::parts_match(text, parts, f & F_ANCHORED != 0, f & F_END_SEP != 0)
    }

    /// The lowest-index rule that fires — identical to what a linear
    /// `rules.iter().find(..)` would report. Residual candidates come
    /// out of the automaton walk unordered, so they are sorted into id
    /// order first; each bucket's ids ascend, so the first hit per probe
    /// is that probe's minimum and later probes stop as soon as their
    /// indices pass the current best.
    pub(crate) fn first_match(&self, view: &UrlView<'_>, ctx: RequestContext) -> Option<u32> {
        if self.matchers.is_empty() {
            return None;
        }
        // One relaxed load when counting is off (the default); the
        // instrumented loops live in a separate cold copy so this hot
        // path compiles exactly as if the cells didn't exist.
        if crate::stats::enabled() {
            return self.first_match_counted(view, ctx);
        }
        let part = self.partition(ctx.kind);
        let mut best: Option<u32> = None;
        RESIDUAL_SCRATCH.with(|scratch| {
            let mut cand = scratch.borrow_mut();
            cand.clear();
            if let Some(auto) = self.automaton_of(part) {
                auto.for_each_match(view.text.as_bytes(), |id| cand.push(id));
            }
            cand.extend_from_slice(&part.always);
            cand.sort_unstable();
            cand.dedup();
            for &i in cand.iter() {
                if self.applies(i, view, ctx) {
                    best = Some(i);
                    break;
                }
            }
        });
        for suffix in host_suffixes(view.host) {
            if let Some(ids) = self.bucket_ids(part, suffix) {
                for &i in ids {
                    if best.is_some_and(|b| i >= b) {
                        break;
                    }
                    if self.applies(i, view, ctx) {
                        best = Some(i);
                        break;
                    }
                }
            }
        }
        best
    }

    /// [`RuleIndex::first_match`] with the global cells fed — same
    /// result, same probe order.
    #[cold]
    fn first_match_counted(&self, view: &UrlView<'_>, ctx: RequestContext) -> Option<u32> {
        let part = self.partition(ctx.kind);
        let (mut probes, mut candidates, mut residual_checks) = (0u64, 0u64, 0u64);
        let mut walks = 0u64;
        let mut best: Option<u32> = None;
        RESIDUAL_SCRATCH.with(|scratch| {
            let mut cand = scratch.borrow_mut();
            cand.clear();
            if let Some(auto) = self.automaton_of(part) {
                walks = 1;
                auto.for_each_match(view.text.as_bytes(), |id| cand.push(id));
            }
            cand.extend_from_slice(&part.always);
            cand.sort_unstable();
            cand.dedup();
            for &i in cand.iter() {
                residual_checks += 1;
                if self.applies(i, view, ctx) {
                    best = Some(i);
                    break;
                }
            }
        });
        for suffix in host_suffixes(view.host) {
            if let Some(ids) = self.bucket_ids(part, suffix) {
                probes += 1;
                for &i in ids {
                    if best.is_some_and(|b| i >= b) {
                        break;
                    }
                    candidates += 1;
                    if self.applies(i, view, ctx) {
                        best = Some(i);
                        break;
                    }
                }
            }
        }
        let distance = best.map(|_| candidates + residual_checks);
        crate::stats::note_query(probes, candidates, residual_checks, walks, distance);
        best
    }

    /// Whether any rule fires, in no particular order (used for the
    /// boolean `matches` path and for exception lists, where only
    /// existence matters). The automaton walk short-circuits on the
    /// first candidate that survives the full check.
    pub(crate) fn any_match(&self, view: &UrlView<'_>, ctx: RequestContext) -> bool {
        if self.matchers.is_empty() {
            return false;
        }
        if crate::stats::enabled() {
            return self.any_match_counted(view, ctx);
        }
        let part = self.partition(ctx.kind);
        if let Some(auto) = self.automaton_of(part) {
            let mut state = 0u32;
            for &b in view.text.as_bytes() {
                state = auto.step(state, b);
                for &id in auto.outputs(state) {
                    if self.applies(id, view, ctx) {
                        return true;
                    }
                }
            }
        }
        if part.always.iter().any(|&i| self.applies(i, view, ctx)) {
            return true;
        }
        host_suffixes(view.host).any(|suffix| {
            self.bucket_ids(part, suffix)
                .is_some_and(|ids| ids.iter().any(|&i| self.applies(i, view, ctx)))
        })
    }

    /// [`RuleIndex::any_match`] with the global cells fed — same
    /// result, same probe order.
    #[cold]
    fn any_match_counted(&self, view: &UrlView<'_>, ctx: RequestContext) -> bool {
        let part = self.partition(ctx.kind);
        let (mut probes, mut candidates, mut residual_checks) = (0u64, 0u64, 0u64);
        let mut walks = 0u64;
        let mut hit = false;
        if let Some(auto) = self.automaton_of(part) {
            walks = 1;
            let mut state = 0u32;
            'walk: for &b in view.text.as_bytes() {
                state = auto.step(state, b);
                for &id in auto.outputs(state) {
                    residual_checks += 1;
                    if self.applies(id, view, ctx) {
                        hit = true;
                        break 'walk;
                    }
                }
            }
        }
        hit =
            hit || part.always.iter().any(|&i| {
                residual_checks += 1;
                self.applies(i, view, ctx)
            }) || host_suffixes(view.host).any(|suffix| {
                self.bucket_ids(part, suffix).is_some_and(|ids| {
                    probes += 1;
                    ids.iter().any(|&i| {
                        candidates += 1;
                        self.applies(i, view, ctx)
                    })
                })
            });
        let distance = hit.then_some(candidates + residual_checks);
        crate::stats::note_query(probes, candidates, residual_checks, walks, distance);
        hit
    }
}

/// An open-addressed domain *set* over an arena — the hosts-list
/// counterpart of [`BucketTable`], sharing its hash and layout so it
/// serializes the same way.
#[derive(Debug, Clone, Default)]
pub(crate) struct DomainSet {
    pub(crate) arena: Box<str>,
    pub(crate) mask: u32,
    /// `(off, len)` spans; empty slots have `off == u32::MAX`.
    pub(crate) slots: Vec<Span>,
    pub(crate) len: u32,
}

impl DomainSet {
    /// Builds the set from deduplicated domains (callers sort for a
    /// deterministic slot layout).
    pub(crate) fn build(domains: &[String]) -> DomainSet {
        if domains.is_empty() {
            return DomainSet::default();
        }
        let mut arena = String::new();
        let spans: Vec<Span> = domains.iter().map(|d| intern(&mut arena, d)).collect();
        let arena: Box<str> = arena.into_boxed_str();
        let cap = (domains.len() * 2).next_power_of_two().max(4);
        let mask = (cap - 1) as u32;
        let mut slots = vec![
            Span {
                off: EMPTY_SLOT,
                len: 0
            };
            cap
        ];
        for span in spans {
            let mut at = (fx_hash(span.of(&arena).as_bytes()) & u64::from(mask)) as usize;
            while slots[at].off != EMPTY_SLOT {
                at = (at + 1) & mask as usize;
            }
            slots[at] = span;
        }
        DomainSet {
            arena,
            mask,
            slots,
            len: domains.len() as u32,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len as usize
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exact membership probe.
    #[inline]
    pub(crate) fn contains(&self, key: &str) -> bool {
        if self.slots.is_empty() {
            return false;
        }
        let mut at = (fx_hash(key.as_bytes()) & u64::from(self.mask)) as usize;
        loop {
            let slot = self.slots[at];
            if slot.off == EMPTY_SLOT {
                return false;
            }
            if slot.of(&self.arena) == key {
                return true;
            }
            at = (at + 1) & self.mask as usize;
        }
    }

    /// Whether `host` or any dot-boundary suffix of it is in the set —
    /// hosts-list semantics (a listed domain blocks its subdomains).
    #[inline]
    pub(crate) fn blocks_host(&self, host: &str) -> bool {
        !self.is_empty() && host_suffixes(host).any(|suffix| self.contains(suffix))
    }
}

/// The host itself plus every suffix starting after a dot:
/// `a.b.de` → `a.b.de`, `b.de`, `de`.
fn host_suffixes(host: &str) -> impl Iterator<Item = &str> {
    std::iter::successors(Some(host), |h| h.find('.').map(|i| &h[i + 1..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_suffixes_walk_label_boundaries() {
        let got: Vec<&str> = host_suffixes("a.b.c.de").collect();
        assert_eq!(got, ["a.b.c.de", "b.c.de", "c.de", "de"]);
        let got: Vec<&str> = host_suffixes("de").collect();
        assert_eq!(got, ["de"]);
    }

    #[test]
    fn stats_count_probes_candidates_and_distances() {
        use crate::matcher::{FilterList, RequestContext};
        use crate::rule::ResourceKind;
        use hbbtv_net::Url;

        let list = FilterList::parse_adblock(
            "test",
            "||ads.example.de^\n||tracker.de^\n/telemetry/collect",
        );
        let ctx = RequestContext {
            third_party: true,
            kind: ResourceKind::Other,
        };
        let hit: Url = "http://pixel.ads.example.de/1x1.gif".parse().unwrap();
        let telem: Url = "http://static.content.de/telemetry/collect?x=1"
            .parse()
            .unwrap();

        crate::stats::reset();
        crate::stats::enable();
        assert!(list.matches(&hit, ctx));
        assert!(list.matches(&telem, ctx));
        crate::stats::disable();
        let stats = crate::stats::snapshot();

        // Other tests may race the global cells between enable and
        // disable, so assert lower bounds only.
        assert!(stats.queries >= 2, "both matches queried the index");
        assert!(stats.hits >= 2);
        assert!(
            stats.bucket_probes >= 1,
            "the hit URL probed its host-suffix bucket"
        );
        assert!(
            stats.residual_walks >= 2,
            "both queries walked the residual automaton"
        );
        assert!(
            stats.residual_checks >= 1,
            "the telemetry URL surfaced the residual rule as a candidate"
        );
        assert!(stats.first_match_distance.count >= 1);
        assert!(stats.rules_per_query() > 0.0);

        // Counting off again: the cells stay frozen.
        let before = crate::stats::snapshot().queries;
        let _ = list.matches(&hit, ctx);
        assert_eq!(crate::stats::snapshot().queries, before);
    }

    #[test]
    fn never_rules_stay_index_aligned() {
        let rules: Vec<Rule> = ["||/path-only", "||a*b.de^", "||real.de^"]
            .iter()
            .filter_map(|l| crate::rule::parse_adblock_line(l))
            .collect();
        assert_eq!(rules.len(), 3);
        let index = RuleIndex::build(&rules);
        assert_eq!(index.matchers.len(), 3);
        assert_eq!(index.matchers[0].tag, TAG_NEVER);
        assert_eq!(index.matchers[1].tag, TAG_NEVER);
        assert_eq!(index.matchers[2].tag, TAG_DOMAIN);
        // No kind-constrained rule -> one shared partition, one domain.
        assert_eq!(index.partitions.len(), 1);
        assert_eq!(index.of_kind, [0, 0, 0, 0]);
        let part = &index.partitions[0];
        assert_eq!(part.ids, vec![2]);
        assert!(index.bucket_ids(part, "real.de").is_some());
        assert!(index.bucket_ids(part, "fake.de").is_none());
        assert_eq!(part.automaton, NO_AUTOMATON);
        assert!(part.always.is_empty());
    }

    #[test]
    fn kind_partitions_separate_constrained_rules() {
        let rules: Vec<Rule> = ["||neutral.de^", "||pix.de^$image", "/lib$script", "/any"]
            .iter()
            .filter_map(|l| crate::rule::parse_adblock_line(l))
            .collect();
        let index = RuleIndex::build(&rules);
        // Document/Other share a partition; Image and Script differ.
        let doc = index.of_kind[kind_slot(ResourceKind::Document)];
        let other = index.of_kind[kind_slot(ResourceKind::Other)];
        let image = index.of_kind[kind_slot(ResourceKind::Image)];
        let script = index.of_kind[kind_slot(ResourceKind::Script)];
        assert_eq!(doc, other);
        assert_ne!(doc, image);
        assert_ne!(doc, script);
        assert_ne!(image, script);
        // The image partition buckets ["neutral.de", "pix.de"]; the
        // document partition only the neutral domain.
        let img_part = &index.partitions[image as usize];
        assert!(index.bucket_ids(img_part, "pix.de").is_some());
        let doc_part = &index.partitions[doc as usize];
        assert!(index.bucket_ids(doc_part, "pix.de").is_none());
        assert!(index.bucket_ids(doc_part, "neutral.de").is_some());
        // The script partition's residual automaton covers both
        // residual rules; the document partition's only "/any".
        let script_part = &index.partitions[script as usize];
        assert_ne!(script_part.automaton, NO_AUTOMATON);
        assert_ne!(doc_part.automaton, script_part.automaton);
    }

    #[test]
    fn residual_automaton_finds_only_real_candidates() {
        use crate::matcher::{FilterList, RequestContext};
        use crate::rule::ResourceKind;
        use hbbtv_net::Url;
        let lines: Vec<String> = (0..200).map(|i| format!("/frag{i}/")).collect();
        let list = FilterList::parse_adblock("t", &lines.join("\n"));
        let ctx = RequestContext {
            third_party: true,
            kind: ResourceKind::Other,
        };
        let hit: Url = "http://x.de/frag123/pixel".parse().unwrap();
        let miss: Url = "http://x.de/clean/path".parse().unwrap();
        assert!(list.matches(&hit, ctx));
        assert!(!list.matches(&miss, ctx));
        match list.matching_rule(&hit, ctx) {
            crate::matcher::MatchOutcome::Blocked(r) => assert_eq!(r.source, "/frag123/"),
            other => panic!("expected block, got {other:?}"),
        }
    }

    #[test]
    fn wildcard_only_rules_live_on_the_always_list() {
        let rules: Vec<Rule> = ["*", "/x"]
            .iter()
            .filter_map(|l| crate::rule::parse_adblock_line(l))
            .collect();
        assert_eq!(rules.len(), 2);
        let index = RuleIndex::build(&rules);
        assert_eq!(index.partitions[0].always, vec![0]);
    }

    #[test]
    fn domain_set_probes_and_suffix_walks() {
        let mut domains: Vec<String> = ["tracker.de", "ads.example.com"].map(String::from).to_vec();
        domains.sort();
        let set = DomainSet::build(&domains);
        assert_eq!(set.len(), 2);
        assert!(set.contains("tracker.de"));
        assert!(!set.contains("nottracker.de"));
        assert!(set.blocks_host("a.b.tracker.de"));
        assert!(set.blocks_host("ads.example.com"));
        assert!(!set.blocks_host("example.com"));
        assert!(!DomainSet::default().blocks_host("tracker.de"));
    }
}
