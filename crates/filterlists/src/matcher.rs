//! Filter-list matching over captured URLs.

use crate::engine::{DomainSet, RuleIndex, Span};
use crate::rule::{after_host, parse_adblock_line, ResourceKind, Rule};
use hbbtv_net::Url;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Per-request context the `$third-party` and `$image`/`$script` options
/// need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestContext {
    /// Whether the request goes to a different eTLD+1 than the page that
    /// issued it.
    pub third_party: bool,
    /// The resource type being fetched.
    pub kind: ResourceKind,
}

impl RequestContext {
    /// A third-party image request — the most common tracking shape.
    pub fn third_party_image() -> Self {
        RequestContext {
            third_party: true,
            kind: ResourceKind::Image,
        }
    }
}

/// A borrowed view of one serialized URL: everything the match engine
/// reads, with the post-host slice precomputed, so a match call does no
/// allocation at all. Serialize the URL once per exchange, build the
/// view, and probe as many lists as needed.
///
/// `host` must be the URL's actual hostname (as a parsed
/// [`Url`](hbbtv_net::Url) guarantees); the engine's domain buckets key
/// on host labels and assume hosts contain no `*`.
///
/// # Examples
///
/// ```
/// use hbbtv_filterlists::{bundled, RequestContext, UrlView};
///
/// let text = "http://an.xiti.com/hit?x=1";
/// let view = UrlView::new(text, "an.xiti.com", "xiti.com");
/// assert!(bundled::easyprivacy_ref().matches_view(&view, RequestContext::third_party_image()));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct UrlView<'a> {
    /// The full absolute URL text.
    pub text: &'a str,
    /// The URL's hostname.
    pub host: &'a str,
    /// The host's eTLD+1 — not consulted by the matcher itself, but
    /// carried so per-exchange classification can share one view.
    pub etld1: &'a str,
    /// `text` after the host: `[:port]/path[?query]`.
    after_host: &'a str,
}

impl<'a> UrlView<'a> {
    /// Builds a view over an already-serialized URL.
    pub fn new(text: &'a str, host: &'a str, etld1: &'a str) -> Self {
        UrlView {
            text,
            host,
            etld1,
            after_host: after_host(text, host),
        }
    }

    /// Serializes `url` into `buf` and views it. The buffer is cleared
    /// first, so scan loops can reuse one allocation across exchanges.
    pub fn of_url(url: &'a Url, buf: &'a mut String) -> Self {
        buf.clear();
        url.write_into(buf);
        UrlView::new(buf, url.host(), url.etld1().as_str())
    }

    pub(crate) fn after_host(&self) -> &'a str {
        self.after_host
    }
}

/// Aggregate statistics from matching a URL set against a list.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ListStats {
    /// URLs checked.
    pub total: usize,
    /// URLs flagged by the list.
    pub flagged: usize,
}

impl ListStats {
    /// Flagged share in percent (0 when `total` is 0).
    pub fn share_percent(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.flagged as f64 / self.total as f64 * 100.0
        }
    }
}

/// Where a list's parsed [`Rule`]s live.
///
/// A text-parsed list owns them outright. A prebuilt list
/// ([`FilterList::from_prebuilt`]) matches entirely through its decoded
/// [`RuleIndex`] and only stores the original rule *source lines*; the
/// `Rule` vector is re-parsed lazily, once, the first time something
/// actually needs a rule value — [`FilterList::matching_rule`] reporting
/// which rule fired, or the linear reference scan. Parsing is
/// deterministic, so the lazy vector is identical to what the producer
/// indexed.
#[derive(Debug, Clone)]
pub(crate) enum RuleStore {
    /// Rules parsed from list text at construction.
    Parsed {
        rules: Vec<Rule>,
        exceptions: Vec<Rule>,
    },
    /// Rules deferred behind their source lines (prebuilt image).
    Prebuilt {
        /// Concatenated source lines of all rules, then all exceptions.
        src: Box<str>,
        rule_lines: Vec<Span>,
        exc_lines: Vec<Span>,
        cache: OnceLock<Box<(Vec<Rule>, Vec<Rule>)>>,
    },
}

impl RuleStore {
    fn force(&self) -> (&[Rule], &[Rule]) {
        match self {
            RuleStore::Parsed { rules, exceptions } => (rules, exceptions),
            RuleStore::Prebuilt {
                src,
                rule_lines,
                exc_lines,
                cache,
            } => {
                let parsed = cache.get_or_init(|| {
                    let parse = |lines: &[Span]| {
                        lines
                            .iter()
                            .map(|s| {
                                parse_adblock_line(s.of(src))
                                    .expect("prebuilt store holds only lines that parsed before")
                            })
                            .collect()
                    };
                    Box::new((parse(rule_lines), parse(exc_lines)))
                });
                (&parsed.0, &parsed.1)
            }
        }
    }

    fn rules(&self) -> &[Rule] {
        self.force().0
    }

    fn exceptions(&self) -> &[Rule] {
        self.force().1
    }

    /// Rule count without forcing a prebuilt store.
    fn rule_count(&self) -> usize {
        match self {
            RuleStore::Parsed { rules, .. } => rules.len(),
            RuleStore::Prebuilt { rule_lines, .. } => rule_lines.len(),
        }
    }

    /// Source lines (rules, exceptions) — what the prebuilt encoder
    /// stores. No forcing needed in either representation.
    pub(crate) fn source_lines(&self) -> (Vec<&str>, Vec<&str>) {
        match self {
            RuleStore::Parsed { rules, exceptions } => (
                rules.iter().map(|r| r.source.as_str()).collect(),
                exceptions.iter().map(|r| r.source.as_str()).collect(),
            ),
            RuleStore::Prebuilt {
                src,
                rule_lines,
                exc_lines,
                ..
            } => (
                rule_lines.iter().map(|s| s.of(src)).collect(),
                exc_lines.iter().map(|s| s.of(src)).collect(),
            ),
        }
    }
}

/// A named filter list in either Adblock or hosts syntax.
///
/// # Examples
///
/// ```
/// use hbbtv_filterlists::{FilterList, RequestContext};
/// use hbbtv_net::Url;
///
/// let list = FilterList::parse_hosts_list("pihole-mini", "0.0.0.0 an.xiti.com");
/// let url: Url = "http://an.xiti.com/hit?x=1".parse()?;
/// assert!(list.matches(&url, RequestContext::third_party_image()));
/// # Ok::<(), hbbtv_net::ParseUrlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FilterList {
    pub(crate) name: String,
    pub(crate) store: RuleStore,
    pub(crate) hosts: DomainSet,
    pub(crate) index: RuleIndex,
    pub(crate) exception_index: RuleIndex,
}

impl FilterList {
    /// Parses an Adblock-syntax list and builds its match index.
    pub fn parse_adblock(name: &str, text: &str) -> Self {
        let mut rules = Vec::new();
        let mut exceptions = Vec::new();
        for line in text.lines() {
            if let Some(rule) = parse_adblock_line(line) {
                if rule.exception {
                    exceptions.push(rule);
                } else {
                    rules.push(rule);
                }
            }
        }
        let index = RuleIndex::build(&rules);
        let exception_index = RuleIndex::build(&exceptions);
        crate::stats::note_engine(
            index.automaton_states() + exception_index.automaton_states(),
            false,
        );
        FilterList {
            name: name.to_string(),
            store: RuleStore::Parsed { rules, exceptions },
            hosts: DomainSet::default(),
            index,
            exception_index,
        }
    }

    /// Parses a hosts-syntax (domain) list.
    pub fn parse_hosts_list(name: &str, text: &str) -> Self {
        let mut domains: Vec<String> = crate::hosts::parse_hosts(text).into_iter().collect();
        domains.sort();
        crate::stats::note_engine(0, false);
        FilterList {
            name: name.to_string(),
            store: RuleStore::Parsed {
                rules: Vec::new(),
                exceptions: Vec::new(),
            },
            hosts: DomainSet::build(&domains),
            index: RuleIndex::default(),
            exception_index: RuleIndex::default(),
        }
    }

    /// The list's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of active (non-exception) rules plus blocked domains.
    pub fn len(&self) -> usize {
        self.store.rule_count() + self.hosts.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The parsed block rules (lazily materialized for prebuilt lists).
    pub(crate) fn rules(&self) -> &[Rule] {
        self.store.rules()
    }

    /// The parsed exception rules (lazily materialized for prebuilt
    /// lists).
    pub(crate) fn exceptions(&self) -> &[Rule] {
        self.store.exceptions()
    }

    /// Whether the list flags this request.
    ///
    /// Exception (`@@`) rules override block rules, as in Adblock Plus.
    /// Serializes the URL once; callers probing several lists per
    /// exchange should build a [`UrlView`] themselves and use
    /// [`FilterList::matches_view`].
    pub fn matches(&self, url: &Url, ctx: RequestContext) -> bool {
        let text = url.to_text();
        let view = UrlView::new(&text, url.host(), url.etld1().as_str());
        self.matches_view(&view, ctx)
    }

    /// Detailed match outcome, exposing which rule fired.
    pub fn matching_rule(&self, url: &Url, ctx: RequestContext) -> MatchOutcome<'_> {
        let text = url.to_text();
        let view = UrlView::new(&text, url.host(), url.etld1().as_str());
        self.matching_rule_view(&view, ctx)
    }

    /// [`FilterList::matches`] over a prebuilt view — the zero-alloc
    /// steady-state path. Runs entirely on the compiled index: no
    /// `Rule` value is touched, which is what lets a prebuilt list
    /// serve this path without ever re-parsing its rules.
    pub fn matches_view(&self, view: &UrlView<'_>, ctx: RequestContext) -> bool {
        if self.hosts.blocks_host(view.host) {
            return true;
        }
        self.index.any_match(view, ctx) && !self.exception_index.any_match(view, ctx)
    }

    /// [`FilterList::matching_rule`] over a prebuilt view. The indexed
    /// lookup reports the same first-in-list-order rule as the linear
    /// scan (see [`FilterList::matching_rule_linear`]).
    pub fn matching_rule_view(&self, view: &UrlView<'_>, ctx: RequestContext) -> MatchOutcome<'_> {
        if self.hosts.blocks_host(view.host) {
            return MatchOutcome::HostBlocked;
        }
        match self.index.first_match(view, ctx) {
            None => MatchOutcome::NoMatch,
            Some(i) => {
                if self.exception_index.any_match(view, ctx) {
                    MatchOutcome::Allowed
                } else {
                    MatchOutcome::Blocked(&self.rules()[i as usize])
                }
            }
        }
    }

    /// Reference implementation: the naive O(rules) scan the indexed
    /// engine replaced, kept verbatim for differential tests and the
    /// `kernels` benchmark baseline.
    pub fn matches_linear(&self, url: &Url, ctx: RequestContext) -> bool {
        match self.matching_rule_linear(url, ctx) {
            MatchOutcome::Blocked(_) | MatchOutcome::HostBlocked => true,
            MatchOutcome::Allowed | MatchOutcome::NoMatch => false,
        }
    }

    /// Reference implementation of [`FilterList::matching_rule`]: a
    /// linear first-match scan over the rule vector.
    pub fn matching_rule_linear(&self, url: &Url, ctx: RequestContext) -> MatchOutcome<'_> {
        if self.hosts.blocks_host(url.host()) {
            return MatchOutcome::HostBlocked;
        }
        let text = url.to_string();
        let host = url.host();
        let hit = self
            .rules()
            .iter()
            .find(|r| rule_applies(r, &text, host, ctx));
        match hit {
            None => MatchOutcome::NoMatch,
            Some(rule) => {
                let excepted = self
                    .exceptions()
                    .iter()
                    .any(|e| rule_applies(e, &text, host, ctx));
                if excepted {
                    MatchOutcome::Allowed
                } else {
                    MatchOutcome::Blocked(rule)
                }
            }
        }
    }
}

/// The result of matching one URL against a list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchOutcome<'a> {
    /// A block rule fired (and no exception overrode it).
    Blocked(&'a Rule),
    /// The host appears in the hosts/domain table.
    HostBlocked,
    /// A block rule fired but an `@@` exception allowed the request.
    Allowed,
    /// Nothing matched.
    NoMatch,
}

/// The `$third-party`/`$image`/`$script` option gate, shared by the
/// linear scan and the indexed engine.
pub(crate) fn options_allow(rule: &Rule, ctx: RequestContext) -> bool {
    if rule.options.third_party_only && !ctx.third_party {
        return false;
    }
    if rule.options.first_party_only && ctx.third_party {
        return false;
    }
    if rule.options.image_only && ctx.kind != ResourceKind::Image {
        return false;
    }
    if rule.options.script_only && ctx.kind != ResourceKind::Script {
        return false;
    }
    true
}

fn rule_applies(rule: &Rule, url_text: &str, host: &str, ctx: RequestContext) -> bool {
    options_allow(rule, ctx) && rule.pattern_matches(url_text, host)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        s.parse().unwrap()
    }

    /// The study harness shares one borrowed list across all run worker
    /// threads; a non-`Sync` field sneaking in must fail compilation.
    #[test]
    fn filter_lists_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FilterList>();
    }

    fn any_ctx() -> RequestContext {
        RequestContext {
            third_party: true,
            kind: ResourceKind::Other,
        }
    }

    #[test]
    fn adblock_list_blocks_and_excepts() {
        let list = FilterList::parse_adblock(
            "t",
            "||ads.example.de^\n@@||ads.example.de/ok^\n! comment\n",
        );
        assert!(list.matches(&url("http://ads.example.de/x"), any_ctx()));
        assert!(!list.matches(&url("http://ads.example.de/ok"), any_ctx()));
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn third_party_option_respected() {
        let list = FilterList::parse_adblock("t", "||metrics.de^$third-party\n");
        let u = url("http://metrics.de/t.gif");
        assert!(list.matches(
            &u,
            RequestContext {
                third_party: true,
                kind: ResourceKind::Image
            }
        ));
        assert!(!list.matches(
            &u,
            RequestContext {
                third_party: false,
                kind: ResourceKind::Image
            }
        ));
    }

    #[test]
    fn resource_kind_options_respected() {
        let list = FilterList::parse_adblock("t", "/pixel^$image\n/lib.js$script\n");
        assert!(list.matches(
            &url("http://x.de/pixel"),
            RequestContext {
                third_party: true,
                kind: ResourceKind::Image
            }
        ));
        assert!(!list.matches(
            &url("http://x.de/pixel"),
            RequestContext {
                third_party: true,
                kind: ResourceKind::Script
            }
        ));
        assert!(list.matches(
            &url("http://x.de/lib.js"),
            RequestContext {
                third_party: true,
                kind: ResourceKind::Script
            }
        ));
    }

    #[test]
    fn hosts_list_blocks_subdomains() {
        let list = FilterList::parse_hosts_list("pihole", "0.0.0.0 tracker.tv\n");
        assert!(list.matches(&url("http://cdn.tracker.tv/x"), any_ctx()));
        assert!(!list.matches(&url("http://other.tv/x"), any_ctx()));
        assert_eq!(list.name(), "pihole");
    }

    #[test]
    fn matching_rule_reports_source() {
        let list = FilterList::parse_adblock("t", "||flagged.de^\n");
        match list.matching_rule(&url("http://flagged.de/"), any_ctx()) {
            MatchOutcome::Blocked(r) => assert_eq!(r.source, "||flagged.de^"),
            other => panic!("expected block, got {other:?}"),
        }
    }

    #[test]
    fn list_stats_share() {
        let s = ListStats {
            total: 340_643,
            flagged: 2_512,
        };
        assert!((s.share_percent() - 0.737).abs() < 0.01);
        assert_eq!(ListStats::default().share_percent(), 0.0);
    }

    #[test]
    fn empty_list_matches_nothing() {
        let list = FilterList::parse_adblock("empty", "! only comments\n");
        assert!(list.is_empty());
        assert!(!list.matches(&url("http://anything.de/"), any_ctx()));
    }

    /// The indexed engine must report exactly what the linear scan
    /// reports — same outcome variant *and* same firing rule — for all
    /// four [`MatchOutcome`] shapes.
    #[test]
    fn indexed_outcomes_mirror_linear_scan() {
        let list = FilterList::parse_adblock(
            "t",
            // Two rules that could both fire on flagged.de URLs: list
            // order decides which one is reported.
            "||flagged.de^\n/banner\n@@||flagged.de/ok^\n",
        );
        let hosts = FilterList::parse_hosts_list("h", "0.0.0.0 pinned.tv\n");
        let cases = [
            // Blocked by the first rule in list order, not the substring
            // rule that also matches.
            url("http://flagged.de/banner"),
            // Blocked by the residual substring rule only.
            url("http://clean.de/banner.gif"),
            // Exception-allowed.
            url("http://flagged.de/ok"),
            // No match at all.
            url("http://clean.de/page"),
        ];
        for u in &cases {
            assert_eq!(
                list.matching_rule(u, any_ctx()),
                list.matching_rule_linear(u, any_ctx()),
                "outcome diverged for {u}"
            );
            assert_eq!(
                list.matches(u, any_ctx()),
                list.matches_linear(u, any_ctx())
            );
        }
        match list.matching_rule(&url("http://flagged.de/banner"), any_ctx()) {
            MatchOutcome::Blocked(r) => assert_eq!(r.source, "||flagged.de^"),
            other => panic!("expected first-rule block, got {other:?}"),
        }
        assert_eq!(
            list.matching_rule(&url("http://flagged.de/ok"), any_ctx()),
            MatchOutcome::Allowed
        );
        // Host-table blocks go through the same fused path.
        let u = url("http://cdn.pinned.tv/x");
        assert_eq!(
            hosts.matching_rule(&u, any_ctx()),
            MatchOutcome::HostBlocked
        );
        assert_eq!(
            hosts.matching_rule(&u, any_ctx()),
            hosts.matching_rule_linear(&u, any_ctx())
        );
    }
}
