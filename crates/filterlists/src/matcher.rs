//! Filter-list matching over captured URLs.

use crate::hosts::{host_blocked, parse_hosts};
use crate::rule::{parse_adblock_line, ResourceKind, Rule};
use hbbtv_net::Url;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Per-request context the `$third-party` and `$image`/`$script` options
/// need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestContext {
    /// Whether the request goes to a different eTLD+1 than the page that
    /// issued it.
    pub third_party: bool,
    /// The resource type being fetched.
    pub kind: ResourceKind,
}

impl RequestContext {
    /// A third-party image request — the most common tracking shape.
    pub fn third_party_image() -> Self {
        RequestContext {
            third_party: true,
            kind: ResourceKind::Image,
        }
    }
}

/// Aggregate statistics from matching a URL set against a list.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ListStats {
    /// URLs checked.
    pub total: usize,
    /// URLs flagged by the list.
    pub flagged: usize,
}

impl ListStats {
    /// Flagged share in percent (0 when `total` is 0).
    pub fn share_percent(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.flagged as f64 / self.total as f64 * 100.0
        }
    }
}

/// A named filter list in either Adblock or hosts syntax.
///
/// # Examples
///
/// ```
/// use hbbtv_filterlists::{FilterList, RequestContext};
/// use hbbtv_net::Url;
///
/// let list = FilterList::parse_hosts_list("pihole-mini", "0.0.0.0 an.xiti.com");
/// let url: Url = "http://an.xiti.com/hit?x=1".parse()?;
/// assert!(list.matches(&url, RequestContext::third_party_image()));
/// # Ok::<(), hbbtv_net::ParseUrlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FilterList {
    name: String,
    rules: Vec<Rule>,
    exceptions: Vec<Rule>,
    hosts: HashSet<String>,
}

impl FilterList {
    /// Parses an Adblock-syntax list.
    pub fn parse_adblock(name: &str, text: &str) -> Self {
        let mut rules = Vec::new();
        let mut exceptions = Vec::new();
        for line in text.lines() {
            if let Some(rule) = parse_adblock_line(line) {
                if rule.exception {
                    exceptions.push(rule);
                } else {
                    rules.push(rule);
                }
            }
        }
        FilterList {
            name: name.to_string(),
            rules,
            exceptions,
            hosts: HashSet::new(),
        }
    }

    /// Parses a hosts-syntax (domain) list.
    pub fn parse_hosts_list(name: &str, text: &str) -> Self {
        FilterList {
            name: name.to_string(),
            rules: Vec::new(),
            exceptions: Vec::new(),
            hosts: parse_hosts(text),
        }
    }

    /// The list's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of active (non-exception) rules plus blocked domains.
    pub fn len(&self) -> usize {
        self.rules.len() + self.hosts.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the list flags this request.
    ///
    /// Exception (`@@`) rules override block rules, as in Adblock Plus.
    pub fn matches(&self, url: &Url, ctx: RequestContext) -> bool {
        match self.matching_rule(url, ctx) {
            MatchOutcome::Blocked(_) | MatchOutcome::HostBlocked => true,
            MatchOutcome::Allowed | MatchOutcome::NoMatch => false,
        }
    }

    /// Detailed match outcome, exposing which rule fired.
    pub fn matching_rule(&self, url: &Url, ctx: RequestContext) -> MatchOutcome<'_> {
        if host_blocked(&self.hosts, url.host()) {
            return MatchOutcome::HostBlocked;
        }
        let text = url.to_string();
        let hit = self.rules.iter().find(|r| rule_applies(r, &text, url, ctx));
        match hit {
            None => MatchOutcome::NoMatch,
            Some(rule) => {
                let excepted = self
                    .exceptions
                    .iter()
                    .any(|e| rule_applies(e, &text, url, ctx));
                if excepted {
                    MatchOutcome::Allowed
                } else {
                    MatchOutcome::Blocked(rule)
                }
            }
        }
    }
}

/// The result of matching one URL against a list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchOutcome<'a> {
    /// A block rule fired (and no exception overrode it).
    Blocked(&'a Rule),
    /// The host appears in the hosts/domain table.
    HostBlocked,
    /// A block rule fired but an `@@` exception allowed the request.
    Allowed,
    /// Nothing matched.
    NoMatch,
}

fn rule_applies(rule: &Rule, url_text: &str, url: &Url, ctx: RequestContext) -> bool {
    if rule.options.third_party_only && !ctx.third_party {
        return false;
    }
    if rule.options.first_party_only && ctx.third_party {
        return false;
    }
    if rule.options.image_only && ctx.kind != ResourceKind::Image {
        return false;
    }
    if rule.options.script_only && ctx.kind != ResourceKind::Script {
        return false;
    }
    rule.pattern_matches(url_text, url.host())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        s.parse().unwrap()
    }

    /// The study harness shares one borrowed list across all run worker
    /// threads; a non-`Sync` field sneaking in must fail compilation.
    #[test]
    fn filter_lists_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FilterList>();
    }

    fn any_ctx() -> RequestContext {
        RequestContext {
            third_party: true,
            kind: ResourceKind::Other,
        }
    }

    #[test]
    fn adblock_list_blocks_and_excepts() {
        let list = FilterList::parse_adblock(
            "t",
            "||ads.example.de^\n@@||ads.example.de/ok^\n! comment\n",
        );
        assert!(list.matches(&url("http://ads.example.de/x"), any_ctx()));
        assert!(!list.matches(&url("http://ads.example.de/ok"), any_ctx()));
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn third_party_option_respected() {
        let list = FilterList::parse_adblock("t", "||metrics.de^$third-party\n");
        let u = url("http://metrics.de/t.gif");
        assert!(list.matches(
            &u,
            RequestContext {
                third_party: true,
                kind: ResourceKind::Image
            }
        ));
        assert!(!list.matches(
            &u,
            RequestContext {
                third_party: false,
                kind: ResourceKind::Image
            }
        ));
    }

    #[test]
    fn resource_kind_options_respected() {
        let list = FilterList::parse_adblock("t", "/pixel^$image\n/lib.js$script\n");
        assert!(list.matches(
            &url("http://x.de/pixel"),
            RequestContext {
                third_party: true,
                kind: ResourceKind::Image
            }
        ));
        assert!(!list.matches(
            &url("http://x.de/pixel"),
            RequestContext {
                third_party: true,
                kind: ResourceKind::Script
            }
        ));
        assert!(list.matches(
            &url("http://x.de/lib.js"),
            RequestContext {
                third_party: true,
                kind: ResourceKind::Script
            }
        ));
    }

    #[test]
    fn hosts_list_blocks_subdomains() {
        let list = FilterList::parse_hosts_list("pihole", "0.0.0.0 tracker.tv\n");
        assert!(list.matches(&url("http://cdn.tracker.tv/x"), any_ctx()));
        assert!(!list.matches(&url("http://other.tv/x"), any_ctx()));
        assert_eq!(list.name(), "pihole");
    }

    #[test]
    fn matching_rule_reports_source() {
        let list = FilterList::parse_adblock("t", "||flagged.de^\n");
        match list.matching_rule(&url("http://flagged.de/"), any_ctx()) {
            MatchOutcome::Blocked(r) => assert_eq!(r.source, "||flagged.de^"),
            other => panic!("expected block, got {other:?}"),
        }
    }

    #[test]
    fn list_stats_share() {
        let s = ListStats {
            total: 340_643,
            flagged: 2_512,
        };
        assert!((s.share_percent() - 0.737).abs() < 0.01);
        assert_eq!(ListStats::default().share_percent(), 0.0);
    }

    #[test]
    fn empty_list_matches_nothing() {
        let list = FilterList::parse_adblock("empty", "! only comments\n");
        assert!(list.is_empty());
        assert!(!list.matches(&url("http://anything.de/"), any_ctx()));
    }
}
