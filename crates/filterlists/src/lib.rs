//! Filter-list parsing and matching (EasyList, EasyPrivacy, Pi-hole,
//! Perflyst, Kamran).
//!
//! §V-D of the paper compares every observed URL against popular filter
//! lists and finds that they miss most HbbTV trackers: only 0.5% of URLs
//! were flagged by EasyList, 0.15% by EasyPrivacy, and 1.17% by Pi-hole;
//! smart-TV-specific lists blocked even fewer requests.
//!
//! This crate implements the two rule syntaxes involved:
//!
//! * **Adblock Plus filter syntax** (EasyList/EasyPrivacy) — the subset
//!   exercised by network-request matching: `||domain^` anchors, plain
//!   substring patterns, `|` start anchors, `^` separators, `*` wildcards,
//!   `@@` exceptions, and the `$third-party`/`$image`/`$script` options.
//! * **Hosts/domain lists** (Pi-hole, Perflyst, Kamran) — `0.0.0.0 domain`
//!   or bare-domain lines matching a host and its subdomains.
//!
//! Bundled synthetic snapshots live in [`bundled`]; their *coverage* of
//! the simulated tracker roster mirrors the real lists' coverage of the
//! real HbbTV ecosystem (dense on web trackers, sparse on HbbTV-only
//! trackers such as `tvping.com`).
//!
//! # Examples
//!
//! ```
//! use hbbtv_filterlists::{FilterList, RequestContext, ResourceKind};
//! use hbbtv_net::Url;
//!
//! let list = FilterList::parse_adblock("easylist-mini", "||doubleclick.net^\n! comment");
//! let url: Url = "http://ad.doubleclick.net/pixel".parse()?;
//! let ctx = RequestContext { third_party: true, kind: ResourceKind::Image };
//! assert!(list.matches(&url, ctx));
//! # Ok::<(), hbbtv_net::ParseUrlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bundled;
mod engine;
mod hosts;
mod matcher;
mod prebuilt;
mod rule;
pub mod stats;

pub use hosts::parse_hosts;
pub use matcher::{FilterList, ListStats, MatchOutcome, RequestContext, UrlView};
pub use rule::{parse_adblock_line, Anchor, ResourceKind, Rule, RuleOptions};
pub use stats::MatcherStats;
