//! Hosts-file and bare-domain list parsing (Pi-hole style).

use std::collections::HashSet;

/// Parses a hosts-style block list into the set of blocked domains.
///
/// Accepts both classic hosts syntax (`0.0.0.0 tracker.example` /
/// `127.0.0.1 tracker.example`) and bare-domain-per-line lists, with `#`
/// comments. Entries for `localhost` and the bare redirect addresses are
/// ignored, as Pi-hole does.
///
/// # Examples
///
/// ```
/// use hbbtv_filterlists::parse_hosts;
/// let domains = parse_hosts("0.0.0.0 ads.example.de\n# comment\ntracker.tv\n");
/// assert!(domains.contains("ads.example.de"));
/// assert!(domains.contains("tracker.tv"));
/// assert_eq!(domains.len(), 2);
/// ```
pub fn parse_hosts(text: &str) -> HashSet<String> {
    let mut out = HashSet::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let first = match fields.next() {
            Some(f) => f,
            None => continue,
        };
        let domain = if first == "0.0.0.0" || first == "127.0.0.1" || first == "::1" {
            match fields.next() {
                Some(d) => d,
                None => continue,
            }
        } else {
            first
        };
        let domain = domain.to_ascii_lowercase();
        if domain == "localhost" || domain == "0.0.0.0" || domain == "localhost.localdomain" {
            continue;
        }
        out.insert(domain);
    }
    out
}

/// Whether `host` is blocked by a parsed domain set: an exact match or a
/// subdomain of a listed domain. The match path itself runs on the
/// engine's arena-backed [`DomainSet`](crate::engine::DomainSet); this
/// set-based twin stays as the readable reference the tests compare
/// semantics against.
#[cfg(test)]
pub(crate) fn host_blocked<S: std::hash::BuildHasher>(
    domains: &HashSet<String, S>,
    host: &str,
) -> bool {
    if domains.is_empty() {
        return false;
    }
    if domains.contains(host) {
        return true;
    }
    // Walk up the label chain: a.b.c → b.c → c.
    let mut rest = host;
    while let Some(i) = rest.find('.') {
        rest = &rest[i + 1..];
        if domains.contains(rest) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_syntax() {
        let text = "\
# StevenBlack-style header
127.0.0.1 localhost
0.0.0.0 0.0.0.0
0.0.0.0 ad.doubleclick.net
0.0.0.0 metrics.example.de # inline comment
bare-domain.tv
";
        let d = parse_hosts(text);
        assert_eq!(d.len(), 3);
        assert!(d.contains("ad.doubleclick.net"));
        assert!(d.contains("metrics.example.de"));
        assert!(d.contains("bare-domain.tv"));
    }

    #[test]
    fn localhost_entries_ignored() {
        let d = parse_hosts("127.0.0.1 localhost\n::1 localhost\n");
        assert!(d.is_empty());
    }

    #[test]
    fn subdomain_blocking() {
        let d = parse_hosts("tracker.de\n");
        assert!(host_blocked(&d, "tracker.de"));
        assert!(host_blocked(&d, "a.tracker.de"));
        assert!(host_blocked(&d, "a.b.tracker.de"));
        assert!(!host_blocked(&d, "nottracker.de"));
        assert!(!host_blocked(&d, "tracker.de.evil.com"));
    }

    #[test]
    fn case_is_normalized() {
        let d = parse_hosts("0.0.0.0 MiXeD.Example.DE\n");
        assert!(host_blocked(&d, "mixed.example.de"));
    }
}
