//! The intercepting proxy: traffic capture and per-visit attribution.
//!
//! The study routed all TV traffic through mitmproxy on an analysis
//! machine. Since no channel validated certificates, *all* HTTP(S)
//! traffic could be decrypted and recorded. Two details of §IV-C matter
//! for correctness and are reproduced exactly:
//!
//! 1. **Visit attribution.** The remote-control script opens an explicit
//!    *visit* on every channel switch ([`Proxy::begin_visit`] returns a
//!    [`VisitHandle`] carrying the [`ChannelId`], session label, and the
//!    visit-local start time). Exchanges recorded through a handle are
//!    tagged with that visit — attribution is a property of *which visit
//!    recorded the exchange*, not of wall-clock arrival windows, which is
//!    what makes channel visits safe to run in parallel. The one
//!    timestamp rule kept from the physical setup is the visit-boundary
//!    referer correction: a request arriving within [`SWITCH_GRACE`] of
//!    a visit's start whose `Referer` points at a host seen only during
//!    the *immediately preceding* visit of the same session is
//!    re-attributed to that previous visit ("accounting for delays
//!    during switching").
//! 2. **The 15-minute window.** Only requests from a bounded window of a
//!    visit's watch time are attributed, bounding stale matches.
//!
//! The [`Proxy`] is cheaply cloneable; the TV runtime records through a
//! [`VisitHandle`] while the study harness reads through the proxy,
//! mirroring the separate capture and analysis processes of the physical
//! setup. The legacy switch-notification API
//! ([`Proxy::notify_channel_switch`] + [`Proxy::record`]) is kept as a
//! thin layer over visits: a switch notification opens a visit, and a
//! plain `record` targets the most recently opened visit of the current
//! session.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hbbtv_broadcast::ChannelId;
use hbbtv_net::{Duration, Request, Response, Timestamp};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::Arc;

/// Grace period after a visit opens in which a stale `Referer` moves a
/// request back to the immediately preceding visit of the same session.
const SWITCH_GRACE: Duration = Duration::from_secs(15);

/// Attribution horizon (§IV-C speaks of a 15-minute window; ours is
/// sized to cover the study's longest per-channel watch time of 1000 s
/// plus switching slack, so legitimate in-watch traffic stays
/// attributed — see EXPERIMENTS.md).
const ATTRIBUTION_WINDOW: Duration = Duration::from_secs(17 * 60);

/// Identifier of one channel visit within a measurement session.
///
/// Visit ids are assigned by [`Proxy::begin_visit`] in open order;
/// sharded harness runs seed each shard's counter via
/// [`Proxy::start_session_at`] so that merged capture logs carry the
/// canonical visit sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VisitId(pub u32);

/// One recorded request/response pair with its attribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapturedExchange {
    /// Label of the measurement session (e.g. `"Red"`).
    pub session: String,
    /// The visit this exchange is attributed to, if any. Set exactly
    /// when `channel` is set; the grace rule can move an exchange to the
    /// preceding visit, never anywhere else.
    pub visit: Option<VisitId>,
    /// The channel this exchange is attributed to, if any.
    pub channel: Option<ChannelId>,
    /// Name of the attributed channel (for reports).
    pub channel_name: Option<String>,
    /// The request as sent by the TV.
    pub request: Request,
    /// The response as delivered to the TV.
    pub response: Response,
}

impl CapturedExchange {
    /// Whether the exchange used TLS.
    pub fn is_https(&self) -> bool {
        self.request.url.is_https()
    }
}

#[derive(Debug)]
struct VisitState {
    id: VisitId,
    channel: ChannelId,
    name: String,
    session: String,
    opened: Timestamp,
    hosts: HashSet<String>,
}

#[derive(Debug, Default)]
struct ProxyState {
    session: String,
    /// Index into `visits` where the current session began; plain
    /// `record` calls and the grace rule never look behind it.
    session_start: usize,
    next_visit: u32,
    visits: Vec<VisitState>,
    log: Vec<CapturedExchange>,
    metrics: Option<ProxyMetrics>,
}

/// Telemetry counters a proxy shard increments as it records.
///
/// The study harness gives every per-visit shard the counters of that
/// visit's telemetry scope, so summing the per-visit
/// `exchanges` counters reconciles exactly with the merged capture log.
#[derive(Debug, Clone, Default)]
pub struct ProxyMetrics {
    /// One increment per recorded exchange.
    pub exchanges: hbbtv_obs::Counter,
    /// Approximate captured bytes (host + path + request body +
    /// response body) per exchange.
    pub bytes: hbbtv_obs::Counter,
}

/// The intercepting proxy.
///
/// # Examples
///
/// ```
/// use hbbtv_proxy::{Proxy, VisitId};
/// use hbbtv_broadcast::ChannelId;
/// use hbbtv_net::{Request, Response, Status, Timestamp};
///
/// let proxy = Proxy::new();
/// proxy.start_session("General");
/// let visit = proxy.begin_visit(ChannelId(7), "ZDF", Timestamp::MEASUREMENT_START);
/// let req = Request::get("http://hbbtv.zdf.de/app".parse()?)
///     .at(Timestamp::MEASUREMENT_START)
///     .build();
/// visit.record(req, Response::builder(Status::OK).build());
/// assert_eq!(proxy.captures().len(), 1);
/// assert_eq!(proxy.captures()[0].channel, Some(ChannelId(7)));
/// assert_eq!(proxy.captures()[0].visit, Some(VisitId(0)));
/// # Ok::<(), hbbtv_net::ParseUrlError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Proxy {
    state: Arc<Mutex<ProxyState>>,
}

/// A handle on one open channel visit.
///
/// The harness opens one per channel switch and hands it to the TV's
/// network backend; every exchange recorded through it is tagged with
/// this visit (subject to the window and grace rules). Handles are
/// cheaply cloneable and `Send + Sync`, so a visit can run on its own
/// worker thread against its own proxy shard.
#[derive(Debug, Clone)]
pub struct VisitHandle {
    proxy: Proxy,
    id: VisitId,
    channel: ChannelId,
}

impl VisitHandle {
    /// The visit's id.
    pub fn id(&self) -> VisitId {
        self.id
    }

    /// The channel being visited.
    pub fn channel(&self) -> ChannelId {
        self.channel
    }

    /// Records one exchange against this visit, applying the window and
    /// visit-boundary grace rules.
    pub fn record(&self, request: Request, response: Response) {
        let mut s = self.proxy.state.lock();
        let target = s.visits.iter().rposition(|v| v.id == self.id);
        record_at(&mut s, target, request, response);
    }

    /// The proxy this visit records into.
    pub fn proxy(&self) -> &Proxy {
        &self.proxy
    }
}

impl Proxy {
    /// Creates a proxy with an empty capture log.
    pub fn new() -> Self {
        Proxy::default()
    }

    /// Starts (or renames) the current measurement session; subsequent
    /// captures carry this label. Visits of earlier sessions are sealed:
    /// neither plain [`Proxy::record`] calls nor the grace rule reach
    /// back across a session boundary.
    pub fn start_session(&self, label: &str) {
        let mut s = self.state.lock();
        s.session = label.to_string();
        s.session_start = s.visits.len();
    }

    /// Like [`Proxy::start_session`], but also seeds the visit-id
    /// counter. Sharded harness runs give each per-channel proxy shard
    /// its canonical visit sequence number so merged logs are identical
    /// to a single sequential proxy's.
    pub fn start_session_at(&self, label: &str, first_visit: u32) {
        let mut s = self.state.lock();
        s.session = label.to_string();
        s.session_start = s.visits.len();
        s.next_visit = first_visit;
    }

    /// Attaches telemetry counters to this shard; every subsequently
    /// recorded exchange increments them. Purely observational — the
    /// capture log is byte-identical with or without metrics.
    pub fn set_metrics(&self, metrics: ProxyMetrics) {
        self.state.lock().metrics = Some(metrics);
    }

    /// Opens a visit of `channel` at `at` and returns its handle (the
    /// remote-control script does this on every switch).
    pub fn begin_visit(&self, channel: ChannelId, name: &str, at: Timestamp) -> VisitHandle {
        let mut s = self.state.lock();
        let id = VisitId(s.next_visit);
        s.next_visit += 1;
        let session = s.session.clone();
        s.visits.push(VisitState {
            id,
            channel,
            name: name.to_string(),
            session,
            opened: at,
            hosts: HashSet::new(),
        });
        VisitHandle {
            proxy: self.clone(),
            id,
            channel,
        }
    }

    /// Notifies the proxy of a channel switch — the legacy spelling of
    /// [`Proxy::begin_visit`] for callers that record through the proxy
    /// itself rather than a handle.
    pub fn notify_channel_switch(&self, id: ChannelId, name: &str, at: Timestamp) {
        let _ = self.begin_visit(id, name, at);
    }

    /// Records one exchange against the most recently opened visit of
    /// the current session (unattributed if the session has none).
    pub fn record(&self, request: Request, response: Response) {
        let mut s = self.state.lock();
        let target = if s.visits.len() > s.session_start {
            Some(s.visits.len() - 1)
        } else {
            None
        };
        record_at(&mut s, target, request, response);
    }

    /// A snapshot of all captured exchanges.
    pub fn captures(&self) -> Vec<CapturedExchange> {
        self.state.lock().log.clone()
    }

    /// Runs `f` over the capture log without cloning it.
    pub fn with_captures<T>(&self, f: impl FnOnce(&[CapturedExchange]) -> T) -> T {
        f(&self.state.lock().log)
    }

    /// Number of captured exchanges.
    pub fn len(&self) -> usize {
        self.state.lock().log.len()
    }

    /// Whether nothing was captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears the log (between experiments; the paper pushed each run's
    /// data to BigQuery and started fresh).
    pub fn clear(&self) {
        self.state.lock().log.clear();
    }
}

/// Attributes and logs one exchange. `target` is the index of the visit
/// the exchange was recorded through, or `None` for traffic outside any
/// visit (boot traffic, sealed sessions).
fn record_at(s: &mut ProxyState, target: Option<usize>, request: Request, response: Response) {
    let t = request.timestamp;
    let host = request.url.host().to_string();
    let referer_host = request.referer().map(|u| u.host().to_string());

    // Default attribution: the recording visit, if the request falls
    // within its attribution window.
    let mut attributed = target.filter(|&i| {
        let opened = s.visits[i].opened;
        t >= opened && t.since(opened) <= ATTRIBUTION_WINDOW
    });

    // Referer correction at the visit boundary: shortly after a visit
    // opens, a request whose referer points at a host seen only during
    // the immediately preceding visit of the same session belongs to
    // that previous visit. This is the only rule that can move an
    // exchange, and it can only move it one visit back — never forward,
    // never further, never across sessions.
    if let (Some(ref_host), Some(i)) = (&referer_host, target) {
        if i > 0 {
            let cur = &s.visits[i];
            let prev = &s.visits[i - 1];
            let within_grace = t >= cur.opened && t.since(cur.opened) <= SWITCH_GRACE;
            if within_grace
                && prev.session == cur.session
                && prev.hosts.contains(ref_host)
                && !cur.hosts.contains(ref_host)
            {
                attributed = Some(i - 1);
            }
        }
    }

    let (visit, channel, channel_name) = match attributed {
        Some(j) => {
            let v = &mut s.visits[j];
            v.hosts.insert(host);
            (Some(v.id), Some(v.channel), Some(v.name.clone()))
        }
        None => (None, None, None),
    };
    // The session label travels with the recording visit, so handle
    // recording stays correctly labeled even after another session
    // started on the same proxy.
    let session = match target {
        Some(i) => s.visits[i].session.clone(),
        None => s.session.clone(),
    };
    if let Some(metrics) = &s.metrics {
        metrics.exchanges.inc();
        metrics.bytes.add(
            (request.url.host().len()
                + request.url.path().len()
                + request.body.len()
                + response.body_len) as u64,
        );
    }
    s.log.push(CapturedExchange {
        session,
        visit,
        channel,
        channel_name,
        request,
        response,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbtv_net::Status;

    /// Each parallel visit owns its proxy shard, but handles and capture
    /// logs cross thread boundaries when runs are assembled — all of
    /// them must stay `Send + Sync`.
    #[test]
    fn proxy_and_captures_cross_thread_boundaries() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Proxy>();
        assert_send_sync::<VisitHandle>();
        assert_send_sync::<CapturedExchange>();
    }

    fn req(url: &str, at: u64) -> Request {
        Request::get(url.parse().unwrap())
            .at(Timestamp::from_unix(at))
            .build()
    }

    fn req_ref(url: &str, referer: &str, at: u64) -> Request {
        Request::get(url.parse().unwrap())
            .header("Referer", referer)
            .at(Timestamp::from_unix(at))
            .build()
    }

    fn ok() -> Response {
        Response::builder(Status::OK).build()
    }

    const T0: u64 = 1_700_000_000;

    #[test]
    fn attributes_to_active_channel() {
        let p = Proxy::new();
        p.start_session("General");
        p.notify_channel_switch(ChannelId(1), "ZDF", Timestamp::from_unix(T0));
        p.record(req("http://hbbtv.zdf.de/a", T0 + 5), ok());
        let log = p.captures();
        assert_eq!(log[0].channel, Some(ChannelId(1)));
        assert_eq!(log[0].channel_name.as_deref(), Some("ZDF"));
        assert_eq!(log[0].session, "General");
        assert_eq!(log[0].visit, Some(VisitId(0)));
    }

    #[test]
    fn unattributed_before_any_switch() {
        let p = Proxy::new();
        p.start_session("General");
        p.record(req("http://lge.com/firmware", T0), ok());
        assert_eq!(p.captures()[0].channel, None);
        assert_eq!(p.captures()[0].visit, None);
    }

    #[test]
    fn requests_past_the_window_are_unattributed() {
        let p = Proxy::new();
        p.start_session("General");
        p.notify_channel_switch(ChannelId(1), "ZDF", Timestamp::from_unix(T0));
        p.record(req("http://hbbtv.zdf.de/a", T0 + 17 * 60 + 1), ok());
        assert_eq!(p.captures()[0].channel, None);
        assert_eq!(p.captures()[0].visit, None);
    }

    #[test]
    fn stale_referer_reattributes_to_previous_visit() {
        let p = Proxy::new();
        p.start_session("Red");
        p.notify_channel_switch(ChannelId(1), "ZDF", Timestamp::from_unix(T0));
        p.record(req("http://hbbtv.zdf.de/app", T0 + 2), ok());
        p.notify_channel_switch(ChannelId(2), "RTL", Timestamp::from_unix(T0 + 900));
        // A late beacon of the ZDF app arrives 3 s after the switch.
        p.record(
            req_ref("http://tvping.com/p", "http://hbbtv.zdf.de/app", T0 + 903),
            ok(),
        );
        // A genuine RTL request follows.
        p.record(req("http://hbbtv.rtl.de/app", T0 + 905), ok());
        let log = p.captures();
        assert_eq!(
            log[1].channel,
            Some(ChannelId(1)),
            "stale beacon goes to ZDF"
        );
        assert_eq!(log[1].visit, Some(VisitId(0)), "…and to ZDF's visit");
        assert_eq!(log[2].channel, Some(ChannelId(2)));
        assert_eq!(log[2].visit, Some(VisitId(1)));
    }

    #[test]
    fn stale_referer_after_grace_sticks_with_current() {
        let p = Proxy::new();
        p.start_session("Red");
        p.notify_channel_switch(ChannelId(1), "ZDF", Timestamp::from_unix(T0));
        p.record(req("http://hbbtv.zdf.de/app", T0 + 2), ok());
        p.notify_channel_switch(ChannelId(2), "RTL", Timestamp::from_unix(T0 + 900));
        p.record(
            req_ref("http://tvping.com/p", "http://hbbtv.zdf.de/app", T0 + 950),
            ok(),
        );
        assert_eq!(p.captures()[1].channel, Some(ChannelId(2)));
    }

    #[test]
    fn referer_seen_on_current_channel_is_not_reattributed() {
        let p = Proxy::new();
        p.start_session("Red");
        p.notify_channel_switch(ChannelId(1), "ZDF", Timestamp::from_unix(T0));
        p.record(req("http://shared-cdn.de/lib", T0 + 2), ok());
        p.notify_channel_switch(ChannelId(2), "RTL", Timestamp::from_unix(T0 + 900));
        p.record(req("http://shared-cdn.de/lib", T0 + 901), ok());
        // Referer points at a host seen on *both* visits → stays current.
        p.record(
            req_ref("http://tvping.com/p", "http://shared-cdn.de/lib", T0 + 902),
            ok(),
        );
        assert_eq!(p.captures()[2].channel, Some(ChannelId(2)));
    }

    #[test]
    fn handle_records_its_own_visit() {
        let p = Proxy::new();
        p.start_session("Red");
        let zdf = p.begin_visit(ChannelId(1), "ZDF", Timestamp::from_unix(T0));
        let rtl = p.begin_visit(ChannelId(2), "RTL", Timestamp::from_unix(T0 + 900));
        // Interleaved recording through both handles: each exchange is
        // tagged by the handle it came through, not by arrival order.
        rtl.record(req("http://hbbtv.rtl.de/a", T0 + 901), ok());
        zdf.record(req("http://hbbtv.zdf.de/a", T0 + 10), ok());
        let log = p.captures();
        assert_eq!(log[0].visit, Some(VisitId(1)));
        assert_eq!(log[0].channel, Some(ChannelId(2)));
        assert_eq!(log[1].visit, Some(VisitId(0)));
        assert_eq!(log[1].channel, Some(ChannelId(1)));
        assert_eq!(zdf.channel(), ChannelId(1));
        assert_eq!(zdf.id(), VisitId(0));
        assert!(zdf.proxy().len() == 2);
    }

    /// Regression: whatever the timestamp says, an exchange recorded
    /// during visit N attributes to visit N (or, via the grace rule, to
    /// N−1) — never to any other visit. Timestamp skew can only ever
    /// *unattribute* a capture.
    #[test]
    fn timestamp_skew_never_moves_attribution_to_another_visit() {
        let p = Proxy::new();
        p.start_session("Red");
        let a = p.begin_visit(ChannelId(1), "A", Timestamp::from_unix(T0));
        let b = p.begin_visit(ChannelId(2), "B", Timestamp::from_unix(T0 + 900));
        let c = p.begin_visit(ChannelId(3), "C", Timestamp::from_unix(T0 + 1800));
        // Skewed timestamps landing squarely inside the *other* visits'
        // windows, recorded through B's handle.
        for skew in [0u64, 5, 300, 900, 1000, 1805, 2700] {
            b.record(req("http://hbbtv-b.de/r", T0 + skew), ok());
        }
        for cap in p.captures() {
            assert_ne!(cap.channel, Some(ChannelId(1)), "never attributes to A");
            assert_ne!(cap.channel, Some(ChannelId(3)), "never attributes to C");
            assert!(
                cap.channel.is_none() || cap.visit == Some(VisitId(1)),
                "either unattributed or visit B, got {:?}",
                cap.visit
            );
        }
        let _ = (a, c);
    }

    /// The grace rule works at the visit boundary even when the two
    /// visits record through independent handles.
    #[test]
    fn grace_applies_at_the_visit_boundary_between_handles() {
        let p = Proxy::new();
        p.start_session("Red");
        let zdf = p.begin_visit(ChannelId(1), "ZDF", Timestamp::from_unix(T0));
        zdf.record(req("http://hbbtv.zdf.de/app", T0 + 2), ok());
        let rtl = p.begin_visit(ChannelId(2), "RTL", Timestamp::from_unix(T0 + 900));
        rtl.record(
            req_ref("http://tvping.com/p", "http://hbbtv.zdf.de/app", T0 + 903),
            ok(),
        );
        let log = p.captures();
        assert_eq!(log[1].visit, Some(VisitId(0)));
        assert_eq!(log[1].channel, Some(ChannelId(1)));
    }

    /// Sessions are isolated: a new session seals the previous one's
    /// visits against both plain records and the grace rule.
    #[test]
    fn cross_session_isolation() {
        let p = Proxy::new();
        p.start_session("General");
        p.notify_channel_switch(ChannelId(1), "ZDF", Timestamp::from_unix(T0));
        p.record(req("http://hbbtv.zdf.de/app", T0 + 2), ok());

        p.start_session("Red");
        // Before the Red session opens any visit, traffic must not fall
        // back to the General session's last visit.
        p.record(req("http://lge.com/firmware", T0 + 10), ok());
        assert_eq!(p.captures()[1].channel, None);
        assert_eq!(p.captures()[1].session, "Red");

        // A first Red visit with a referer pointing at a host seen only
        // in the General session: the grace rule must not reach across.
        p.notify_channel_switch(ChannelId(2), "RTL", Timestamp::from_unix(T0 + 20));
        p.record(
            req_ref("http://tvping.com/p", "http://hbbtv.zdf.de/app", T0 + 22),
            ok(),
        );
        let cap = &p.captures()[2];
        assert_eq!(cap.channel, Some(ChannelId(2)), "stays with the Red visit");
        assert_eq!(cap.session, "Red");
    }

    /// A handle outlives session changes: exchanges recorded through it
    /// keep the visit's own session label.
    #[test]
    fn handle_keeps_its_session_label() {
        let p = Proxy::new();
        p.start_session("General");
        let v = p.begin_visit(ChannelId(1), "ZDF", Timestamp::from_unix(T0));
        p.start_session("Red");
        v.record(req("http://hbbtv.zdf.de/late", T0 + 5), ok());
        let cap = &p.captures()[0];
        assert_eq!(cap.session, "General");
        assert_eq!(cap.visit, Some(VisitId(0)));
    }

    /// Shards seed their visit counter so merged logs carry the
    /// canonical sequence.
    #[test]
    fn sharded_visit_ids_start_where_told() {
        let shard = Proxy::new();
        shard.start_session_at("Red", 7);
        let v = shard.begin_visit(ChannelId(9), "Ch9", Timestamp::from_unix(T0));
        v.record(req("http://hbbtv-ch9.de/r", T0 + 1), ok());
        assert_eq!(shard.captures()[0].visit, Some(VisitId(7)));
    }

    #[test]
    fn https_flag_and_clear() {
        let p = Proxy::new();
        p.start_session("General");
        p.notify_channel_switch(ChannelId(1), "ZDF", Timestamp::from_unix(T0));
        p.record(req("https://secure.zdf.de/a", T0 + 1), ok());
        assert!(p.captures()[0].is_https());
        assert_eq!(p.len(), 1);
        p.clear();
        assert!(p.is_empty());
    }

    #[test]
    fn clone_shares_the_log() {
        let p = Proxy::new();
        let handle = p.clone();
        p.start_session("General");
        p.notify_channel_switch(ChannelId(1), "ZDF", Timestamp::from_unix(T0));
        handle.record(req("http://hbbtv.zdf.de/a", T0 + 1), ok());
        assert_eq!(p.len(), 1);
        let total = p.with_captures(|log| log.len());
        assert_eq!(total, 1);
    }
}
