//! The intercepting proxy: traffic capture and channel attribution.
//!
//! The study routed all TV traffic through mitmproxy on an analysis
//! machine. Since no channel validated certificates, *all* HTTP(S)
//! traffic could be decrypted and recorded. Two details of §IV-C matter
//! for correctness and are reproduced exactly:
//!
//! 1. **Channel attribution.** The remote-control script tells the proxy
//!    the current channel on every switch. Requests are attributed to the
//!    channel active at their timestamp — but if a request arrives just
//!    after a switch and its `Referer` still points at a host seen during
//!    the *previous* channel's window, it is re-attributed to that
//!    previous channel ("accounting for delays during switching").
//! 2. **The 15-minute window.** Only requests from the last 15 minutes of
//!    a channel's watch time are attributed, bounding stale matches.
//!
//! The [`Proxy`] is cheaply cloneable; the TV runtime records through one
//! handle while the study harness reads through another, mirroring the
//! separate capture and analysis processes of the physical setup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hbbtv_broadcast::ChannelId;
use hbbtv_net::{Duration, Request, Response, Timestamp};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::Arc;

/// Grace period after a channel switch in which a stale `Referer` moves a
/// request back to the previous channel.
const SWITCH_GRACE: Duration = Duration::from_secs(15);

/// Attribution horizon (§IV-C speaks of a 15-minute window; ours is
/// sized to cover the study's longest per-channel watch time of 1000 s
/// plus switching slack, so legitimate in-watch traffic stays
/// attributed — see EXPERIMENTS.md).
const ATTRIBUTION_WINDOW: Duration = Duration::from_secs(17 * 60);

/// One recorded request/response pair with its attribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapturedExchange {
    /// Label of the measurement session (e.g. `"Red"`).
    pub session: String,
    /// The channel this exchange is attributed to, if any.
    pub channel: Option<ChannelId>,
    /// Name of the attributed channel (for reports).
    pub channel_name: Option<String>,
    /// The request as sent by the TV.
    pub request: Request,
    /// The response as delivered to the TV.
    pub response: Response,
}

impl CapturedExchange {
    /// Whether the exchange used TLS.
    pub fn is_https(&self) -> bool {
        self.request.url.is_https()
    }
}

#[derive(Debug, Default)]
struct ChannelWindow {
    channel: Option<(ChannelId, String)>,
    since: Timestamp,
    hosts: HashSet<String>,
}

#[derive(Debug, Default)]
struct ProxyState {
    session: String,
    current: ChannelWindow,
    previous: ChannelWindow,
    log: Vec<CapturedExchange>,
}

/// The intercepting proxy.
///
/// # Examples
///
/// ```
/// use hbbtv_proxy::Proxy;
/// use hbbtv_broadcast::ChannelId;
/// use hbbtv_net::{Request, Response, Status, Timestamp};
///
/// let proxy = Proxy::new();
/// proxy.start_session("General");
/// proxy.notify_channel_switch(ChannelId(7), "ZDF", Timestamp::MEASUREMENT_START);
/// let req = Request::get("http://hbbtv.zdf.de/app".parse()?)
///     .at(Timestamp::MEASUREMENT_START)
///     .build();
/// proxy.record(req, Response::builder(Status::OK).build());
/// assert_eq!(proxy.captures().len(), 1);
/// assert_eq!(proxy.captures()[0].channel, Some(ChannelId(7)));
/// # Ok::<(), hbbtv_net::ParseUrlError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Proxy {
    state: Arc<Mutex<ProxyState>>,
}

impl Proxy {
    /// Creates a proxy with an empty capture log.
    pub fn new() -> Self {
        Proxy::default()
    }

    /// Starts (or renames) the current measurement session; subsequent
    /// captures carry this label.
    pub fn start_session(&self, label: &str) {
        let mut s = self.state.lock();
        s.session = label.to_string();
        s.current = ChannelWindow::default();
        s.previous = ChannelWindow::default();
    }

    /// Notifies the proxy of a channel switch (the remote-control script
    /// sends channel name and id on every switch).
    pub fn notify_channel_switch(&self, id: ChannelId, name: &str, at: Timestamp) {
        let mut s = self.state.lock();
        let old = std::mem::take(&mut s.current);
        s.previous = old;
        s.current = ChannelWindow {
            channel: Some((id, name.to_string())),
            since: at,
            hosts: HashSet::new(),
        };
    }

    /// Records one exchange, attributing it per the §IV-C rules.
    pub fn record(&self, request: Request, response: Response) {
        let mut s = self.state.lock();
        let t = request.timestamp;
        let host = request.url.host().to_string();
        let referer_host = request.referer().map(|u| u.host().to_string());

        // Default attribution: the currently active window, if the
        // request falls within the 15-minute horizon.
        let mut attributed = if s.current.channel.is_some()
            && t >= s.current.since
            && t.since(s.current.since) <= ATTRIBUTION_WINDOW
        {
            s.current.channel.clone()
        } else {
            None
        };

        // Referrer correction: shortly after a switch, a request whose
        // referrer points at a host only seen on the previous channel
        // belongs to the previous channel.
        if let (Some(ref_host), Some(prev)) = (&referer_host, &s.previous.channel) {
            let within_grace = t >= s.current.since && t.since(s.current.since) <= SWITCH_GRACE;
            let seen_prev = s.previous.hosts.contains(ref_host);
            let seen_cur = s.current.hosts.contains(ref_host);
            if within_grace && seen_prev && !seen_cur {
                attributed = Some(prev.clone());
                s.previous.hosts.insert(host.clone());
            }
        }

        if attributed.as_ref().map(|(id, _)| *id) == s.current.channel.as_ref().map(|(id, _)| *id) {
            s.current.hosts.insert(host);
        }

        let session = s.session.clone();
        s.log.push(CapturedExchange {
            session,
            channel: attributed.as_ref().map(|(id, _)| *id),
            channel_name: attributed.map(|(_, name)| name),
            request,
            response,
        });
    }

    /// A snapshot of all captured exchanges.
    pub fn captures(&self) -> Vec<CapturedExchange> {
        self.state.lock().log.clone()
    }

    /// Runs `f` over the capture log without cloning it.
    pub fn with_captures<T>(&self, f: impl FnOnce(&[CapturedExchange]) -> T) -> T {
        f(&self.state.lock().log)
    }

    /// Number of captured exchanges.
    pub fn len(&self) -> usize {
        self.state.lock().log.len()
    }

    /// Whether nothing was captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears the log (between experiments; the paper pushed each run's
    /// data to BigQuery and started fresh).
    pub fn clear(&self) {
        self.state.lock().log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbtv_net::Status;

    /// Each parallel study run owns its proxy, but capture logs cross
    /// thread boundaries when runs are assembled — both ends must stay
    /// `Send + Sync`.
    #[test]
    fn proxy_and_captures_cross_thread_boundaries() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Proxy>();
        assert_send_sync::<CapturedExchange>();
    }

    fn req(url: &str, at: u64) -> Request {
        Request::get(url.parse().unwrap())
            .at(Timestamp::from_unix(at))
            .build()
    }

    fn req_ref(url: &str, referer: &str, at: u64) -> Request {
        Request::get(url.parse().unwrap())
            .header("Referer", referer)
            .at(Timestamp::from_unix(at))
            .build()
    }

    fn ok() -> Response {
        Response::builder(Status::OK).build()
    }

    const T0: u64 = 1_700_000_000;

    #[test]
    fn attributes_to_active_channel() {
        let p = Proxy::new();
        p.start_session("General");
        p.notify_channel_switch(ChannelId(1), "ZDF", Timestamp::from_unix(T0));
        p.record(req("http://hbbtv.zdf.de/a", T0 + 5), ok());
        let log = p.captures();
        assert_eq!(log[0].channel, Some(ChannelId(1)));
        assert_eq!(log[0].channel_name.as_deref(), Some("ZDF"));
        assert_eq!(log[0].session, "General");
    }

    #[test]
    fn unattributed_before_any_switch() {
        let p = Proxy::new();
        p.start_session("General");
        p.record(req("http://lge.com/firmware", T0), ok());
        assert_eq!(p.captures()[0].channel, None);
    }

    #[test]
    fn requests_past_the_window_are_unattributed() {
        let p = Proxy::new();
        p.start_session("General");
        p.notify_channel_switch(ChannelId(1), "ZDF", Timestamp::from_unix(T0));
        p.record(req("http://hbbtv.zdf.de/a", T0 + 17 * 60 + 1), ok());
        assert_eq!(p.captures()[0].channel, None);
    }

    #[test]
    fn stale_referer_reattributes_to_previous_channel() {
        let p = Proxy::new();
        p.start_session("Red");
        p.notify_channel_switch(ChannelId(1), "ZDF", Timestamp::from_unix(T0));
        p.record(req("http://hbbtv.zdf.de/app", T0 + 2), ok());
        p.notify_channel_switch(ChannelId(2), "RTL", Timestamp::from_unix(T0 + 900));
        // A late beacon of the ZDF app arrives 3 s after the switch.
        p.record(
            req_ref("http://tvping.com/p", "http://hbbtv.zdf.de/app", T0 + 903),
            ok(),
        );
        // A genuine RTL request follows.
        p.record(req("http://hbbtv.rtl.de/app", T0 + 905), ok());
        let log = p.captures();
        assert_eq!(
            log[1].channel,
            Some(ChannelId(1)),
            "stale beacon goes to ZDF"
        );
        assert_eq!(log[2].channel, Some(ChannelId(2)));
    }

    #[test]
    fn stale_referer_after_grace_sticks_with_current() {
        let p = Proxy::new();
        p.start_session("Red");
        p.notify_channel_switch(ChannelId(1), "ZDF", Timestamp::from_unix(T0));
        p.record(req("http://hbbtv.zdf.de/app", T0 + 2), ok());
        p.notify_channel_switch(ChannelId(2), "RTL", Timestamp::from_unix(T0 + 900));
        p.record(
            req_ref("http://tvping.com/p", "http://hbbtv.zdf.de/app", T0 + 950),
            ok(),
        );
        assert_eq!(p.captures()[1].channel, Some(ChannelId(2)));
    }

    #[test]
    fn referer_seen_on_current_channel_is_not_reattributed() {
        let p = Proxy::new();
        p.start_session("Red");
        p.notify_channel_switch(ChannelId(1), "ZDF", Timestamp::from_unix(T0));
        p.record(req("http://shared-cdn.de/lib", T0 + 2), ok());
        p.notify_channel_switch(ChannelId(2), "RTL", Timestamp::from_unix(T0 + 900));
        p.record(req("http://shared-cdn.de/lib", T0 + 901), ok());
        // Referer points at a host seen on *both* windows → stays current.
        p.record(
            req_ref("http://tvping.com/p", "http://shared-cdn.de/lib", T0 + 902),
            ok(),
        );
        assert_eq!(p.captures()[2].channel, Some(ChannelId(2)));
    }

    #[test]
    fn https_flag_and_clear() {
        let p = Proxy::new();
        p.start_session("General");
        p.notify_channel_switch(ChannelId(1), "ZDF", Timestamp::from_unix(T0));
        p.record(req("https://secure.zdf.de/a", T0 + 1), ok());
        assert!(p.captures()[0].is_https());
        assert_eq!(p.len(), 1);
        p.clear();
        assert!(p.is_empty());
    }

    #[test]
    fn clone_shares_the_log() {
        let p = Proxy::new();
        let handle = p.clone();
        p.start_session("General");
        p.notify_channel_switch(ChannelId(1), "ZDF", Timestamp::from_unix(T0));
        handle.record(req("http://hbbtv.zdf.de/a", T0 + 1), ok());
        assert_eq!(p.len(), 1);
        let total = p.with_captures(|log| log.len());
        assert_eq!(total, 1);
    }
}
