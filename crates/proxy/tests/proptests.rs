//! Property-based tests for channel attribution.

use hbbtv_broadcast::ChannelId;
use hbbtv_net::{Request, Response, Status, Timestamp};
use hbbtv_proxy::Proxy;
use proptest::prelude::*;

const T0: u64 = 1_700_000_000;

fn ok() -> Response {
    Response::builder(Status::OK).build()
}

proptest! {
    /// Requests inside a channel's watch window are attributed to it;
    /// requests before any switch are not.
    #[test]
    fn attribution_respects_the_active_window(
        offsets in prop::collection::vec(0u64..900, 1..40),
    ) {
        let proxy = Proxy::new();
        proxy.start_session("t");
        // Pre-switch traffic stays unattributed.
        proxy.record(
            Request::get("http://boot.de/x".parse().unwrap())
                .at(Timestamp::from_unix(T0 - 5))
                .build(),
            ok(),
        );
        proxy.notify_channel_switch(ChannelId(9), "Ch9", Timestamp::from_unix(T0));
        for &o in &offsets {
            proxy.record(
                Request::get("http://hbbtv-ch9.de/r".parse().unwrap())
                    .at(Timestamp::from_unix(T0 + o))
                    .build(),
                ok(),
            );
        }
        let log = proxy.captures();
        prop_assert_eq!(log[0].channel, None);
        for c in &log[1..] {
            prop_assert_eq!(c.channel, Some(ChannelId(9)));
            prop_assert_eq!(c.channel_name.as_deref(), Some("Ch9"));
        }
    }

    /// The capture log preserves order and count, whatever arrives.
    #[test]
    fn capture_log_is_lossless(
        hosts in prop::collection::vec("[a-z]{3,8}", 1..30),
    ) {
        let proxy = Proxy::new();
        proxy.start_session("t");
        proxy.notify_channel_switch(ChannelId(1), "A", Timestamp::from_unix(T0));
        for (i, h) in hosts.iter().enumerate() {
            proxy.record(
                Request::get(format!("http://{h}.de/{i}").parse().unwrap())
                    .at(Timestamp::from_unix(T0 + i as u64))
                    .build(),
                ok(),
            );
        }
        let log = proxy.captures();
        prop_assert_eq!(log.len(), hosts.len());
        for (i, (c, h)) in log.iter().zip(hosts.iter()).enumerate() {
            prop_assert_eq!(c.request.url.host(), format!("{h}.de"));
            prop_assert_eq!(c.request.url.path(), format!("/{i}"));
        }
    }

    /// After a switch, attribution moves to the new channel for plain
    /// requests regardless of timing within the window.
    #[test]
    fn switch_moves_attribution(gap in 1u64..900) {
        let proxy = Proxy::new();
        proxy.start_session("t");
        proxy.notify_channel_switch(ChannelId(1), "A", Timestamp::from_unix(T0));
        proxy.record(
            Request::get("http://a.de/1".parse().unwrap())
                .at(Timestamp::from_unix(T0 + 1))
                .build(),
            ok(),
        );
        proxy.notify_channel_switch(ChannelId(2), "B", Timestamp::from_unix(T0 + 900));
        proxy.record(
            Request::get("http://b.de/2".parse().unwrap())
                .at(Timestamp::from_unix(T0 + 900 + gap))
                .build(),
            ok(),
        );
        let log = proxy.captures();
        prop_assert_eq!(log[0].channel, Some(ChannelId(1)));
        prop_assert_eq!(log[1].channel, Some(ChannelId(2)));
    }
}
