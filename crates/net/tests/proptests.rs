//! Property-based tests for URL, host, and cookie parsing.

use hbbtv_net::{registrable_domain, Etld1, Host, SetCookie, Timestamp, Url};
use proptest::prelude::*;

/// Strategy producing syntactically valid DNS labels.
fn label() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,8}".prop_map(|s| s)
}

/// Strategy producing valid hosts with 1..=4 labels over known TLDs.
fn host() -> impl Strategy<Value = String> {
    (
        prop::collection::vec(label(), 1..=3),
        prop_oneof![
            Just("de".to_string()),
            Just("com".to_string()),
            Just("co.uk".to_string()),
            Just("at".to_string()),
            Just("tv".to_string()),
        ],
    )
        .prop_map(|(labels, tld)| format!("{}.{}", labels.join("."), tld))
}

proptest! {
    /// eTLD+1 is idempotent: applying it twice gives the same result.
    #[test]
    fn etld1_is_idempotent(h in host()) {
        let once = registrable_domain(&h);
        let twice = registrable_domain(&once);
        prop_assert_eq!(once, twice);
    }

    /// The registrable domain is always a suffix of the host.
    #[test]
    fn etld1_is_suffix_of_host(h in host()) {
        let d = registrable_domain(&h);
        prop_assert!(h.ends_with(&d), "{} should end with {}", h, d);
    }

    /// Valid hosts parse, lower-case, and display unchanged.
    #[test]
    fn host_parse_display_round_trip(h in host()) {
        let parsed: Host = h.parse().unwrap();
        prop_assert_eq!(parsed.to_string(), h);
    }

    /// URLs built from components survive a display/parse round trip.
    #[test]
    fn url_round_trip(
        h in host(),
        path in prop::collection::vec("[a-z0-9]{1,6}", 0..3),
        params in prop::collection::vec(("[a-z]{1,5}", "[a-zA-Z0-9]{0,10}"), 0..4),
        https in any::<bool>(),
    ) {
        let scheme = if https { "https" } else { "http" };
        let path_str = if path.is_empty() { "/".to_string() } else { format!("/{}", path.join("/")) };
        let query = params
            .iter()
            .map(|(k, v)| if v.is_empty() { k.clone() } else { format!("{k}={v}") })
            .collect::<Vec<_>>()
            .join("&");
        let s = if query.is_empty() {
            format!("{scheme}://{h}{path_str}")
        } else {
            format!("{scheme}://{h}{path_str}?{query}")
        };
        let u: Url = s.parse().unwrap();
        let round: Url = u.to_string().parse().unwrap();
        prop_assert_eq!(&round, &u);
        prop_assert_eq!(u.is_https(), https);
    }

    /// Set-Cookie display/parse is a lossless round trip.
    #[test]
    fn set_cookie_round_trip(
        name in "[a-zA-Z][a-zA-Z0-9_]{0,12}",
        value in "[a-zA-Z0-9]{0,24}",
        domain in host(),
        expires in prop::option::of(1u64..2_000_000_000),
        secure in any::<bool>(),
        http_only in any::<bool>(),
    ) {
        let mut sc = SetCookie::persistent(
            name,
            value,
            Etld1::from_host(&domain),
            Timestamp::from_unix(expires.unwrap_or(1)),
        );
        if expires.is_none() {
            sc.expires = None;
        }
        sc.secure = secure;
        sc.http_only = http_only;
        let reparsed = SetCookie::parse(&sc.to_string()).unwrap();
        prop_assert_eq!(reparsed, sc);
    }

    /// The URL query accessor returns exactly what was appended.
    #[test]
    fn with_param_is_observable(v in "[a-zA-Z0-9]{1,20}") {
        let u: Url = "http://example.de/p".parse().unwrap();
        let u = u.with_param("uid", &v);
        prop_assert_eq!(u.query_param("uid"), Some(v.as_str()));
    }
}
