//! Error types for parsing network artifacts.

use std::error::Error;
use std::fmt;

/// Error returned when parsing a [`Url`](crate::Url) or
/// [`Host`](crate::Host) fails.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseUrlError {
    /// The URL has no `scheme://` separator.
    MissingScheme,
    /// The scheme is neither `http` nor `https`.
    UnsupportedScheme(String),
    /// The host portion is empty.
    EmptyHost,
    /// The host contains invalid characters or empty labels.
    InvalidHost(String),
    /// The port is not a valid `u16`.
    InvalidPort(String),
}

impl fmt::Display for ParseUrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseUrlError::MissingScheme => write!(f, "missing scheme separator"),
            ParseUrlError::UnsupportedScheme(s) => write!(f, "unsupported scheme `{s}`"),
            ParseUrlError::EmptyHost => write!(f, "empty host"),
            ParseUrlError::InvalidHost(h) => write!(f, "invalid host `{h}`"),
            ParseUrlError::InvalidPort(p) => write!(f, "invalid port `{p}`"),
        }
    }
}

impl Error for ParseUrlError {}

/// Error returned when parsing a `Set-Cookie` header fails.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseCookieError {
    /// The header has no `name=value` pair.
    MissingPair,
    /// The cookie name is empty.
    EmptyName,
}

impl fmt::Display for ParseCookieError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseCookieError::MissingPair => write!(f, "missing name=value pair"),
            ParseCookieError::EmptyName => write!(f, "empty cookie name"),
        }
    }
}

impl Error for ParseCookieError {}
