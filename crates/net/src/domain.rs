//! Host names and registrable domains (eTLD+1).
//!
//! The paper classifies communication endpoints by their eTLD+1 ("effective
//! top-level domain plus one label"), e.g. both `hbbtv.ard.de` and
//! `www.ard.de` map to `ard.de`. We embed the slice of the public-suffix
//! list that the European HbbTV ecosystem actually exercises (country-code
//! TLDs of the broadcast region plus the usual generic TLDs and the
//! two-level suffixes like `co.uk`).

use crate::error::ParseUrlError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Public suffixes with two labels (checked before single-label suffixes).
///
/// A host `a.b.sfx1.sfx2` with `sfx1.sfx2` in this table has the
/// registrable domain `b.sfx1.sfx2`.
const TWO_LABEL_SUFFIXES: &[&str] = &[
    "co.uk", "org.uk", "gov.uk", "ac.uk", "com.au", "net.au", "org.au", "co.at", "or.at", "ac.at",
    "gv.at", "co.nz", "com.tr", "com.br", "co.jp",
];

/// Single-label public suffixes (generic and European ccTLDs).
const ONE_LABEL_SUFFIXES: &[&str] = &[
    "com", "net", "org", "info", "biz", "tv", "io", "de", "at", "ch", "fr", "it", "nl", "be", "lu",
    "pl", "cz", "sk", "hu", "es", "pt", "dk", "se", "no", "fi", "gr", "ro", "bg", "hr", "si", "rs",
    "ba", "mk", "al", "tr", "ru", "ua", "uk", "eu", "me", "li",
];

/// A syntactically valid DNS host name (lower-cased).
///
/// # Examples
///
/// ```
/// use hbbtv_net::Host;
/// let host: Host = "HbbTV.ARD.de".parse()?;
/// assert_eq!(host.as_str(), "hbbtv.ard.de");
/// assert_eq!(host.labels().count(), 3);
/// # Ok::<(), hbbtv_net::ParseUrlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Host(String);

impl Host {
    /// Parses and validates a host name, lower-casing it.
    ///
    /// # Errors
    ///
    /// Returns [`ParseUrlError::EmptyHost`] for an empty string and
    /// [`ParseUrlError::InvalidHost`] for hosts with empty labels or
    /// characters outside `[a-z0-9.-]`.
    pub fn parse(s: &str) -> Result<Self, ParseUrlError> {
        if s.is_empty() {
            return Err(ParseUrlError::EmptyHost);
        }
        let lower = s.to_ascii_lowercase();
        let valid = lower.split('.').all(|label| {
            !label.is_empty()
                && label
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-')
        });
        if !valid {
            return Err(ParseUrlError::InvalidHost(s.to_string()));
        }
        Ok(Host(lower))
    }

    /// The host as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Iterates over the dot-separated labels, left to right.
    pub fn labels(&self) -> impl DoubleEndedIterator<Item = &str> {
        self.0.split('.')
    }

    /// The registrable domain (eTLD+1) of this host.
    ///
    /// Hosts that *are* a public suffix (or a bare single label) map to
    /// themselves, mirroring how measurement tooling treats unmatched
    /// hosts.
    pub fn etld1(&self) -> Etld1 {
        Etld1(registrable_domain(&self.0))
    }
}

impl fmt::Display for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for Host {
    type Err = ParseUrlError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Host::parse(s)
    }
}

impl AsRef<str> for Host {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A registrable domain — "effective TLD plus one label".
///
/// This is the unit of party identification throughout the paper: first
/// parties, third parties, trackers, and graph nodes are all eTLD+1s.
///
/// # Examples
///
/// ```
/// use hbbtv_net::Etld1;
/// assert_eq!(Etld1::from_host("cdn.tracker.co.uk").as_str(), "tracker.co.uk");
/// assert_eq!(Etld1::from_host("hbbtv.ard.de").as_str(), "ard.de");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Etld1(String);

impl Etld1 {
    /// Wraps an already-registrable domain without re-deriving it.
    ///
    /// Intended for literals (`Etld1::new("ard.de")`); prefer
    /// [`Etld1::from_host`] when the input may carry subdomains.
    pub fn new(domain: impl Into<String>) -> Self {
        Etld1(domain.into().to_ascii_lowercase())
    }

    /// Derives the registrable domain of an arbitrary host string.
    pub fn from_host(host: &str) -> Self {
        Etld1(registrable_domain(&host.to_ascii_lowercase()))
    }

    /// The domain as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Etld1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for Etld1 {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl From<&Host> for Etld1 {
    fn from(h: &Host) -> Etld1 {
        h.etld1()
    }
}

/// Computes the registrable domain (eTLD+1) of a lower-cased host string.
///
/// Resolution order follows the public-suffix algorithm restricted to the
/// embedded suffix tables: the longest matching suffix wins, and the
/// registrable domain is that suffix plus one more label. Hosts equal to a
/// suffix, or with no dot at all, are returned unchanged.
pub fn registrable_domain(host: &str) -> String {
    let labels: Vec<&str> = host.split('.').collect();
    if labels.len() >= 3 {
        let two = format!("{}.{}", labels[labels.len() - 2], labels[labels.len() - 1]);
        if TWO_LABEL_SUFFIXES.contains(&two.as_str()) {
            return format!("{}.{two}", labels[labels.len() - 3]);
        }
    }
    if labels.len() >= 2 {
        let two = format!("{}.{}", labels[labels.len() - 2], labels[labels.len() - 1]);
        if labels.len() >= 2 && TWO_LABEL_SUFFIXES.contains(&two.as_str()) {
            // Host *is* a two-label public suffix.
            return host.to_string();
        }
        let last = labels[labels.len() - 1];
        if ONE_LABEL_SUFFIXES.contains(&last) {
            return two;
        }
        // Unknown TLD: treat the final two labels as registrable, which is
        // what common measurement tooling (e.g. tldextract fallback) does.
        return two;
    }
    host.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn etld1_handles_generic_tlds() {
        assert_eq!(registrable_domain("www.tvping.com"), "tvping.com");
        assert_eq!(registrable_domain("a.b.c.xiti.com"), "xiti.com");
        assert_eq!(registrable_domain("redbutton.de"), "redbutton.de");
    }

    #[test]
    fn etld1_handles_two_label_suffixes() {
        assert_eq!(registrable_domain("stats.bbc.co.uk"), "bbc.co.uk");
        assert_eq!(registrable_domain("orf.co.at"), "orf.co.at");
        assert_eq!(registrable_domain("x.y.orf.co.at"), "orf.co.at");
    }

    #[test]
    fn etld1_of_suffix_or_bare_label_is_identity() {
        assert_eq!(registrable_domain("localhost"), "localhost");
        assert_eq!(registrable_domain("co.uk"), "co.uk");
    }

    #[test]
    fn unknown_tld_falls_back_to_last_two_labels() {
        assert_eq!(registrable_domain("a.b.example.zz"), "example.zz");
    }

    #[test]
    fn host_parse_rejects_garbage() {
        assert!(Host::parse("").is_err());
        assert!(Host::parse("a..b").is_err());
        assert!(Host::parse("spaces here.com").is_err());
        assert!(Host::parse("under_score.com").is_err());
    }

    #[test]
    fn host_parse_lowercases() {
        let h = Host::parse("Hbb.ARD.De").unwrap();
        assert_eq!(h.as_str(), "hbb.ard.de");
        assert_eq!(h.etld1(), Etld1::new("ard.de"));
    }

    #[test]
    fn etld1_display_and_conversions() {
        let h: Host = "cdn.smartclip.net".parse().unwrap();
        let d: Etld1 = (&h).into();
        assert_eq!(d.to_string(), "smartclip.net");
        assert_eq!(d.as_ref(), "smartclip.net");
    }
}
