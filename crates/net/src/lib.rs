//! Network primitives for the `hbbtv-lab` workspace.
//!
//! This crate provides the vocabulary types shared by every other crate in
//! the workspace: URLs and registrable domains ([`Url`], [`Etld1`]), HTTP
//! messages ([`Request`], [`Response`]), cookies ([`Cookie`],
//! [`SetCookie`]), and a deterministic simulated clock ([`SimClock`]).
//!
//! The paper's measurement framework intercepts HTTP(S) traffic between a
//! TV and the Internet with mitmproxy and later analyzes it offline. Our
//! reproduction keeps the same shape: the TV runtime emits [`Request`]s,
//! tracker services answer with [`Response`]s, and the proxy records both
//! together with [`Timestamp`]s from the shared [`SimClock`].
//!
//! # Examples
//!
//! ```
//! use hbbtv_net::{Url, Etld1};
//!
//! # fn main() -> Result<(), hbbtv_net::ParseUrlError> {
//! let url: Url = "https://hbbtv.ard.de/app/index.html?ch=daserste".parse()?;
//! assert_eq!(url.host(), "hbbtv.ard.de");
//! assert_eq!(url.etld1(), &Etld1::new("ard.de"));
//! assert!(url.is_https());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cookie;
mod domain;
mod error;
mod http;
mod time;
mod url;

pub use cookie::{Cookie, CookieKey, SameSite, SetCookie};
pub use domain::{registrable_domain, Etld1, Host};
pub use error::{ParseCookieError, ParseUrlError};
pub use http::{
    ContentType, Header, Headers, Method, Request, RequestBuilder, Response, ResponseBuilder,
    Status,
};
pub use time::{Duration, SimClock, Timestamp};
pub use url::{Scheme, Url};
