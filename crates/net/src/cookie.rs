//! Cookies and `Set-Cookie` parsing.
//!
//! Cookie observations are central to the paper: Table I counts cookies per
//! measurement run, Table II third-party cookie use, §V-C3 detects cookie
//! syncing from cookie *values*, and first- vs third-party classification
//! compares the cookie's owning domain with the channel's first party.

use crate::domain::Etld1;
use crate::error::ParseCookieError;
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The `SameSite` attribute of a cookie.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SameSite {
    /// No attribute given (the HbbTV browser treats this permissively,
    /// matching the 2018-era Chromium in webOS).
    #[default]
    None,
    /// `SameSite=Lax`.
    Lax,
    /// `SameSite=Strict`.
    Strict,
}

/// A cookie as a name/value pair plus the domain that owns it.
///
/// # Examples
///
/// ```
/// use hbbtv_net::{Cookie, Etld1};
/// let c = Cookie::new("uid", "a1b2c3d4e5f6", Etld1::new("xiti.com"));
/// assert_eq!(c.key().to_string(), "xiti.com/uid");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cookie {
    /// Cookie name.
    pub name: String,
    /// Cookie value.
    pub value: String,
    /// The registrable domain the cookie is scoped to.
    pub domain: Etld1,
}

impl Cookie {
    /// Creates a cookie.
    pub fn new(name: impl Into<String>, value: impl Into<String>, domain: Etld1) -> Self {
        Cookie {
            name: name.into(),
            value: value.into(),
            domain,
        }
    }

    /// The identity of this cookie (domain + name), which is what the
    /// "distinct cookies" counts in §V-C are keyed on.
    pub fn key(&self) -> CookieKey {
        CookieKey {
            domain: self.domain.clone(),
            name: self.name.clone(),
        }
    }
}

impl fmt::Display for Cookie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={} ({})", self.name, self.value, self.domain)
    }
}

/// The identity of a cookie: owning domain plus name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CookieKey {
    /// Owning registrable domain.
    pub domain: Etld1,
    /// Cookie name.
    pub name: String,
}

impl fmt::Display for CookieKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.domain, self.name)
    }
}

/// A parsed `Set-Cookie` header.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetCookie {
    /// The cookie being set. `domain` holds the explicit `Domain=`
    /// attribute when present; callers scope host-only cookies to the
    /// responding host's eTLD+1.
    pub cookie: Cookie,
    /// Whether a `Domain=` attribute was explicitly present.
    pub explicit_domain: bool,
    /// Expiry instant; `None` makes it a session cookie.
    pub expires: Option<Timestamp>,
    /// `Secure` attribute.
    pub secure: bool,
    /// `HttpOnly` attribute.
    pub http_only: bool,
    /// `SameSite` attribute.
    pub same_site: SameSite,
}

impl SetCookie {
    /// Creates a plain session cookie with no attributes; the domain is
    /// filled in by the receiver from the response context.
    pub fn session(name: impl Into<String>, value: impl Into<String>) -> Self {
        SetCookie {
            cookie: Cookie::new(name, value, Etld1::new("")),
            explicit_domain: false,
            expires: None,
            secure: false,
            http_only: false,
            same_site: SameSite::None,
        }
    }

    /// Creates a persistent cookie with an explicit domain and expiry.
    pub fn persistent(
        name: impl Into<String>,
        value: impl Into<String>,
        domain: Etld1,
        expires: Timestamp,
    ) -> Self {
        SetCookie {
            cookie: Cookie::new(name, value, domain),
            explicit_domain: true,
            expires: Some(expires),
            secure: false,
            http_only: false,
            same_site: SameSite::None,
        }
    }

    /// Parses a `Set-Cookie` header value.
    ///
    /// # Errors
    ///
    /// Returns [`ParseCookieError`] when the leading `name=value` pair is
    /// missing or the name is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use hbbtv_net::SetCookie;
    /// let sc = SetCookie::parse("uid=abc123; Domain=xiti.com; Secure")?;
    /// assert_eq!(sc.cookie.name, "uid");
    /// assert!(sc.secure);
    /// assert_eq!(sc.cookie.domain.as_str(), "xiti.com");
    /// # Ok::<(), hbbtv_net::ParseCookieError>(())
    /// ```
    pub fn parse(s: &str) -> Result<Self, ParseCookieError> {
        let mut parts = s.split(';').map(str::trim);
        let pair = parts.next().ok_or(ParseCookieError::MissingPair)?;
        let (name, value) = pair.split_once('=').ok_or(ParseCookieError::MissingPair)?;
        let name = name.trim();
        if name.is_empty() {
            return Err(ParseCookieError::EmptyName);
        }
        let mut sc = SetCookie::session(name, value.trim());
        // RFC 6265 §4.1.2.2: when both attributes are present, `Max-Age`
        // takes precedence over `Expires` regardless of order.
        let mut expires_attr = None;
        let mut max_age_attr = None;
        for attr in parts {
            let (key, val) = match attr.split_once('=') {
                Some((k, v)) => (k.trim(), v.trim()),
                None => (attr, ""),
            };
            if key.eq_ignore_ascii_case("domain") {
                sc.cookie.domain = Etld1::from_host(val.trim_start_matches('.'));
                sc.explicit_domain = true;
            } else if key.eq_ignore_ascii_case("expires") {
                // We serialize expiry as unix seconds in both attributes.
                if let Ok(secs) = val.parse::<u64>() {
                    expires_attr = Some(Timestamp::from_unix(secs));
                }
            } else if key.eq_ignore_ascii_case("max-age") {
                if let Ok(secs) = val.parse::<u64>() {
                    max_age_attr = Some(Timestamp::from_unix(secs));
                }
            } else if key.eq_ignore_ascii_case("secure") {
                sc.secure = true;
            } else if key.eq_ignore_ascii_case("httponly") {
                sc.http_only = true;
            } else if key.eq_ignore_ascii_case("samesite") {
                sc.same_site = if val.eq_ignore_ascii_case("lax") {
                    SameSite::Lax
                } else if val.eq_ignore_ascii_case("strict") {
                    SameSite::Strict
                } else {
                    SameSite::None
                };
            }
        }
        sc.expires = max_age_attr.or(expires_attr);
        Ok(sc)
    }

    /// Whether the cookie has an expiry (a "persistent" cookie).
    pub fn is_persistent(&self) -> bool {
        self.expires.is_some()
    }
}

impl fmt::Display for SetCookie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.cookie.name, self.cookie.value)?;
        if self.explicit_domain {
            write!(f, "; Domain={}", self.cookie.domain)?;
        }
        if let Some(e) = self.expires {
            write!(f, "; Expires={}", e.as_unix())?;
        }
        if self.secure {
            f.write_str("; Secure")?;
        }
        if self.http_only {
            f.write_str("; HttpOnly")?;
        }
        match self.same_site {
            SameSite::None => {}
            SameSite::Lax => f.write_str("; SameSite=Lax")?,
            SameSite::Strict => f.write_str("; SameSite=Strict")?,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_display() {
        let original = SetCookie::persistent(
            "uid",
            "a1b2c3d4e5",
            Etld1::new("tvping.com"),
            Timestamp::from_unix(1_700_000_000),
        );
        let reparsed = SetCookie::parse(&original.to_string()).unwrap();
        assert_eq!(reparsed, original);
    }

    #[test]
    fn parse_attributes() {
        let sc =
            SetCookie::parse("s=1; Domain=.xiti.com; Secure; HttpOnly; SameSite=Strict").unwrap();
        assert_eq!(sc.cookie.domain.as_str(), "xiti.com");
        assert!(sc.secure && sc.http_only);
        assert_eq!(sc.same_site, SameSite::Strict);
        assert!(!sc.is_persistent());
    }

    #[test]
    fn parse_rejects_malformed() {
        assert_eq!(
            SetCookie::parse("noequals"),
            Err(ParseCookieError::MissingPair)
        );
        assert_eq!(SetCookie::parse("=v"), Err(ParseCookieError::EmptyName));
    }

    #[test]
    fn value_may_contain_equals() {
        let sc = SetCookie::parse("data=a=b=c").unwrap();
        assert_eq!(sc.cookie.value, "a=b=c");
    }

    #[test]
    fn cookie_key_identity() {
        let a = Cookie::new("uid", "1", Etld1::new("x.de"));
        let b = Cookie::new("uid", "2", Etld1::new("x.de"));
        assert_eq!(a.key(), b.key(), "identity ignores the value");
        let c = Cookie::new("uid", "1", Etld1::new("y.de"));
        assert_ne!(a.key(), c.key());
        assert_eq!(a.key().to_string(), "x.de/uid");
    }

    #[test]
    fn max_age_takes_precedence_over_expires() {
        // RFC 6265: Max-Age wins no matter which attribute comes last.
        let sc = SetCookie::parse("a=1; Expires=1000; Max-Age=2000").unwrap();
        assert_eq!(sc.expires, Some(Timestamp::from_unix(2000)));
        let sc = SetCookie::parse("a=1; Max-Age=2000; Expires=1000").unwrap();
        assert_eq!(sc.expires, Some(Timestamp::from_unix(2000)));
    }

    #[test]
    fn expires_alone_still_applies() {
        let sc = SetCookie::parse("a=1; Expires=1234").unwrap();
        assert_eq!(sc.expires, Some(Timestamp::from_unix(1234)));
        let sc = SetCookie::parse("a=1; Max-Age=4321").unwrap();
        assert_eq!(sc.expires, Some(Timestamp::from_unix(4321)));
    }

    #[test]
    fn samesite_lax_parses() {
        let sc = SetCookie::parse("a=1; SameSite=lax").unwrap();
        assert_eq!(sc.same_site, SameSite::Lax);
    }
}
