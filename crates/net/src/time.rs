//! Simulated wall-clock time.
//!
//! The measurement study ran from August to December 2023. All timestamps
//! in the reproduction are seconds since the Unix epoch, driven by a
//! [`SimClock`] that the study harness advances deterministically — no call
//! ever touches the host clock, so runs are exactly reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in simulated time, in whole seconds since the Unix epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(u64);

impl Timestamp {
    /// 2023-08-01T00:00:00Z — the start of the paper's measurement window.
    pub const MEASUREMENT_START: Timestamp = Timestamp(1_690_848_000);
    /// 2023-12-31T23:59:59Z — the end of the paper's measurement window.
    pub const MEASUREMENT_END: Timestamp = Timestamp(1_704_067_199);

    /// Creates a timestamp from seconds since the Unix epoch.
    ///
    /// # Examples
    ///
    /// ```
    /// use hbbtv_net::Timestamp;
    /// let t = Timestamp::from_unix(1_700_000_000);
    /// assert_eq!(t.as_unix(), 1_700_000_000);
    /// ```
    pub const fn from_unix(secs: u64) -> Self {
        Timestamp(secs)
    }

    /// Returns the number of seconds since the Unix epoch.
    pub const fn as_unix(self) -> u64 {
        self.0
    }

    /// Seconds elapsed since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration::from_secs(self.0.saturating_sub(earlier.0))
    }

    /// Whether this timestamp falls inside the paper's measurement window
    /// (used by the cookie-syncing ID heuristic of §V-C3, which discards
    /// cookie values that are valid Unix timestamps within the window).
    pub fn in_measurement_window(self) -> bool {
        self >= Self::MEASUREMENT_START && self <= Self::MEASUREMENT_END
    }

    /// The hour of day (0–23, UTC) of this timestamp.
    ///
    /// Used by the "5 PM to 6 AM" policy-compliance check of §VII-C: the
    /// Super RTL policy limits profiling to 17:00–06:00.
    pub fn hour_of_day(self) -> u8 {
        ((self.0 / 3600) % 24) as u8
    }

    /// The day index since the Unix epoch (UTC midnight boundaries).
    pub fn day_index(self) -> u64 {
        self.0 / 86_400
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.as_secs())
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_secs();
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        self.since(rhs)
    }
}

/// A span of simulated time, in whole seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl Duration {
    /// A zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        Duration(mins * 60)
    }

    /// Returns the duration in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

/// A shared, monotonically advancing simulated clock.
///
/// Cloning a `SimClock` yields a handle to the *same* underlying clock, so
/// the TV runtime, the proxy, and the study harness all observe a single
/// consistent timeline — mirroring the single wall clock of the physical
/// testbed.
///
/// # Examples
///
/// ```
/// use hbbtv_net::{Duration, SimClock, Timestamp};
///
/// let clock = SimClock::starting_at(Timestamp::from_unix(1_700_000_000));
/// let handle = clock.clone();
/// clock.advance(Duration::from_secs(10));
/// assert_eq!(handle.now().as_unix(), 1_700_000_010);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock starting at the paper's measurement-window start.
    pub fn new() -> Self {
        Self::starting_at(Timestamp::MEASUREMENT_START)
    }

    /// Creates a clock starting at an arbitrary instant.
    pub fn starting_at(start: Timestamp) -> Self {
        SimClock {
            now: Arc::new(AtomicU64::new(start.as_unix())),
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> Timestamp {
        Timestamp(self.now.load(Ordering::SeqCst))
    }

    /// Advances the clock by `d` and returns the new instant.
    pub fn advance(&self, d: Duration) -> Timestamp {
        Timestamp(self.now.fetch_add(d.as_secs(), Ordering::SeqCst) + d.as_secs())
    }

    /// Jumps the clock forward to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current instant; simulated time
    /// never flows backwards.
    pub fn jump_to(&self, t: Timestamp) {
        let cur = self.now();
        assert!(
            t >= cur,
            "SimClock::jump_to would move time backwards ({t} < {cur})"
        );
        self.now.store(t.as_unix(), Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic_round_trips() {
        let t = Timestamp::from_unix(100);
        let later = t + Duration::from_secs(42);
        assert_eq!(later.as_unix(), 142);
        assert_eq!(later - t, Duration::from_secs(42));
        assert_eq!(t - later, Duration::ZERO, "subtraction saturates");
    }

    #[test]
    fn measurement_window_bounds_are_inclusive() {
        assert!(Timestamp::MEASUREMENT_START.in_measurement_window());
        assert!(Timestamp::MEASUREMENT_END.in_measurement_window());
        assert!(
            !Timestamp::from_unix(Timestamp::MEASUREMENT_START.as_unix() - 1)
                .in_measurement_window()
        );
        assert!(
            !Timestamp::from_unix(Timestamp::MEASUREMENT_END.as_unix() + 1).in_measurement_window()
        );
    }

    #[test]
    fn hour_of_day_wraps_at_midnight() {
        // 1_690_848_000 is a UTC midnight (divisible by 86_400).
        assert_eq!(Timestamp::MEASUREMENT_START.as_unix() % 86_400, 0);
        assert_eq!(Timestamp::MEASUREMENT_START.hour_of_day(), 0);
        let five_pm = Timestamp::MEASUREMENT_START + Duration::from_secs(17 * 3600);
        assert_eq!(five_pm.hour_of_day(), 17);
        let next_midnight = Timestamp::MEASUREMENT_START + Duration::from_secs(24 * 3600);
        assert_eq!(next_midnight.hour_of_day(), 0);
        assert_eq!(
            next_midnight.day_index(),
            Timestamp::MEASUREMENT_START.day_index() + 1
        );
    }

    #[test]
    fn clock_handles_share_state() {
        let clock = SimClock::new();
        let handle = clock.clone();
        let before = handle.now();
        clock.advance(Duration::from_mins(2));
        assert_eq!(handle.now(), before + Duration::from_secs(120));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn clock_refuses_to_rewind() {
        let clock = SimClock::new();
        clock.jump_to(Timestamp::from_unix(0));
    }

    #[test]
    fn duration_display_and_sum() {
        assert_eq!(Duration::from_mins(2).to_string(), "120s");
        assert_eq!(
            Duration::from_secs(1) + Duration::from_secs(2),
            Duration::from_secs(3)
        );
    }
}
