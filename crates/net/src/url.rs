//! URL parsing and manipulation.
//!
//! A deliberately small URL model covering exactly what HbbTV traffic
//! analysis needs: scheme, host, optional port, path, and query parameters.
//! Fragments are accepted and discarded (they never reach the network).

use crate::domain::{Etld1, Host};
use crate::error::ParseUrlError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The transport scheme of a [`Url`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Plain-text HTTP. The vast majority of HbbTV traffic in the paper
    /// (Table I reports HTTPS shares between 0.61% and 7.47%).
    Http,
    /// TLS-protected HTTP.
    Https,
}

impl Scheme {
    /// The default port for the scheme (80 or 443).
    pub fn default_port(self) -> u16 {
        match self {
            Scheme::Http => 80,
            Scheme::Https => 443,
        }
    }

    /// The scheme name without the `://` separator.
    pub fn as_str(self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed absolute URL.
///
/// # Examples
///
/// ```
/// use hbbtv_net::{Url, Scheme};
///
/// let url: Url = "http://hbbtv.rtl.de/start?cid=rtl&uid=abc123".parse()?;
/// assert_eq!(url.scheme(), Scheme::Http);
/// assert_eq!(url.path(), "/start");
/// assert_eq!(url.query_param("uid"), Some("abc123"));
/// assert_eq!(url.etld1().as_str(), "rtl.de");
/// # Ok::<(), hbbtv_net::ParseUrlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    scheme: Scheme,
    host: Host,
    etld1: Etld1,
    port: Option<u16>,
    path: String,
    query: Vec<(String, String)>,
}

impl Url {
    /// Parses an absolute `http`/`https` URL.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseUrlError`] when the scheme is missing or
    /// unsupported, or the host/port are malformed.
    pub fn parse(s: &str) -> Result<Self, ParseUrlError> {
        let (scheme, rest) = match s.split_once("://") {
            Some(("http", rest)) => (Scheme::Http, rest),
            Some(("https", rest)) => (Scheme::Https, rest),
            Some((other, _)) => return Err(ParseUrlError::UnsupportedScheme(other.to_string())),
            None => return Err(ParseUrlError::MissingScheme),
        };
        // Strip fragment first; it never reaches the wire.
        let rest = rest.split('#').next().unwrap_or(rest);
        let (authority, path_query) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => match rest.find('?') {
                Some(i) => (&rest[..i], &rest[i..]),
                None => (rest, ""),
            },
        };
        let (host_str, port) = match authority.rsplit_once(':') {
            Some((h, p)) if !p.is_empty() && p.bytes().all(|b| b.is_ascii_digit()) => {
                let port: u16 = p
                    .parse()
                    .map_err(|_| ParseUrlError::InvalidPort(p.to_string()))?;
                (h, Some(port))
            }
            Some((_, p)) if p.bytes().any(|b| !b.is_ascii_digit()) && !p.is_empty() => {
                return Err(ParseUrlError::InvalidPort(p.to_string()))
            }
            _ => (authority, None),
        };
        let host = Host::parse(host_str)?;
        let etld1 = host.etld1();
        let (path, query_str) = match path_query.split_once('?') {
            Some((p, q)) => (p, q),
            None => (path_query, ""),
        };
        let path = if path.is_empty() { "/" } else { path }.to_string();
        let query = parse_query(query_str);
        Ok(Url {
            scheme,
            host,
            etld1,
            port,
            path,
            query,
        })
    }

    /// The transport scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// `true` when the scheme is HTTPS.
    pub fn is_https(&self) -> bool {
        self.scheme == Scheme::Https
    }

    /// The host name.
    pub fn host(&self) -> &str {
        self.host.as_str()
    }

    /// The registrable domain of the host.
    pub fn etld1(&self) -> &Etld1 {
        &self.etld1
    }

    /// The effective port (explicit, or the scheme default).
    pub fn port(&self) -> u16 {
        self.port.unwrap_or_else(|| self.scheme.default_port())
    }

    /// The path component, always starting with `/`.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Query parameters, in order of appearance.
    pub fn query_pairs(&self) -> &[(String, String)] {
        &self.query
    }

    /// The first value of a named query parameter, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Returns a copy of this URL with one query parameter appended.
    pub fn with_param(&self, name: &str, value: &str) -> Url {
        let mut u = self.clone();
        u.query.push((name.to_string(), value.to_string()));
        u
    }

    /// The path plus serialized query string (`/p?a=b`). Useful for
    /// filter-list matching, which operates on the full URL text.
    pub fn path_and_query(&self) -> String {
        if self.query.is_empty() {
            self.path.clone()
        } else {
            format!("{}?{}", self.path, serialize_query(&self.query))
        }
    }

    /// Appends the serialized URL to `buf` by direct string pushes,
    /// bypassing the `fmt` machinery. This is the hot path for
    /// filter-list matching, where a URL is serialized once per
    /// exchange; output is identical to [`fmt::Display`].
    pub fn write_into(&self, buf: &mut String) {
        buf.push_str(self.scheme.as_str());
        buf.push_str("://");
        buf.push_str(self.host.as_str());
        if let Some(p) = self.port {
            buf.push(':');
            push_u16(buf, p);
        }
        buf.push_str(&self.path);
        let mut sep = '?';
        for (k, v) in &self.query {
            buf.push(sep);
            sep = '&';
            buf.push_str(k);
            if !v.is_empty() {
                buf.push('=');
                buf.push_str(v);
            }
        }
    }

    /// The serialized URL as a fresh string; equivalent to
    /// `to_string()` but without per-pair allocations.
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(self.path.len() + self.host.as_str().len() + 24);
        self.write_into(&mut s);
        s
    }
}

fn push_u16(buf: &mut String, n: u16) {
    let mut digits = [0u8; 5];
    let mut i = digits.len();
    let mut n = u32::from(n);
    loop {
        i -= 1;
        digits[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    buf.push_str(std::str::from_utf8(&digits[i..]).expect("ASCII digits"));
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    if q.is_empty() {
        return Vec::new();
    }
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect()
}

fn serialize_query(pairs: &[(String, String)]) -> String {
    pairs
        .iter()
        .map(|(k, v)| {
            if v.is_empty() {
                k.clone()
            } else {
                format!("{k}={v}")
            }
        })
        .collect::<Vec<_>>()
        .join("&")
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}", self.scheme, self.host)?;
        if let Some(p) = self.port {
            write!(f, ":{p}")?;
        }
        f.write_str(&self.path)?;
        if !self.query.is_empty() {
            write!(f, "?{}", serialize_query(&self.query))?;
        }
        Ok(())
    }
}

impl FromStr for Url {
    type Err = ParseUrlError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Url::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_url() {
        let u = Url::parse("https://a.b.example.de:8443/x/y?k=v&flag&n=2#frag").unwrap();
        assert_eq!(u.scheme(), Scheme::Https);
        assert_eq!(u.host(), "a.b.example.de");
        assert_eq!(u.port(), 8443);
        assert_eq!(u.path(), "/x/y");
        assert_eq!(u.query_param("k"), Some("v"));
        assert_eq!(u.query_param("flag"), Some(""));
        assert_eq!(u.query_param("n"), Some("2"));
        assert_eq!(u.query_param("frag"), None, "fragment is dropped");
    }

    #[test]
    fn defaults_for_bare_authority() {
        let u = Url::parse("http://tvping.com").unwrap();
        assert_eq!(u.path(), "/");
        assert_eq!(u.port(), 80);
        assert!(!u.is_https());
        assert_eq!(u.to_string(), "http://tvping.com/");
    }

    #[test]
    fn query_without_path() {
        let u = Url::parse("http://x.de?a=1").unwrap();
        assert_eq!(u.path(), "/");
        assert_eq!(u.query_param("a"), Some("1"));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(
            Url::parse("ftp://x.de"),
            Err(ParseUrlError::UnsupportedScheme("ftp".into()))
        );
        assert_eq!(
            Url::parse("no-scheme.de"),
            Err(ParseUrlError::MissingScheme)
        );
        assert!(matches!(
            Url::parse("http://"),
            Err(ParseUrlError::EmptyHost)
        ));
        assert!(matches!(
            Url::parse("http://h.de:70000/"),
            Err(ParseUrlError::InvalidPort(_))
        ));
    }

    #[test]
    fn write_into_agrees_with_display() {
        for s in [
            "http://tvping.com/ping?c=rtl&s=1&u=abc",
            "https://hbbtv.ard.de/app/index.html",
            "http://x.de:8080/",
            "http://x.de/p?flag&n=2",
            "http://x.de",
        ] {
            let u = Url::parse(s).unwrap();
            assert_eq!(u.to_text(), u.to_string(), "for {s}");
        }
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "http://tvping.com/ping?c=rtl&s=1&u=abc",
            "https://hbbtv.ard.de/app/index.html",
            "http://x.de:8080/",
        ] {
            let u = Url::parse(s).unwrap();
            assert_eq!(Url::parse(&u.to_string()).unwrap(), u);
        }
    }

    #[test]
    fn with_param_appends() {
        let u = Url::parse("http://x.de/p").unwrap().with_param("uid", "42");
        assert_eq!(u.to_string(), "http://x.de/p?uid=42");
        assert_eq!(u.path_and_query(), "/p?uid=42");
    }
}
