//! HTTP message types.
//!
//! These model exactly the observables mitmproxy handed to the paper's
//! analysis pipeline: method, URL, headers (notably `Referer`, `Cookie`,
//! `Set-Cookie`, `Content-Type`), status, body bytes, and timestamps.

use crate::cookie::SetCookie;
use crate::time::Timestamp;
use crate::url::Url;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An HTTP request method. HbbTV traffic is GET-dominated with POST
/// beacons; the remaining methods exist for completeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Resource fetch (pages, scripts, pixels).
    Get,
    /// Data upload (analytics beacons).
    Post,
    /// Header-only probe.
    Head,
    /// CORS preflight.
    Options,
}

impl Method {
    /// The canonical upper-case token.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
            Method::Options => "OPTIONS",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An HTTP status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Status(pub u16);

impl Status {
    /// 200 OK — required by the tracking-pixel heuristic (§V-D1).
    pub const OK: Status = Status(200);
    /// 302 Found — the redirect used by cookie syncing (§V-C3).
    pub const FOUND: Status = Status(302);
    /// 204 No Content — common for beacons.
    pub const NO_CONTENT: Status = Status(204);
    /// 404 Not Found.
    pub const NOT_FOUND: Status = Status(404);

    /// Whether this is a 3xx redirect.
    pub fn is_redirect(self) -> bool {
        (300..400).contains(&self.0)
    }

    /// Whether this is a 2xx success.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The response content type, as carried in the `Content-Type` header.
///
/// The tracking heuristics of §V-D dispatch on this: the pixel heuristic
/// requires an image type, the fingerprinting heuristic a JavaScript type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContentType {
    /// `text/html` — application pages.
    Html,
    /// `application/javascript` — scripts (fingerprinting lives here).
    JavaScript,
    /// `image/gif`, `image/png`, … — images (tracking pixels live here).
    Image,
    /// `application/json` — API/beacon responses.
    Json,
    /// `text/css`.
    Css,
    /// `video/mp4` and streaming manifests.
    Video,
    /// `text/plain` or anything else.
    Other,
}

impl ContentType {
    /// Whether the HTTP `Content-Type` indicates an image.
    pub fn is_image(self) -> bool {
        self == ContentType::Image
    }

    /// Whether the HTTP `Content-Type` indicates JavaScript.
    pub fn is_javascript(self) -> bool {
        self == ContentType::JavaScript
    }

    /// A representative MIME string.
    pub fn mime(self) -> &'static str {
        match self {
            ContentType::Html => "text/html",
            ContentType::JavaScript => "application/javascript",
            ContentType::Image => "image/gif",
            ContentType::Json => "application/json",
            ContentType::Css => "text/css",
            ContentType::Video => "video/mp4",
            ContentType::Other => "application/octet-stream",
        }
    }
}

impl fmt::Display for ContentType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mime())
    }
}

/// A single HTTP header (name, value).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Header {
    /// Header name (case preserved as given; lookups are case-insensitive).
    pub name: String,
    /// Header value.
    pub value: String,
}

/// An ordered header collection with case-insensitive lookup.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Headers(Vec<Header>);

impl Headers {
    /// Creates an empty header collection.
    pub fn new() -> Self {
        Headers(Vec::new())
    }

    /// Appends a header.
    pub fn push(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.0.push(Header {
            name: name.into(),
            value: value.into(),
        });
    }

    /// First value of a header, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|h| h.name.eq_ignore_ascii_case(name))
            .map(|h| h.value.as_str())
    }

    /// All values of a header, case-insensitively (e.g. repeated
    /// `Set-Cookie`).
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.0
            .iter()
            .filter(move |h| h.name.eq_ignore_ascii_case(name))
            .map(|h| h.value.as_str())
    }

    /// Number of headers.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over all headers in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Header> {
        self.0.iter()
    }
}

impl FromIterator<(String, String)> for Headers {
    fn from_iter<T: IntoIterator<Item = (String, String)>>(iter: T) -> Self {
        let mut h = Headers::new();
        for (n, v) in iter {
            h.push(n, v);
        }
        h
    }
}

/// A captured HTTP request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Absolute request URL.
    pub url: Url,
    /// Request headers.
    pub headers: Headers,
    /// Request body (POST beacons carry key/value payloads here).
    pub body: String,
    /// Instant the request left the TV.
    pub timestamp: Timestamp,
}

impl Request {
    /// Starts building a GET request for `url`.
    pub fn get(url: Url) -> RequestBuilder {
        RequestBuilder::new(Method::Get, url)
    }

    /// Starts building a POST request for `url`.
    pub fn post(url: Url) -> RequestBuilder {
        RequestBuilder::new(Method::Post, url)
    }

    /// The `Referer` header, parsed as a URL, if present and valid.
    pub fn referer(&self) -> Option<Url> {
        self.headers.get("Referer").and_then(|v| Url::parse(v).ok())
    }

    /// The `Cookie` header raw value, if present.
    pub fn cookie_header(&self) -> Option<&str> {
        self.headers.get("Cookie")
    }

    /// All text the analysis searches for leaked data: URL + body.
    pub fn searchable_text(&self) -> String {
        format!("{} {}", self.url, self.body)
    }
}

/// Builder for [`Request`].
#[derive(Debug)]
pub struct RequestBuilder {
    method: Method,
    url: Url,
    headers: Headers,
    body: String,
    timestamp: Timestamp,
}

impl RequestBuilder {
    fn new(method: Method, url: Url) -> Self {
        RequestBuilder {
            method,
            url,
            headers: Headers::new(),
            body: String::new(),
            timestamp: Timestamp::default(),
        }
    }

    /// Adds a header.
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push(name, value);
        self
    }

    /// Sets the body.
    pub fn body(mut self, body: impl Into<String>) -> Self {
        self.body = body.into();
        self
    }

    /// Sets the capture timestamp.
    pub fn at(mut self, t: Timestamp) -> Self {
        self.timestamp = t;
        self
    }

    /// Finalizes the request.
    pub fn build(self) -> Request {
        Request {
            method: self.method,
            url: self.url,
            headers: self.headers,
            body: self.body,
            timestamp: self.timestamp,
        }
    }
}

/// A captured HTTP response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// Declared content type.
    pub content_type: ContentType,
    /// Response headers (including any `Set-Cookie` / `Location`).
    pub headers: Headers,
    /// Body size in bytes (the pixel heuristic needs only the size).
    pub body_len: usize,
    /// Body text for content inspection (scripts, policies). Empty for
    /// binary payloads; `body_len` still reflects the binary size.
    pub body: String,
}

impl Response {
    /// Starts building a response with `status`.
    pub fn builder(status: Status) -> ResponseBuilder {
        ResponseBuilder::new(status)
    }

    /// All `Set-Cookie` headers, parsed; invalid ones are skipped.
    pub fn set_cookies(&self) -> Vec<SetCookie> {
        self.headers
            .get_all("Set-Cookie")
            .filter_map(|v| SetCookie::parse(v).ok())
            .collect()
    }

    /// The `Location` redirect target, if present and valid.
    pub fn location(&self) -> Option<Url> {
        self.headers
            .get("Location")
            .and_then(|v| Url::parse(v).ok())
    }
}

/// Builder for [`Response`].
#[derive(Debug)]
pub struct ResponseBuilder {
    status: Status,
    content_type: ContentType,
    headers: Headers,
    body_len: Option<usize>,
    body: String,
}

impl ResponseBuilder {
    fn new(status: Status) -> Self {
        ResponseBuilder {
            status,
            content_type: ContentType::Other,
            headers: Headers::new(),
            body_len: None,
            body: String::new(),
        }
    }

    /// Sets the content type.
    pub fn content_type(mut self, ct: ContentType) -> Self {
        self.content_type = ct;
        self
    }

    /// Adds a header.
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push(name, value);
        self
    }

    /// Adds a `Set-Cookie` header.
    pub fn set_cookie(mut self, sc: &SetCookie) -> Self {
        self.headers.push("Set-Cookie", sc.to_string());
        self
    }

    /// Sets a textual body (also sets `body_len` unless overridden).
    pub fn body(mut self, body: impl Into<String>) -> Self {
        self.body = body.into();
        self
    }

    /// Overrides the body length in bytes (for binary payloads such as a
    /// 43-byte 1×1 GIF whose bytes we do not materialize).
    pub fn body_len(mut self, len: usize) -> Self {
        self.body_len = Some(len);
        self
    }

    /// Finalizes the response.
    pub fn build(self) -> Response {
        let body_len = self.body_len.unwrap_or(self.body.len());
        Response {
            status: self.status,
            content_type: self.content_type,
            headers: self.headers,
            body_len,
            body: self.body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cookie::SetCookie;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let mut h = Headers::new();
        h.push("Content-Type", "image/gif");
        assert_eq!(h.get("content-type"), Some("image/gif"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("image/gif"));
        assert_eq!(h.get("missing"), None);
        assert_eq!(h.len(), 1);
        assert!(!h.is_empty());
    }

    #[test]
    fn repeated_set_cookie_headers_are_all_visible() {
        let r = Response::builder(Status::OK)
            .set_cookie(&SetCookie::session("a", "1"))
            .set_cookie(&SetCookie::session("b", "2"))
            .build();
        let cookies = r.set_cookies();
        assert_eq!(cookies.len(), 2);
        assert_eq!(cookies[0].cookie.name, "a");
        assert_eq!(cookies[1].cookie.name, "b");
    }

    #[test]
    fn request_referer_parses() {
        let req = Request::get(url("http://tvping.com/ping"))
            .header("Referer", "http://hbbtv.rtl.de/start")
            .at(Timestamp::from_unix(7))
            .build();
        assert_eq!(req.referer().unwrap().host(), "hbbtv.rtl.de");
        assert_eq!(req.timestamp, Timestamp::from_unix(7));
    }

    #[test]
    fn searchable_text_includes_url_and_body() {
        let req = Request::post(url("http://an.xiti.com/hit"))
            .body("genre=Children&show=PawPatrol")
            .build();
        let text = req.searchable_text();
        assert!(text.contains("an.xiti.com"));
        assert!(text.contains("PawPatrol"));
    }

    #[test]
    fn body_len_override_models_binary_bodies() {
        let r = Response::builder(Status::OK)
            .content_type(ContentType::Image)
            .body_len(43)
            .build();
        assert_eq!(r.body_len, 43);
        assert!(r.body.is_empty());
        assert!(r.status.is_success());
    }

    #[test]
    fn status_classes() {
        assert!(Status::FOUND.is_redirect());
        assert!(!Status::OK.is_redirect());
        assert!(Status::NO_CONTENT.is_success());
        assert!(!Status::NOT_FOUND.is_success());
    }

    #[test]
    fn redirect_location_parses() {
        let r = Response::builder(Status::FOUND)
            .header("Location", "http://partner.com/sync?uid=xyz")
            .build();
        assert_eq!(r.location().unwrap().host(), "partner.com");
    }
}
