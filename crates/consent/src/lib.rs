//! Consent notices, the screenshot codebook, and dark-pattern analysis.
//!
//! §VI of the paper analyzes 41,617 screenshots: two authors devised a
//! codebook for HbbTV overlay types (Table IV), annotated which
//! screenshots show privacy-related information (Table V), catalogued the
//! twelve recurring consent-notice brandings, and assessed nudging — most
//! notably that the HbbTV cursor *must* rest on some button, and every
//! single notice places it on "Accept".
//!
//! This crate provides:
//!
//! * [`OverlayKind`] / [`PrivacyInfoKind`] — the annotation codebook.
//! * [`ScreenContent`] and [`annotate`] — structured screenshots and the
//!   classifier that plays the role of the human coders.
//! * [`ConsentNotice`], [`NoticeLayer`], [`NoticeBranding`] — the notice
//!   taxonomy, with [`branding_catalog`] reconstructing all twelve
//!   interface styles of §VI-B.
//! * [`NudgingReport`] — the dark-pattern assessment (default focus,
//!   hidden decline, pre-ticked checkboxes, modality).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annotate;
mod catalog;
mod notice;
mod nudging;

pub use annotate::{annotate, Annotation, AppSurface, OverlayKind, PrivacyInfoKind, ScreenContent};
pub use catalog::branding_catalog;
pub use notice::{
    ButtonAction, CategoryCheckbox, ConsentCategory, ConsentNotice, NoticeBranding, NoticeButton,
    NoticeLayer,
};
pub use nudging::{analyze_nudging, NudgingReport};
