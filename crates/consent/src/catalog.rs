//! The catalog of the twelve notice interface styles (§VI-B).

use crate::notice::{
    ButtonAction, CategoryCheckbox, ConsentCategory, ConsentNotice, NoticeBranding, NoticeButton,
    NoticeLayer,
};

fn btn(action: ButtonAction, highlighted: bool) -> NoticeButton {
    NoticeButton {
        action,
        highlighted,
    }
}

/// A first layer whose cursor rests on a highlighted "Accept all" button —
/// the §VI-B finding common to all twelve styles.
fn first_layer(extra: &[ButtonAction]) -> NoticeLayer {
    let mut buttons = vec![btn(ButtonAction::AcceptAll, true)];
    buttons.extend(extra.iter().map(|&a| btn(a, false)));
    NoticeLayer {
        buttons,
        checkboxes: vec![],
        default_focus: 0,
    }
}

/// A settings layer offering per-category checkboxes and a save button.
fn settings_layer(pre_ticked: bool) -> NoticeLayer {
    NoticeLayer {
        buttons: vec![
            btn(ButtonAction::AcceptAll, true),
            btn(ButtonAction::SaveSelection, false),
        ],
        checkboxes: vec![
            CategoryCheckbox {
                category: ConsentCategory::Necessary,
                pre_ticked: true,
                immutable: true,
            },
            CategoryCheckbox {
                category: ConsentCategory::Functional,
                pre_ticked,
                immutable: false,
            },
            CategoryCheckbox {
                category: ConsentCategory::Marketing,
                pre_ticked,
                immutable: false,
            },
        ],
        default_focus: 0,
    }
}

/// The confirmation layer some notices show after a deselection.
fn confirm_layer() -> NoticeLayer {
    NoticeLayer {
        buttons: vec![
            btn(ButtonAction::AcceptAll, true),
            btn(ButtonAction::ConfirmDeselection, false),
        ],
        checkboxes: vec![],
        default_focus: 0,
    }
}

/// Reconstructs a notice in the given interface style, following the
/// §VI-B descriptions of each style's layer-1 options, layers, modality,
/// and checkbox behavior.
///
/// # Examples
///
/// ```
/// use hbbtv_consent::{branding_catalog, NoticeBranding, ButtonAction};
/// let zdf = branding_catalog(NoticeBranding::ZdfModal);
/// assert!(zdf.modal);
/// assert!(zdf.has_accept_all());
/// assert_eq!(zdf.first_layer().focused_button().action, ButtonAction::AcceptAll);
/// ```
pub fn branding_catalog(branding: NoticeBranding) -> ConsentNotice {
    use ButtonAction::*;
    use NoticeBranding::*;
    match branding {
        // 1) RTL Germany: "Settings" next to accept; settings layer.
        RtlGermany => ConsentNotice::new(
            branding,
            vec![first_layer(&[Settings]), settings_layer(false)],
            false,
            0.40,
        ),
        // 2) P7S1 non-modal: single "Settings or Decline" button.
        ProSiebenSat1NonModal => ConsentNotice::new(
            branding,
            vec![first_layer(&[SettingsOrDecline]), settings_layer(false)],
            false,
            0.35,
        ),
        // 3) P7S1 full-screen modal variant.
        ProSiebenSat1Modal => ConsentNotice::new(
            branding,
            vec![first_layer(&[SettingsOrDecline]), settings_layer(false)],
            true,
            1.0,
        ),
        // 4) QVC: "(Privacy) Settings" plus an explicit decline.
        Qvc => ConsentNotice::new(
            branding,
            vec![first_layer(&[Settings, Decline]), settings_layer(false)],
            false,
            0.30,
        ),
        // 5) DMAX/TLC/CC shared style: "Privacy" only.
        DmaxTlcComedyCentral => {
            ConsentNotice::new(branding, vec![first_layer(&[Privacy])], false, 0.30)
        }
        // 6) HSE.
        Hse => ConsentNotice::new(
            branding,
            vec![first_layer(&[Settings]), settings_layer(false)],
            false,
            0.35,
        ),
        // 7) Bibel TV: "Privacy" and "Settings"; layer 2 lets users
        //    deselect Google Analytics — pre-ticked (ECJ-non-compliant).
        BibelTv => {
            let mut l2 = settings_layer(true);
            l2.checkboxes.push(CategoryCheckbox {
                category: ConsentCategory::Service("Google Analytics".to_string()),
                pre_ticked: true,
                immutable: false,
            });
            ConsentNotice::new(
                branding,
                vec![first_layer(&[Privacy, Settings]), l2],
                false,
                0.35,
            )
        }
        // 8) RTL Zwei: unique category choice on the *first* layer with
        //    pre-ticked boxes, plus "Only necessary".
        RtlZwei => {
            let mut l1 = first_layer(&[OnlyNecessary]);
            l1.checkboxes = vec![
                CategoryCheckbox {
                    category: ConsentCategory::Necessary,
                    pre_ticked: true,
                    immutable: true,
                },
                CategoryCheckbox {
                    category: ConsentCategory::Functional,
                    pre_ticked: true,
                    immutable: false,
                },
                CategoryCheckbox {
                    category: ConsentCategory::Marketing,
                    pre_ticked: true,
                    immutable: false,
                },
            ];
            ConsentNotice::new(branding, vec![l1], false, 0.45)
        }
        // 9) TLC (Blue run only): "Privacy" and "Settings", deep layers.
        Tlc => ConsentNotice::new(
            branding,
            vec![
                first_layer(&[Privacy, Settings]),
                settings_layer(false),
                confirm_layer(),
            ],
            false,
            0.40,
        ),
        // 10) ZDF full-screen modal with explicit decline and layered
        //     settings (Blue run only).
        ZdfModal => ConsentNotice::new(
            branding,
            vec![
                first_layer(&[Settings, Decline]),
                settings_layer(false),
                confirm_layer(),
            ],
            true,
            1.0,
        ),
        // 11) COUCHPLAY: "Settings or Decline" plus a partner-list link
        //     (whose target never showed up in screenshots).
        Couchplay => ConsentNotice::new(
            branding,
            vec![first_layer(&[SettingsOrDecline, PartnerList])],
            false,
            0.35,
        ),
        // 12) Unbranded shared banner: "Settings"; layer 2 has the
        //     '?'-marked checkboxes (modelled as pre-ticked).
        GenericUnbranded => ConsentNotice::new(
            branding,
            vec![first_layer(&[Settings]), settings_layer(true)],
            false,
            0.30,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nudging::analyze_nudging;

    #[test]
    fn all_twelve_brandings_build() {
        for b in NoticeBranding::ALL {
            let n = branding_catalog(b);
            assert!(n.has_accept_all(), "{b:?} lacks accept-all");
        }
    }

    #[test]
    fn default_focus_is_accept_everywhere() {
        // The §VI "Nudging" finding: for all 12 types the cursor defaults
        // to Accept on layer 1, highlighted.
        for b in NoticeBranding::ALL {
            let n = branding_catalog(b);
            let focused = n.first_layer().focused_button();
            assert!(focused.action.grants_full_consent(), "{b:?}");
            assert!(focused.highlighted, "{b:?} accept not highlighted");
        }
    }

    #[test]
    fn only_two_styles_are_modal() {
        let modal: Vec<NoticeBranding> = NoticeBranding::ALL
            .into_iter()
            .filter(|&b| branding_catalog(b).modal)
            .collect();
        assert_eq!(
            modal,
            vec![NoticeBranding::ProSiebenSat1Modal, NoticeBranding::ZdfModal]
        );
    }

    #[test]
    fn non_modal_notices_cover_less_than_half_the_screen() {
        for b in NoticeBranding::ALL {
            let n = branding_catalog(b);
            if !n.modal {
                assert!(
                    n.screen_coverage < 0.5,
                    "{b:?} covers {}",
                    n.screen_coverage
                );
            }
        }
    }

    #[test]
    fn rtl_zwei_has_first_layer_categories() {
        let n = branding_catalog(NoticeBranding::RtlZwei);
        assert_eq!(n.layers.len(), 1);
        assert_eq!(n.first_layer().checkboxes.len(), 3);
        assert!(n.first_layer().offers_direct_decline());
        assert!(n.first_layer().pre_ticked_count() >= 2);
    }

    #[test]
    fn bibel_tv_second_layer_has_ga_service_checkbox() {
        let n = branding_catalog(NoticeBranding::BibelTv);
        let has_ga = n.layers[1]
            .checkboxes
            .iter()
            .any(|c| matches!(&c.category, ConsentCategory::Service(s) if s == "Google Analytics"));
        assert!(has_ga);
    }

    #[test]
    fn couchplay_links_partner_list() {
        let n = branding_catalog(NoticeBranding::Couchplay);
        assert!(n
            .first_layer()
            .buttons
            .iter()
            .any(|b| b.action == ButtonAction::PartnerList));
    }

    #[test]
    fn explicit_decline_only_where_the_paper_saw_it() {
        // Types 4 (QVC) and 10 (ZDF) have an explicit Decline; RTL Zwei
        // has Only-necessary.
        for b in NoticeBranding::ALL {
            let n = branding_catalog(b);
            let direct = n.first_layer().offers_direct_decline();
            let expected = matches!(
                b,
                NoticeBranding::Qvc | NoticeBranding::ZdfModal | NoticeBranding::RtlZwei
            );
            assert_eq!(direct, expected, "{b:?}");
        }
    }

    #[test]
    fn every_style_nudges_toward_accept() {
        for b in NoticeBranding::ALL {
            let report = analyze_nudging(&branding_catalog(b));
            assert!(report.default_focus_on_accept, "{b:?}");
        }
    }
}
