//! The screenshot codebook and the annotation classifier.
//!
//! The paper's two coders manually annotated 41,617 screenshots in two
//! rounds: first the HbbTV overlay type (Table IV), then — for privacy
//! screenshots — the kind of privacy information shown (Table V and
//! §VI-B). Our screenshots are structured [`ScreenContent`] values, and
//! [`annotate`] applies the same codebook deterministically.

use crate::notice::NoticeBranding;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The overlay taxonomy of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OverlayKind {
    /// "No Sign." — the channel transmitted no usable signal.
    NoSignal,
    /// "CTM" — a channel technical message (e.g. HbbTV unavailable).
    ChannelTechMessage,
    /// "TV Only" — plain program, no HbbTV overlay.
    TvOnly,
    /// "Media Lib." — a media library / on-demand dashboard.
    MediaLibrary,
    /// "Privacy" — consent notice, privacy policy, or hybrid.
    Privacy,
    /// "Other" — any other HbbTV overlay (games, tickers, shops, ads).
    Other,
}

impl OverlayKind {
    /// Column order of Table IV.
    pub const TABLE_ORDER: [OverlayKind; 6] = [
        OverlayKind::NoSignal,
        OverlayKind::ChannelTechMessage,
        OverlayKind::TvOnly,
        OverlayKind::MediaLibrary,
        OverlayKind::Privacy,
        OverlayKind::Other,
    ];

    /// Column label as printed in Table IV.
    pub fn label(self) -> &'static str {
        match self {
            OverlayKind::NoSignal => "No Sign.",
            OverlayKind::ChannelTechMessage => "CTM",
            OverlayKind::TvOnly => "TV Only",
            OverlayKind::MediaLibrary => "Media Lib.",
            OverlayKind::Privacy => "Privacy",
            OverlayKind::Other => "Other",
        }
    }
}

impl fmt::Display for OverlayKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Second-round annotation: what kind of privacy information a "Privacy"
/// screenshot shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrivacyInfoKind {
    /// A consent notice (with its branding and the visible layer,
    /// 0-based).
    ConsentNotice {
        /// Interface style of the notice.
        branding: NoticeBranding,
        /// Which layer is on screen.
        layer: usize,
    },
    /// A privacy policy text.
    PrivacyPolicy,
    /// A split screen of policy text and cookie controls (seen on RBB and
    /// MDR in the Red run).
    HybridPolicyAndControls,
}

/// Non-privacy overlay content an HbbTV app can display.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppSurface {
    /// A media library / start-bar dashboard.
    MediaLibrary,
    /// A teletext-style news/info service.
    InfoText,
    /// An interactive game.
    Game,
    /// A shopping overlay.
    Shop,
    /// An advertisement overlay (§VI-B notes one location-targeted ad).
    Advertisement,
}

/// A structured screenshot — everything the human coders could see.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScreenContent {
    /// Whether the channel transmitted a picture at all.
    pub signal: bool,
    /// A technical message replaced the program.
    pub tech_message: bool,
    /// The HbbTV app surface currently shown, if any.
    pub surface: Option<AppSurface>,
    /// A consent notice is on screen (branding, visible layer).
    pub notice: Option<(NoticeBranding, usize)>,
    /// A privacy policy text fills (part of) the screen.
    pub policy: bool,
    /// Cookie controls are visible alongside the policy (hybrid view).
    pub cookie_controls: bool,
    /// A "Privacy" / "Cookie Settings" button or text is visible
    /// somewhere (the §VI-B "Pointers to Privacy Information").
    pub privacy_pointer: bool,
}

impl ScreenContent {
    /// A plain TV picture with no HbbTV content.
    pub fn tv_only() -> Self {
        ScreenContent {
            signal: true,
            tech_message: false,
            surface: None,
            notice: None,
            policy: false,
            cookie_controls: false,
            privacy_pointer: false,
        }
    }

    /// A screen without signal.
    pub fn no_signal() -> Self {
        ScreenContent {
            signal: false,
            ..Self::tv_only()
        }
    }
}

/// The coder's verdict for one screenshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Annotation {
    /// Round-1 overlay classification (Table IV).
    pub overlay: OverlayKind,
    /// Round-2 privacy-information classification, for Privacy overlays.
    pub privacy: Option<PrivacyInfoKind>,
    /// Whether a pointer to privacy information is visible.
    pub privacy_pointer: bool,
}

impl Annotation {
    /// Whether the screenshot shows privacy-related information
    /// (the Table V "Priv." count).
    pub fn shows_privacy_info(&self) -> bool {
        self.overlay == OverlayKind::Privacy
    }
}

/// Applies the codebook to a structured screenshot.
///
/// Precedence follows the coders' scheme: absent signal and technical
/// messages first, then privacy content (which overlays everything),
/// then the app surface, then plain TV.
///
/// # Examples
///
/// ```
/// use hbbtv_consent::{annotate, OverlayKind, ScreenContent};
/// let a = annotate(&ScreenContent::tv_only());
/// assert_eq!(a.overlay, OverlayKind::TvOnly);
/// ```
pub fn annotate(screen: &ScreenContent) -> Annotation {
    let overlay = if !screen.signal {
        OverlayKind::NoSignal
    } else if screen.tech_message {
        OverlayKind::ChannelTechMessage
    } else if screen.notice.is_some() || screen.policy {
        OverlayKind::Privacy
    } else if screen.surface == Some(AppSurface::MediaLibrary) {
        OverlayKind::MediaLibrary
    } else if screen.surface.is_some() {
        OverlayKind::Other
    } else {
        OverlayKind::TvOnly
    };
    let privacy = if overlay == OverlayKind::Privacy {
        Some(match screen.notice {
            Some((branding, layer)) => PrivacyInfoKind::ConsentNotice { branding, layer },
            None if screen.cookie_controls => PrivacyInfoKind::HybridPolicyAndControls,
            None => PrivacyInfoKind::PrivacyPolicy,
        })
    } else {
        None
    };
    Annotation {
        overlay,
        privacy,
        privacy_pointer: screen.privacy_pointer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_no_signal_beats_everything() {
        let mut s = ScreenContent::no_signal();
        s.notice = Some((NoticeBranding::Qvc, 0));
        let a = annotate(&s);
        assert_eq!(a.overlay, OverlayKind::NoSignal);
        assert_eq!(a.privacy, None);
        assert!(!a.shows_privacy_info());
    }

    #[test]
    fn tech_message_classified_as_ctm() {
        let mut s = ScreenContent::tv_only();
        s.tech_message = true;
        assert_eq!(annotate(&s).overlay, OverlayKind::ChannelTechMessage);
    }

    #[test]
    fn notice_classified_as_privacy_with_branding() {
        let mut s = ScreenContent::tv_only();
        s.notice = Some((NoticeBranding::RtlGermany, 1));
        let a = annotate(&s);
        assert_eq!(a.overlay, OverlayKind::Privacy);
        assert_eq!(
            a.privacy,
            Some(PrivacyInfoKind::ConsentNotice {
                branding: NoticeBranding::RtlGermany,
                layer: 1
            })
        );
        assert!(a.shows_privacy_info());
    }

    #[test]
    fn policy_and_hybrid_distinguished() {
        let mut s = ScreenContent::tv_only();
        s.policy = true;
        assert_eq!(annotate(&s).privacy, Some(PrivacyInfoKind::PrivacyPolicy));
        s.cookie_controls = true;
        assert_eq!(
            annotate(&s).privacy,
            Some(PrivacyInfoKind::HybridPolicyAndControls)
        );
    }

    #[test]
    fn media_library_and_other_surfaces() {
        let mut s = ScreenContent::tv_only();
        s.surface = Some(AppSurface::MediaLibrary);
        assert_eq!(annotate(&s).overlay, OverlayKind::MediaLibrary);
        s.surface = Some(AppSurface::Game);
        assert_eq!(annotate(&s).overlay, OverlayKind::Other);
        s.surface = Some(AppSurface::Advertisement);
        assert_eq!(annotate(&s).overlay, OverlayKind::Other);
    }

    #[test]
    fn privacy_pointer_is_carried_through() {
        let mut s = ScreenContent::tv_only();
        s.surface = Some(AppSurface::MediaLibrary);
        s.privacy_pointer = true;
        let a = annotate(&s);
        assert!(a.privacy_pointer);
        assert_eq!(a.overlay, OverlayKind::MediaLibrary);
    }

    #[test]
    fn notice_on_top_of_media_library_is_privacy() {
        let mut s = ScreenContent::tv_only();
        s.surface = Some(AppSurface::MediaLibrary);
        s.notice = Some((NoticeBranding::ZdfModal, 0));
        assert_eq!(annotate(&s).overlay, OverlayKind::Privacy);
    }

    #[test]
    fn table_order_covers_all_kinds() {
        assert_eq!(OverlayKind::TABLE_ORDER.len(), 6);
        assert_eq!(OverlayKind::MediaLibrary.to_string(), "Media Lib.");
    }
}
