//! Dark-pattern / nudging analysis of consent notices.

use crate::notice::ConsentNotice;
use serde::{Deserialize, Serialize};

/// The nudging assessment of one notice (§VI-B "Nudging and Dark
/// Patterns").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NudgingReport {
    /// The cursor initially rests on the accept-all button — the
    /// HbbTV-specific nudge: unlike the Web, the cursor *must* rest
    /// somewhere, and the notice chooses where.
    pub default_focus_on_accept: bool,
    /// The accept button is visually highlighted.
    pub accept_highlighted: bool,
    /// The first layer offers no direct decline; declining requires
    /// descending into deeper layers ("hiding options to decline on the
    /// second layer … nudges users towards accepting").
    pub decline_requires_deeper_layer: bool,
    /// Count of pre-ticked, changeable checkboxes across all layers
    /// (non-compliant per ECJ Planet49).
    pub pre_ticked_checkboxes: usize,
    /// The notice is modal, blocking TV watching until answered.
    pub modal: bool,
    /// Number of layers a user must traverse to reach a confirm-deselect
    /// step, if the notice asks for re-confirmation of a decline.
    pub confirm_deselection_layer: Option<usize>,
}

impl NudgingReport {
    /// A coarse 0–5 dark-pattern score: one point per observed pattern.
    pub fn score(&self) -> u8 {
        u8::from(self.default_focus_on_accept)
            + u8::from(self.accept_highlighted)
            + u8::from(self.decline_requires_deeper_layer)
            + u8::from(self.pre_ticked_checkboxes > 0)
            + u8::from(self.confirm_deselection_layer.is_some())
    }
}

/// Analyzes a notice for the nudging patterns §VI-B reports.
///
/// # Examples
///
/// ```
/// use hbbtv_consent::{analyze_nudging, branding_catalog, NoticeBranding};
/// let report = analyze_nudging(&branding_catalog(NoticeBranding::RtlGermany));
/// assert!(report.default_focus_on_accept);
/// assert!(report.decline_requires_deeper_layer);
/// ```
pub fn analyze_nudging(notice: &ConsentNotice) -> NudgingReport {
    let first = notice.first_layer();
    let focused = first.focused_button();
    let pre_ticked = notice
        .layers
        .iter()
        .map(|l| l.pre_ticked_count())
        .sum::<usize>();
    let confirm_layer = notice.layers.iter().position(|l| {
        l.buttons
            .iter()
            .any(|b| b.action == crate::notice::ButtonAction::ConfirmDeselection)
    });
    NudgingReport {
        default_focus_on_accept: focused.action.grants_full_consent(),
        accept_highlighted: first
            .buttons
            .iter()
            .any(|b| b.action.grants_full_consent() && b.highlighted),
        decline_requires_deeper_layer: !first.offers_direct_decline(),
        pre_ticked_checkboxes: pre_ticked,
        modal: notice.modal,
        confirm_deselection_layer: confirm_layer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::branding_catalog;
    use crate::notice::NoticeBranding;

    #[test]
    fn rtl_germany_report() {
        let r = analyze_nudging(&branding_catalog(NoticeBranding::RtlGermany));
        assert!(r.default_focus_on_accept);
        assert!(r.accept_highlighted);
        assert!(r.decline_requires_deeper_layer);
        assert_eq!(r.pre_ticked_checkboxes, 0);
        assert!(!r.modal);
        assert!(r.score() >= 3);
    }

    #[test]
    fn qvc_offers_direct_decline() {
        let r = analyze_nudging(&branding_catalog(NoticeBranding::Qvc));
        assert!(!r.decline_requires_deeper_layer);
    }

    #[test]
    fn rtl_zwei_has_preticked_boxes() {
        let r = analyze_nudging(&branding_catalog(NoticeBranding::RtlZwei));
        assert!(r.pre_ticked_checkboxes >= 2);
        assert!(r.score() >= 3);
    }

    #[test]
    fn tlc_confirmation_layer_detected() {
        let r = analyze_nudging(&branding_catalog(NoticeBranding::Tlc));
        assert_eq!(r.confirm_deselection_layer, Some(2));
    }

    #[test]
    fn modal_notices_flagged() {
        let r = analyze_nudging(&branding_catalog(NoticeBranding::ZdfModal));
        assert!(r.modal);
    }

    #[test]
    fn score_is_bounded() {
        for b in NoticeBranding::ALL {
            let s = analyze_nudging(&branding_catalog(b)).score();
            assert!(s <= 5);
        }
    }
}
