//! The consent-notice taxonomy.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The twelve recurring notice stylings §VI-B identified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NoticeBranding {
    /// 1) RTL Germany group.
    RtlGermany,
    /// 2) ProSiebenSat.1 group, non-modal variant.
    ProSiebenSat1NonModal,
    /// 3) ProSiebenSat.1 group, full-screen modal variant.
    ProSiebenSat1Modal,
    /// 4) QVC.
    Qvc,
    /// 5) DMAX Austria / TLC / Comedy Central shared style.
    DmaxTlcComedyCentral,
    /// 6) HSE.
    Hse,
    /// 7) Bibel TV.
    BibelTv,
    /// 8) RTL Zwei (unique: category selection on the first layer).
    RtlZwei,
    /// 9) TLC (only seen in the Blue run).
    Tlc,
    /// 10) ZDF full-screen modal (only seen in the Blue run).
    ZdfModal,
    /// 11) COUCHPLAY (on Kabel Eins Doku).
    Couchplay,
    /// 12) Unbranded banner shared by MTV, WELT, Comedy Central,
    ///     MediaShop, and N24 Doku.
    GenericUnbranded,
}

impl NoticeBranding {
    /// All twelve brandings.
    pub const ALL: [NoticeBranding; 12] = [
        NoticeBranding::RtlGermany,
        NoticeBranding::ProSiebenSat1NonModal,
        NoticeBranding::ProSiebenSat1Modal,
        NoticeBranding::Qvc,
        NoticeBranding::DmaxTlcComedyCentral,
        NoticeBranding::Hse,
        NoticeBranding::BibelTv,
        NoticeBranding::RtlZwei,
        NoticeBranding::Tlc,
        NoticeBranding::ZdfModal,
        NoticeBranding::Couchplay,
        NoticeBranding::GenericUnbranded,
    ];
}

impl fmt::Display for NoticeBranding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NoticeBranding::RtlGermany => "RTL Germany",
            NoticeBranding::ProSiebenSat1NonModal => "ProSiebenSat.1 (non-modal)",
            NoticeBranding::ProSiebenSat1Modal => "ProSiebenSat.1 (modal)",
            NoticeBranding::Qvc => "QVC",
            NoticeBranding::DmaxTlcComedyCentral => "DMAX Austria / TLC / Comedy Central",
            NoticeBranding::Hse => "HSE",
            NoticeBranding::BibelTv => "Bibel TV",
            NoticeBranding::RtlZwei => "RTL Zwei",
            NoticeBranding::Tlc => "TLC",
            NoticeBranding::ZdfModal => "ZDF (modal)",
            NoticeBranding::Couchplay => "COUCHPLAY",
            NoticeBranding::GenericUnbranded => "unbranded shared banner",
        };
        f.write_str(s)
    }
}

/// The action a notice button triggers. Labels are German on the real
/// notices; the enum captures their function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ButtonAction {
    /// "Alle akzeptieren" — accept all processing.
    AcceptAll,
    /// "Einstellungen" — open the settings layer.
    Settings,
    /// Combined "Einstellungen oder Ablehnen" single button.
    SettingsOrDecline,
    /// Explicit "Ablehnen" — decline.
    Decline,
    /// "Nur notwendige" — only necessary cookies.
    OnlyNecessary,
    /// "Datenschutz" — open privacy information.
    Privacy,
    /// Link to a "list of partners".
    PartnerList,
    /// Confirm a deselection (third layer).
    ConfirmDeselection,
    /// Save the current selection.
    SaveSelection,
}

impl ButtonAction {
    /// Whether this action grants full consent.
    pub fn grants_full_consent(self) -> bool {
        self == ButtonAction::AcceptAll
    }

    /// Whether this action lets the user end up with less than full
    /// consent *directly on this layer* (decline / only-necessary).
    pub fn declines_directly(self) -> bool {
        matches!(self, ButtonAction::Decline | ButtonAction::OnlyNecessary)
    }
}

/// Consent purpose categories offered by category-based notices.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConsentCategory {
    /// Technically necessary (immutable on RTL Zwei's notice).
    Necessary,
    /// Functional cookies.
    Functional,
    /// Marketing / targeting.
    Marketing,
    /// A specific third-party service (e.g. Google Analytics on Bibel
    /// TV's second layer).
    Service(String),
}

/// A checkbox on a notice layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoryCheckbox {
    /// What the checkbox controls.
    pub category: ConsentCategory,
    /// Pre-ticked — ruled non-GDPR-compliant by the ECJ (Planet49).
    pub pre_ticked: bool,
    /// Cannot be unticked.
    pub immutable: bool,
}

/// A button on a notice layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoticeButton {
    /// The triggered action.
    pub action: ButtonAction,
    /// Visually highlighted (different color, shadow, border).
    pub highlighted: bool,
}

/// One layer of a consent notice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoticeLayer {
    /// Buttons in display order.
    pub buttons: Vec<NoticeButton>,
    /// Checkboxes (empty on most first layers).
    pub checkboxes: Vec<CategoryCheckbox>,
    /// Index into `buttons` where the cursor rests when the layer opens.
    /// HbbTV input constraints force *some* default — §VI-B found it on
    /// "Accept" for all twelve notice types' first layers.
    pub default_focus: usize,
}

impl NoticeLayer {
    /// The button the cursor initially rests on.
    ///
    /// # Panics
    ///
    /// Panics if the layer has no buttons (a notice layer always has at
    /// least one by construction).
    pub fn focused_button(&self) -> NoticeButton {
        self.buttons[self.default_focus]
    }

    /// Whether the layer offers a direct decline/only-necessary option.
    pub fn offers_direct_decline(&self) -> bool {
        self.buttons.iter().any(|b| b.action.declines_directly())
    }

    /// Number of pre-ticked, user-changeable checkboxes.
    pub fn pre_ticked_count(&self) -> usize {
        self.checkboxes
            .iter()
            .filter(|c| c.pre_ticked && !c.immutable)
            .count()
    }
}

/// A complete consent notice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsentNotice {
    /// Interface style / issuer.
    pub branding: NoticeBranding,
    /// Layers, first layer first. All twelve catalogued notices have at
    /// least one layer; only the Blue run surfaced second and third
    /// layers.
    pub layers: Vec<NoticeLayer>,
    /// Whether the first layer is modal (blocks TV watching). Only the
    /// ProSiebenSat.1 modal variant and ZDF's notice are modal.
    pub modal: bool,
    /// Fraction of the screen covered by the first layer (0.0–1.0); all
    /// non-modal notices covered less than half.
    pub screen_coverage: f64,
}

impl ConsentNotice {
    /// Creates a notice, validating layer invariants.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty, any layer has no buttons, any
    /// `default_focus` is out of range, or `screen_coverage` is outside
    /// `0.0..=1.0`.
    pub fn new(
        branding: NoticeBranding,
        layers: Vec<NoticeLayer>,
        modal: bool,
        screen_coverage: f64,
    ) -> Self {
        assert!(!layers.is_empty(), "a notice needs at least one layer");
        for (i, layer) in layers.iter().enumerate() {
            assert!(!layer.buttons.is_empty(), "layer {i} has no buttons");
            assert!(
                layer.default_focus < layer.buttons.len(),
                "layer {i} default focus out of range"
            );
        }
        assert!(
            (0.0..=1.0).contains(&screen_coverage),
            "coverage must be a fraction"
        );
        ConsentNotice {
            branding,
            layers,
            modal,
            screen_coverage,
        }
    }

    /// The first (always shown) layer.
    pub fn first_layer(&self) -> &NoticeLayer {
        &self.layers[0]
    }

    /// Whether an accept-all button exists on the first layer (§VI-B: it
    /// always does).
    pub fn has_accept_all(&self) -> bool {
        self.first_layer()
            .buttons
            .iter()
            .any(|b| b.action == ButtonAction::AcceptAll)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_layer() -> NoticeLayer {
        NoticeLayer {
            buttons: vec![
                NoticeButton {
                    action: ButtonAction::AcceptAll,
                    highlighted: true,
                },
                NoticeButton {
                    action: ButtonAction::Settings,
                    highlighted: false,
                },
            ],
            checkboxes: vec![],
            default_focus: 0,
        }
    }

    #[test]
    fn focused_button_is_default() {
        let l = simple_layer();
        assert_eq!(l.focused_button().action, ButtonAction::AcceptAll);
        assert!(!l.offers_direct_decline());
    }

    #[test]
    fn decline_detection() {
        let mut l = simple_layer();
        l.buttons.push(NoticeButton {
            action: ButtonAction::OnlyNecessary,
            highlighted: false,
        });
        assert!(l.offers_direct_decline());
    }

    #[test]
    fn pre_ticked_counts_exclude_immutable() {
        let l = NoticeLayer {
            buttons: vec![NoticeButton {
                action: ButtonAction::SaveSelection,
                highlighted: false,
            }],
            checkboxes: vec![
                CategoryCheckbox {
                    category: ConsentCategory::Necessary,
                    pre_ticked: true,
                    immutable: true,
                },
                CategoryCheckbox {
                    category: ConsentCategory::Marketing,
                    pre_ticked: true,
                    immutable: false,
                },
                CategoryCheckbox {
                    category: ConsentCategory::Functional,
                    pre_ticked: false,
                    immutable: false,
                },
            ],
            default_focus: 0,
        };
        assert_eq!(l.pre_ticked_count(), 1);
    }

    #[test]
    fn notice_validation() {
        let n = ConsentNotice::new(NoticeBranding::RtlGermany, vec![simple_layer()], false, 0.4);
        assert!(n.has_accept_all());
        assert_eq!(n.first_layer().buttons.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn notice_rejects_zero_layers() {
        let _ = ConsentNotice::new(NoticeBranding::Qvc, vec![], false, 0.3);
    }

    #[test]
    #[should_panic(expected = "focus out of range")]
    fn notice_rejects_bad_focus() {
        let mut l = simple_layer();
        l.default_focus = 9;
        let _ = ConsentNotice::new(NoticeBranding::Qvc, vec![l], false, 0.3);
    }

    #[test]
    fn action_predicates() {
        assert!(ButtonAction::AcceptAll.grants_full_consent());
        assert!(!ButtonAction::Settings.grants_full_consent());
        assert!(ButtonAction::Decline.declines_directly());
        assert!(!ButtonAction::SettingsOrDecline.declines_directly());
    }

    #[test]
    fn branding_display_and_count() {
        assert_eq!(NoticeBranding::ALL.len(), 12);
        assert_eq!(NoticeBranding::ZdfModal.to_string(), "ZDF (modal)");
    }
}
