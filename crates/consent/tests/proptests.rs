//! Property-based tests for screenshot annotation and nudging.

use hbbtv_consent::{
    analyze_nudging, annotate, branding_catalog, AppSurface, NoticeBranding, OverlayKind,
    ScreenContent,
};
use proptest::prelude::*;

fn arb_branding() -> impl Strategy<Value = NoticeBranding> {
    prop::sample::select(NoticeBranding::ALL.to_vec())
}

fn arb_surface() -> impl Strategy<Value = Option<AppSurface>> {
    prop_oneof![
        Just(None),
        Just(Some(AppSurface::MediaLibrary)),
        Just(Some(AppSurface::InfoText)),
        Just(Some(AppSurface::Game)),
        Just(Some(AppSurface::Shop)),
        Just(Some(AppSurface::Advertisement)),
    ]
}

prop_compose! {
    fn arb_screen()(
        signal in any::<bool>(),
        tech in any::<bool>(),
        surface in arb_surface(),
        notice in prop::option::of((arb_branding(), 0usize..3)),
        policy in any::<bool>(),
        controls in any::<bool>(),
        pointer in any::<bool>(),
    ) -> ScreenContent {
        ScreenContent {
            signal,
            tech_message: tech,
            surface,
            notice,
            policy,
            cookie_controls: controls,
            privacy_pointer: pointer,
        }
    }
}

proptest! {
    /// Annotation is total and assigns exactly one overlay class with
    /// the codebook's precedence.
    #[test]
    fn annotation_precedence(screen in arb_screen()) {
        let a = annotate(&screen);
        if !screen.signal {
            prop_assert_eq!(a.overlay, OverlayKind::NoSignal);
        } else if screen.tech_message {
            prop_assert_eq!(a.overlay, OverlayKind::ChannelTechMessage);
        } else if screen.notice.is_some() || screen.policy {
            prop_assert_eq!(a.overlay, OverlayKind::Privacy);
        }
        // Round-2 annotation exists iff round 1 said Privacy.
        prop_assert_eq!(a.privacy.is_some(), a.overlay == OverlayKind::Privacy);
        // Pointers survive annotation untouched.
        prop_assert_eq!(a.privacy_pointer, screen.privacy_pointer);
    }

    /// Every catalogued notice is structurally valid: layer focus is in
    /// range, layer 1 has an accept button, and the nudging score is
    /// bounded.
    #[test]
    fn catalog_invariants(branding in arb_branding()) {
        let notice = branding_catalog(branding);
        prop_assert!(notice.has_accept_all());
        for layer in &notice.layers {
            prop_assert!(layer.default_focus < layer.buttons.len());
        }
        let report = analyze_nudging(&notice);
        prop_assert!(report.default_focus_on_accept);
        prop_assert!(report.score() <= 5);
        // Modal notices cover the full screen; non-modal less than half.
        if notice.modal {
            prop_assert!((notice.screen_coverage - 1.0).abs() < f64::EPSILON);
        } else {
            prop_assert!(notice.screen_coverage < 0.5);
        }
    }
}
