//! The end-to-end policy pipeline of §VII-A.

use crate::annotate::{annotate_policy, annotate_policy_linear, PolicyAnnotation};
use crate::classifier::PolicyClassifier;
use crate::hashing::{sha1_hex, SimHash};
use crate::language::{detect_language, DetectedLanguage};
use crate::text::extract_main_text;
use hbbtv_net::Url;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// SimHash Hamming threshold for "nearly identical content aside from
/// minor differences, such as channel name".
const SIMHASH_THRESHOLD: u32 = 6;

/// One document pulled from the captured traffic (an HTML response that
/// might be a policy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectedDocument {
    /// Where the document was served from.
    pub url: Url,
    /// The channel on which it was captured.
    pub channel: String,
    /// The measurement run (e.g. `"Yellow"`).
    pub run: String,
    /// The raw page text.
    pub raw_text: String,
}

/// A borrowed view of one collected document.
///
/// The §VII corpus collection used to clone every large HTML body into
/// a [`CollectedDocument`]; callers that already hold the captures can
/// hand the pipeline these views instead and no body is copied. The
/// owned type remains for callers that construct documents from scratch
/// ([`PolicyPipeline::run`] adapts it to this view internally).
#[derive(Debug, Clone, Copy)]
pub struct DocRef<'a> {
    /// Where the document was served from.
    pub url: &'a Url,
    /// The channel on which it was captured.
    pub channel: &'a str,
    /// The measurement run (e.g. `"Yellow"`).
    pub run: &'a str,
    /// The raw page text.
    pub raw_text: &'a str,
}

/// One deduplicated policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniquePolicy {
    /// Owning channel.
    pub channel: String,
    /// Detected language.
    pub language: DetectedLanguage,
    /// Main text (after boilerplate removal).
    pub text: String,
    /// SHA-1 of the main text.
    pub sha1: String,
    /// SimHash fingerprint.
    pub simhash: SimHash,
    /// Extracted data practices.
    pub annotation: PolicyAnnotation,
    /// Hosting domain (eTLD+1) of the serving URL.
    pub host_domain: String,
}

/// Aggregate output of the pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyCorpusReport {
    /// Documents examined.
    pub documents_seen: usize,
    /// Documents classified as policies (pre-dedup) per run.
    pub policies_per_run: BTreeMap<String, usize>,
    /// Total policy documents before dedup (2,656 in the paper).
    pub policies_collected: usize,
    /// Count of false negatives rescued by the manual-correction pass.
    pub manual_corrections: usize,
    /// Language distribution of collected (pre-dedup) policies.
    pub language_counts: BTreeMap<String, usize>,
    /// The deduplicated corpus (57 in the paper).
    pub unique: Vec<UniquePolicy>,
    /// Indices (into `unique`) of SimHash near-duplicate groups with at
    /// least two members (11 groups in the paper).
    pub simhash_groups: Vec<Vec<usize>>,
}

impl PolicyCorpusReport {
    /// Unique policies mentioning "HbbTV" (the 72% statistic).
    pub fn hbbtv_mention_share(&self) -> f64 {
        if self.unique.is_empty() {
            return 0.0;
        }
        let n = self
            .unique
            .iter()
            .filter(|p| p.annotation.mentions_hbbtv)
            .count();
        n as f64 / self.unique.len() as f64
    }
}

/// The §VII-A pipeline: preprocess → classify (+ manual correction) →
/// language → dedup → group.
#[derive(Debug)]
pub struct PolicyPipeline {
    classifier: PolicyClassifier,
}

impl PolicyPipeline {
    /// Creates a pipeline with the bundled classifier.
    pub fn new() -> Self {
        PolicyPipeline {
            classifier: PolicyClassifier::bundled(),
        }
    }

    /// Runs the pipeline over collected documents.
    ///
    /// `manual_override` plays the role of the authors' manual
    /// evaluation: it receives documents the classifier rejected and may
    /// rescue false negatives (the paper corrected 18).
    pub fn run<F>(
        &self,
        documents: &[CollectedDocument],
        mut manual_override: F,
    ) -> PolicyCorpusReport
    where
        F: FnMut(&CollectedDocument) -> bool,
    {
        let refs: Vec<DocRef<'_>> = documents
            .iter()
            .map(|d| DocRef {
                url: &d.url,
                channel: &d.channel,
                run: &d.run,
                raw_text: &d.raw_text,
            })
            .collect();
        self.run_refs(&refs, |i, _| manual_override(&documents[i]))
    }

    /// [`PolicyPipeline::run`] over borrowed document views.
    ///
    /// The capture corpus is heavily duplicated across the five runs
    /// (every run re-fetches the same policy pages), so the per-document
    /// work — text extraction, classification, language detection,
    /// hashing, annotation — is memoized per *distinct* raw text. The
    /// report is identical to processing each document independently:
    /// every stage is a pure function of the text, `manual_override`
    /// still runs per rejected document (it may carry caller state), and
    /// all counts, dedup decisions, and orderings are unchanged.
    pub fn run_refs<F>(&self, documents: &[DocRef<'_>], manual_override: F) -> PolicyCorpusReport
    where
        F: FnMut(usize, &DocRef<'_>) -> bool,
    {
        self.run_refs_impl(documents, manual_override, false)
    }

    /// The pre-optimization reference path: every document is processed
    /// independently (no per-text memoization) and annotated with the
    /// linear keyword scan instead of the automaton. Kept for
    /// differential testing and as the before-side of the analysis
    /// benchmark; the report is identical to [`PolicyPipeline::run_refs`].
    pub fn run_refs_linear<F>(
        &self,
        documents: &[DocRef<'_>],
        manual_override: F,
    ) -> PolicyCorpusReport
    where
        F: FnMut(usize, &DocRef<'_>) -> bool,
    {
        self.run_refs_impl(documents, manual_override, true)
    }

    fn run_refs_impl<F>(
        &self,
        documents: &[DocRef<'_>],
        mut manual_override: F,
        reference: bool,
    ) -> PolicyCorpusReport
    where
        F: FnMut(usize, &DocRef<'_>) -> bool,
    {
        struct Memo {
            main: String,
            classifier_policy: bool,
            language: Option<DetectedLanguage>,
            sha1: Option<String>,
            simhash: Option<SimHash>,
            annotation: Option<PolicyAnnotation>,
        }

        let mut memo_of: HashMap<&str, usize> = HashMap::new();
        let mut memos: Vec<Memo> = Vec::new();
        let mut policies_per_run: BTreeMap<String, usize> = BTreeMap::new();
        let mut language_counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut manual_corrections = 0usize;
        let mut accepted: Vec<(usize, usize, DetectedLanguage)> = Vec::new();

        let fresh_memo = |memos: &mut Vec<Memo>, raw_text: &str| {
            let main = extract_main_text(raw_text);
            let classifier_policy = !main.is_empty() && self.classifier.is_policy(&main);
            memos.push(Memo {
                main,
                classifier_policy,
                language: None,
                sha1: None,
                simhash: None,
                annotation: None,
            });
            memos.len() - 1
        };

        for (i, doc) in documents.iter().enumerate() {
            let mi = if reference {
                // Reference path: no sharing, every document pays full
                // price — exactly the old per-document pipeline.
                fresh_memo(&mut memos, doc.raw_text)
            } else {
                match memo_of.get(doc.raw_text) {
                    Some(&mi) => mi,
                    None => {
                        let mi = fresh_memo(&mut memos, doc.raw_text);
                        memo_of.insert(doc.raw_text, mi);
                        mi
                    }
                }
            };
            if memos[mi].main.is_empty() {
                continue;
            }
            let mut is_policy = memos[mi].classifier_policy;
            if !is_policy && manual_override(i, doc) {
                is_policy = true;
                manual_corrections += 1;
            }
            if !is_policy {
                continue;
            }
            let language = match memos[mi].language {
                Some(l) => l,
                None => {
                    let l = detect_language(&memos[mi].main);
                    memos[mi].language = Some(l);
                    l
                }
            };
            *policies_per_run.entry(doc.run.to_string()).or_insert(0) += 1;
            *language_counts.entry(format!("{language:?}")).or_insert(0) += 1;
            accepted.push((i, mi, language));
        }
        let policies_collected = accepted.len();

        // Dedup on (SHA-1, channel): per-channel exact duplicates across
        // runs collapse; identical group policies on *different* channels
        // are kept (§VII-A).
        let mut seen: HashSet<(String, String)> = HashSet::new();
        let mut unique: Vec<UniquePolicy> = Vec::new();
        for (i, mi, language) in accepted {
            let doc = &documents[i];
            let sha1 = match &memos[mi].sha1 {
                Some(s) => s.clone(),
                None => {
                    let s = sha1_hex(memos[mi].main.as_bytes());
                    memos[mi].sha1 = Some(s.clone());
                    s
                }
            };
            if !seen.insert((sha1.clone(), doc.channel.to_string())) {
                continue;
            }
            let simhash = match memos[mi].simhash {
                Some(h) => h,
                None => {
                    let h = SimHash::of_text(&memos[mi].main);
                    memos[mi].simhash = Some(h);
                    h
                }
            };
            let annotation = match &memos[mi].annotation {
                Some(a) => a.clone(),
                None => {
                    let a = if reference {
                        annotate_policy_linear(&memos[mi].main)
                    } else {
                        annotate_policy(&memos[mi].main)
                    };
                    memos[mi].annotation = Some(a.clone());
                    a
                }
            };
            unique.push(UniquePolicy {
                channel: doc.channel.to_string(),
                language,
                sha1,
                simhash,
                annotation,
                host_domain: doc.url.etld1().to_string(),
                text: memos[mi].main.clone(),
            });
        }

        // Greedy SimHash grouping.
        let mut group_of: Vec<Option<usize>> = vec![None; unique.len()];
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for i in 0..unique.len() {
            if group_of[i].is_some() {
                continue;
            }
            let mut members = vec![i];
            for (j, slot) in group_of.iter().enumerate().skip(i + 1) {
                if slot.is_none() && unique[i].simhash.near(unique[j].simhash, SIMHASH_THRESHOLD) {
                    members.push(j);
                }
            }
            if members.len() > 1 {
                let gid = groups.len();
                for &m in &members {
                    group_of[m] = Some(gid);
                }
                groups.push(members);
            }
        }

        PolicyCorpusReport {
            documents_seen: documents.len(),
            policies_per_run,
            policies_collected,
            manual_corrections,
            language_counts,
            unique,
            simhash_groups: groups,
        }
    }
}

impl Default for PolicyPipeline {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{render_policy, PolicyProfile};

    fn doc(channel: &str, run: &str, text: &str) -> CollectedDocument {
        CollectedDocument {
            url: format!("http://hbbtv.{}.de/datenschutz", channel.to_lowercase())
                .parse()
                .unwrap(),
            channel: channel.to_string(),
            run: run.to_string(),
            raw_text: text.to_string(),
        }
    }

    #[test]
    fn dedups_per_channel_but_keeps_cross_channel_copies() {
        let shared = render_policy(&PolicyProfile::typical("Gruppe", "Gruppen Media"));
        let docs = vec![
            doc("KanalA", "Red", &shared),
            doc("KanalA", "Yellow", &shared), // same channel, same hash → dropped
            doc("KanalB", "Red", &shared),    // different channel → kept
        ];
        let report = PolicyPipeline::new().run(&docs, |_| false);
        assert_eq!(report.policies_collected, 3);
        assert_eq!(report.unique.len(), 2);
        // The two kept copies are (at least) near-duplicates.
        assert_eq!(report.simhash_groups.len(), 1);
        assert_eq!(report.simhash_groups[0].len(), 2);
    }

    #[test]
    fn non_policies_are_dropped() {
        let docs = vec![doc(
            "Teleshop",
            "General",
            "Nur heute: das grosse Pfannenset für 49,99 Euro! Rufen Sie jetzt an \
             und sichern Sie sich gratis Versand für alle Bestellungen.",
        )];
        let report = PolicyPipeline::new().run(&docs, |_| false);
        assert_eq!(report.policies_collected, 0);
        assert!(report.unique.is_empty());
    }

    #[test]
    fn manual_override_rescues_false_negatives() {
        let mixed = format!(
            "{}\nGewinnspiel! Traumreise nach Teneriffa! Nur heute Pfannenset \
             Deluxe 49,99 Euro gratis Versand Bestellhotline rund um die Uhr! \
             Anruf oder SMS Teilnahme ab 18 Jahren Rechtsweg ausgeschlossen! \
             Grosse Rabatte im Teleshop heute Abend viele Angebote!",
            render_policy(&PolicyProfile::typical("Misch", "Misch Media"))
        );
        let docs = vec![doc("Misch", "Blue", &mixed)];
        let strict = PolicyPipeline::new().run(&docs, |_| false);
        let corrected = PolicyPipeline::new().run(&docs, |d| d.channel == "Misch");
        // Whether or not the classifier already accepts the mixed text,
        // the corrected run must contain it and count corrections
        // consistently.
        assert_eq!(corrected.policies_collected, 1);
        assert_eq!(corrected.manual_corrections, 1 - strict.policies_collected);
    }

    #[test]
    fn per_run_counts_and_language() {
        let a = render_policy(&PolicyProfile::typical("Eins", "Eins Media"));
        let b = render_policy(&PolicyProfile::typical("Zwei", "Zwei Media"));
        let docs = vec![
            doc("Eins", "Yellow", &a),
            doc("Zwei", "Yellow", &b),
            doc("Eins", "Red", &a),
        ];
        let report = PolicyPipeline::new().run(&docs, |_| false);
        assert_eq!(report.policies_per_run["Yellow"], 2);
        assert_eq!(report.policies_per_run["Red"], 1);
        assert_eq!(report.language_counts["German"], 3);
        assert!(report.hbbtv_mention_share() > 0.99);
        assert_eq!(report.documents_seen, 3);
    }

    #[test]
    fn distinct_policies_do_not_group() {
        let mut p1 = PolicyProfile::typical("Eins", "Eins Media");
        p1.rights = vec![crate::gdpr::GdprArticle::Art15];
        p1.third_party_sharing = false;
        p1.coverage_analysis = false;
        let mut p2 = PolicyProfile::typical("Zwei", "Zwei Rundfunk Anstalt");
        p2.mentions_tdddg = true;
        p2.blue_button_hint = true;
        p2.opt_out_statements = true;
        p2.profiling_window = Some((17, 6));
        let docs = vec![
            doc("Eins", "Red", &render_policy(&p1)),
            doc("Zwei", "Red", &render_policy(&p2)),
        ];
        let report = PolicyPipeline::new().run(&docs, |_| false);
        assert_eq!(report.unique.len(), 2);
        assert!(
            report.simhash_groups.is_empty(),
            "{:?}",
            report.simhash_groups
        );
    }

    #[test]
    fn host_domain_extracted() {
        let text = render_policy(&PolicyProfile::typical("Eins", "Eins Media"));
        let mut d = doc("Eins", "Red", &text);
        d.url = "http://cdn.smartclip.net/policies/eins".parse().unwrap();
        let report = PolicyPipeline::new().run(&[d], |_| false);
        assert_eq!(report.unique[0].host_domain, "smartclip.net");
    }
}
