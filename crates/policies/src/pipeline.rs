//! The end-to-end policy pipeline of §VII-A.

use crate::annotate::{annotate_policy, PolicyAnnotation};
use crate::classifier::PolicyClassifier;
use crate::hashing::{sha1_hex, SimHash};
use crate::language::{detect_language, DetectedLanguage};
use crate::text::extract_main_text;
use hbbtv_net::Url;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// SimHash Hamming threshold for "nearly identical content aside from
/// minor differences, such as channel name".
const SIMHASH_THRESHOLD: u32 = 6;

/// One document pulled from the captured traffic (an HTML response that
/// might be a policy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectedDocument {
    /// Where the document was served from.
    pub url: Url,
    /// The channel on which it was captured.
    pub channel: String,
    /// The measurement run (e.g. `"Yellow"`).
    pub run: String,
    /// The raw page text.
    pub raw_text: String,
}

/// One deduplicated policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniquePolicy {
    /// Owning channel.
    pub channel: String,
    /// Detected language.
    pub language: DetectedLanguage,
    /// Main text (after boilerplate removal).
    pub text: String,
    /// SHA-1 of the main text.
    pub sha1: String,
    /// SimHash fingerprint.
    pub simhash: SimHash,
    /// Extracted data practices.
    pub annotation: PolicyAnnotation,
    /// Hosting domain (eTLD+1) of the serving URL.
    pub host_domain: String,
}

/// Aggregate output of the pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyCorpusReport {
    /// Documents examined.
    pub documents_seen: usize,
    /// Documents classified as policies (pre-dedup) per run.
    pub policies_per_run: BTreeMap<String, usize>,
    /// Total policy documents before dedup (2,656 in the paper).
    pub policies_collected: usize,
    /// Count of false negatives rescued by the manual-correction pass.
    pub manual_corrections: usize,
    /// Language distribution of collected (pre-dedup) policies.
    pub language_counts: BTreeMap<String, usize>,
    /// The deduplicated corpus (57 in the paper).
    pub unique: Vec<UniquePolicy>,
    /// Indices (into `unique`) of SimHash near-duplicate groups with at
    /// least two members (11 groups in the paper).
    pub simhash_groups: Vec<Vec<usize>>,
}

impl PolicyCorpusReport {
    /// Unique policies mentioning "HbbTV" (the 72% statistic).
    pub fn hbbtv_mention_share(&self) -> f64 {
        if self.unique.is_empty() {
            return 0.0;
        }
        let n = self
            .unique
            .iter()
            .filter(|p| p.annotation.mentions_hbbtv)
            .count();
        n as f64 / self.unique.len() as f64
    }
}

/// The §VII-A pipeline: preprocess → classify (+ manual correction) →
/// language → dedup → group.
#[derive(Debug)]
pub struct PolicyPipeline {
    classifier: PolicyClassifier,
}

impl PolicyPipeline {
    /// Creates a pipeline with the bundled classifier.
    pub fn new() -> Self {
        PolicyPipeline {
            classifier: PolicyClassifier::bundled(),
        }
    }

    /// Runs the pipeline over collected documents.
    ///
    /// `manual_override` plays the role of the authors' manual
    /// evaluation: it receives documents the classifier rejected and may
    /// rescue false negatives (the paper corrected 18).
    pub fn run<F>(
        &self,
        documents: &[CollectedDocument],
        mut manual_override: F,
    ) -> PolicyCorpusReport
    where
        F: FnMut(&CollectedDocument) -> bool,
    {
        let mut policies_per_run: BTreeMap<String, usize> = BTreeMap::new();
        let mut language_counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut manual_corrections = 0usize;
        let mut accepted: Vec<(&CollectedDocument, String, DetectedLanguage)> = Vec::new();

        for doc in documents {
            let main = extract_main_text(&doc.raw_text);
            if main.is_empty() {
                continue;
            }
            let mut is_policy = self.classifier.is_policy(&main);
            if !is_policy && manual_override(doc) {
                is_policy = true;
                manual_corrections += 1;
            }
            if !is_policy {
                continue;
            }
            let language = detect_language(&main);
            *policies_per_run.entry(doc.run.clone()).or_insert(0) += 1;
            *language_counts.entry(format!("{language:?}")).or_insert(0) += 1;
            accepted.push((doc, main, language));
        }
        let policies_collected = accepted.len();

        // Dedup on (SHA-1, channel): per-channel exact duplicates across
        // runs collapse; identical group policies on *different* channels
        // are kept (§VII-A).
        let mut seen: HashSet<(String, String)> = HashSet::new();
        let mut unique: Vec<UniquePolicy> = Vec::new();
        for (doc, main, language) in accepted {
            let sha1 = sha1_hex(main.as_bytes());
            if !seen.insert((sha1.clone(), doc.channel.clone())) {
                continue;
            }
            unique.push(UniquePolicy {
                channel: doc.channel.clone(),
                language,
                sha1,
                simhash: SimHash::of_text(&main),
                annotation: annotate_policy(&main),
                host_domain: doc.url.etld1().to_string(),
                text: main,
            });
        }

        // Greedy SimHash grouping.
        let mut group_of: Vec<Option<usize>> = vec![None; unique.len()];
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for i in 0..unique.len() {
            if group_of[i].is_some() {
                continue;
            }
            let mut members = vec![i];
            for (j, slot) in group_of.iter().enumerate().skip(i + 1) {
                if slot.is_none() && unique[i].simhash.near(unique[j].simhash, SIMHASH_THRESHOLD) {
                    members.push(j);
                }
            }
            if members.len() > 1 {
                let gid = groups.len();
                for &m in &members {
                    group_of[m] = Some(gid);
                }
                groups.push(members);
            }
        }

        PolicyCorpusReport {
            documents_seen: documents.len(),
            policies_per_run,
            policies_collected,
            manual_corrections,
            language_counts,
            unique,
            simhash_groups: groups,
        }
    }
}

impl Default for PolicyPipeline {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{render_policy, PolicyProfile};

    fn doc(channel: &str, run: &str, text: &str) -> CollectedDocument {
        CollectedDocument {
            url: format!("http://hbbtv.{}.de/datenschutz", channel.to_lowercase())
                .parse()
                .unwrap(),
            channel: channel.to_string(),
            run: run.to_string(),
            raw_text: text.to_string(),
        }
    }

    #[test]
    fn dedups_per_channel_but_keeps_cross_channel_copies() {
        let shared = render_policy(&PolicyProfile::typical("Gruppe", "Gruppen Media"));
        let docs = vec![
            doc("KanalA", "Red", &shared),
            doc("KanalA", "Yellow", &shared), // same channel, same hash → dropped
            doc("KanalB", "Red", &shared),    // different channel → kept
        ];
        let report = PolicyPipeline::new().run(&docs, |_| false);
        assert_eq!(report.policies_collected, 3);
        assert_eq!(report.unique.len(), 2);
        // The two kept copies are (at least) near-duplicates.
        assert_eq!(report.simhash_groups.len(), 1);
        assert_eq!(report.simhash_groups[0].len(), 2);
    }

    #[test]
    fn non_policies_are_dropped() {
        let docs = vec![doc(
            "Teleshop",
            "General",
            "Nur heute: das grosse Pfannenset für 49,99 Euro! Rufen Sie jetzt an \
             und sichern Sie sich gratis Versand für alle Bestellungen.",
        )];
        let report = PolicyPipeline::new().run(&docs, |_| false);
        assert_eq!(report.policies_collected, 0);
        assert!(report.unique.is_empty());
    }

    #[test]
    fn manual_override_rescues_false_negatives() {
        let mixed = format!(
            "{}\nGewinnspiel! Traumreise nach Teneriffa! Nur heute Pfannenset \
             Deluxe 49,99 Euro gratis Versand Bestellhotline rund um die Uhr! \
             Anruf oder SMS Teilnahme ab 18 Jahren Rechtsweg ausgeschlossen! \
             Grosse Rabatte im Teleshop heute Abend viele Angebote!",
            render_policy(&PolicyProfile::typical("Misch", "Misch Media"))
        );
        let docs = vec![doc("Misch", "Blue", &mixed)];
        let strict = PolicyPipeline::new().run(&docs, |_| false);
        let corrected = PolicyPipeline::new().run(&docs, |d| d.channel == "Misch");
        // Whether or not the classifier already accepts the mixed text,
        // the corrected run must contain it and count corrections
        // consistently.
        assert_eq!(corrected.policies_collected, 1);
        assert_eq!(corrected.manual_corrections, 1 - strict.policies_collected);
    }

    #[test]
    fn per_run_counts_and_language() {
        let a = render_policy(&PolicyProfile::typical("Eins", "Eins Media"));
        let b = render_policy(&PolicyProfile::typical("Zwei", "Zwei Media"));
        let docs = vec![
            doc("Eins", "Yellow", &a),
            doc("Zwei", "Yellow", &b),
            doc("Eins", "Red", &a),
        ];
        let report = PolicyPipeline::new().run(&docs, |_| false);
        assert_eq!(report.policies_per_run["Yellow"], 2);
        assert_eq!(report.policies_per_run["Red"], 1);
        assert_eq!(report.language_counts["German"], 3);
        assert!(report.hbbtv_mention_share() > 0.99);
        assert_eq!(report.documents_seen, 3);
    }

    #[test]
    fn distinct_policies_do_not_group() {
        let mut p1 = PolicyProfile::typical("Eins", "Eins Media");
        p1.rights = vec![crate::gdpr::GdprArticle::Art15];
        p1.third_party_sharing = false;
        p1.coverage_analysis = false;
        let mut p2 = PolicyProfile::typical("Zwei", "Zwei Rundfunk Anstalt");
        p2.mentions_tdddg = true;
        p2.blue_button_hint = true;
        p2.opt_out_statements = true;
        p2.profiling_window = Some((17, 6));
        let docs = vec![
            doc("Eins", "Red", &render_policy(&p1)),
            doc("Zwei", "Red", &render_policy(&p2)),
        ];
        let report = PolicyPipeline::new().run(&docs, |_| false);
        assert_eq!(report.unique.len(), 2);
        assert!(
            report.simhash_groups.is_empty(),
            "{:?}",
            report.simhash_groups
        );
    }

    #[test]
    fn host_domain_extracted() {
        let text = render_policy(&PolicyProfile::typical("Eins", "Eins Media"));
        let mut d = doc("Eins", "Red", &text);
        d.url = "http://cdn.smartclip.net/policies/eins".parse().unwrap();
        let report = PolicyPipeline::new().run(&[d], |_| false);
        assert_eq!(report.unique[0].host_domain, "smartclip.net");
    }
}
