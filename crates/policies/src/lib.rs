//! Privacy-policy collection, preprocessing, and content analysis.
//!
//! §VII of the paper runs an established toolchain over the captured
//! traffic: plain-text extraction (Boilerpipe), language detection by
//! majority voting, ML-based policy/other classification, SHA-1
//! deduplication, SimHash near-duplicate grouping, BERT-based
//! data-practice identification on the MAPP taxonomy, a GDPR phrase
//! dictionary, and finally a qualitative comparison of declared against
//! observed behavior — including the headline "5 PM to 6 AM" finding.
//!
//! Every stage has a faithful counterpart here:
//!
//! | Paper stage | Module |
//! |---|---|
//! | Boilerpipe text extraction | [`extract_main_text`] |
//! | Language detection (majority voting) | [`detect_language`] |
//! | Policy/other classifiers (99+% F1) | [`PolicyClassifier`] (naive Bayes, trained at runtime on the bundled corpus) |
//! | SHA-1 dedup + SimHash grouping | [`sha1_hex`], [`SimHash`], [`PolicyPipeline`] |
//! | MAPP / GDPR annotation | [`annotate_policy`], [`GdprArticle`], [`LegalBasis`] |
//! | Policy-vs-practice comparison | [`compliance`] |
//!
//! Policy *texts* are produced by the [`generator`] module from
//! [`PolicyProfile`]s — the simulation's stand-in for the real channels'
//! documents, rich enough that the annotation stages have real work to
//! do (and their round-trip is property-tested).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compliance;
pub mod generator;

mod annotate;
mod classifier;
mod gdpr;
mod hashing;
mod language;
mod pipeline;
mod scan;
mod text;

pub use annotate::{annotate_policy, annotate_policy_linear, DataPractice, PolicyAnnotation};
pub use classifier::PolicyClassifier;
pub use gdpr::{GdprArticle, IpAnonymization, LegalBasis};
pub use generator::{render_policy, PolicyLanguage, PolicyProfile};
pub use hashing::{hamming_distance, sha1_hex, SimHash};
pub use language::{detect_language, DetectedLanguage};
pub use pipeline::{CollectedDocument, DocRef, PolicyCorpusReport, PolicyPipeline, UniquePolicy};
pub use text::extract_main_text;
