//! One-pass keyword scanner behind [`annotate_policy`].
//!
//! [`annotate_policy`](crate::annotate_policy) needs ~95 bilingual
//! needles (data practices, GDPR rights/bases, retention clauses, the
//! profiling-window markers) over every policy text. The naive shape —
//! lowercase the whole document, then one `contains` per needle — costs
//! an allocation plus ~40 full scans per document and dominated the
//! §VII stage in BENCH_study.json. This module builds a byte-level
//! Aho–Corasick automaton over all needles once per process
//! ([`scanner`], behind a `OnceLock`) and case-folds in the scan loop,
//! so annotation is a single pass over the raw text with zero
//! allocation.
//!
//! Needles are mapped to *semantic groups* (one bit each in a `u64`),
//! not individual ids: the annotator only ever asks "did any needle of
//! this group match", and 28 groups fit comfortably in one word. The
//! scan is byte-for-byte equivalent to matching against
//! `text.to_lowercase()` because the fold feeds `char::to_lowercase`
//! output for non-ASCII (the one context-sensitive mapping in
//! `str::to_lowercase`, Greek final sigma, can only produce bytes that
//! occur in no needle). The pre-automaton scan survives as
//! [`annotate_policy_linear`](crate::annotate_policy_linear) and a
//! differential proptest keeps the two in lockstep.

use crate::annotate;
use crate::gdpr::{GdprArticle, LegalBasis};
use hbbtv_automaton::Automaton;
use std::sync::OnceLock;

/// Semantic needle groups, one bit each in the scan result.
pub(crate) mod group {
    /// [`DataPractice::FirstPartyCollection`](crate::DataPractice).
    pub const FIRST_PARTY_COLLECTION: u32 = 0;
    /// [`DataPractice::ThirdPartySharing`](crate::DataPractice).
    pub const THIRD_PARTY_SHARING: u32 = 1;
    /// [`DataPractice::IpAddressCollection`](crate::DataPractice).
    pub const IP_ADDRESS_COLLECTION: u32 = 2;
    /// [`DataPractice::CoverageAnalysisCookies`](crate::DataPractice).
    pub const COVERAGE_ANALYSIS: u32 = 3;
    /// [`DataPractice::Profiling`](crate::DataPractice).
    pub const PROFILING: u32 = 4;
    /// Full IP anonymization declared.
    pub const IP_ANON_FULL: u32 = 5;
    /// Truncated IP anonymization declared.
    pub const IP_ANON_TRUNCATED: u32 = 6;
    /// The literal "hbbtv".
    pub const HBBTV: u32 = 7;
    /// Blue-button hint.
    pub const BLUE_BUTTON: u32 = 8;
    /// Base for [`GdprArticle::RIGHTS`]; add the index into `RIGHTS`.
    pub const RIGHTS_BASE: u32 = 9;
    /// Base for [`LegalBasis::ALL`]; add the index into `ALL`.
    pub const LEGAL_BASIS_BASE: u32 = 16;
    /// TDDDG / TTDSG mention.
    pub const TDDDG: u32 = 21;
    /// Opt-out statement.
    pub const OPT_OUT: u32 = 22;
    /// Vague-statement hedges.
    pub const VAGUE: u32 = 23;
    /// Dedicated HbbTV contact e-mail.
    pub const HBBTV_EMAIL: u32 = 24;
    /// Indefinite retention declared.
    pub const INDEFINITE_RETENTION: u32 = 25;
    /// German profiling-window marker (" uhr bis ").
    pub const WINDOW_GERMAN: u32 = 26;
    /// English profiling-window marker ("between ").
    pub const WINDOW_ENGLISH: u32 = 27;
    /// Number of groups (bits in use).
    pub const COUNT: u32 = 28;
}

/// Whether `bits` (a [`KeywordScanner::scan`] result) contains a match
/// from `group`.
#[inline]
pub(crate) fn hit(bits: u64, group: u32) -> bool {
    bits & (1u64 << group) != 0
}

/// The shared Aho–Corasick DFA ([`hbbtv_automaton::Automaton`])
/// specialized to group-bitset scanning.
///
/// The automaton reports needle *ids*; this wrapper collapses each
/// state's closed output set into a precomputed `u64` group bitset at
/// build time, so the scan loop stays exactly what it was before the
/// automaton was extracted into its own crate: one transition plus one
/// `bits |=` per byte, no per-match callback.
pub(crate) struct KeywordScanner {
    auto: Automaton,
    /// Per-state OR of `1 << group` over the state's closed outputs.
    out: Vec<u64>,
}

impl KeywordScanner {
    /// Builds the automaton from `(needle, group)` pairs. Needles must
    /// already be lowercase (they are string literals in this crate).
    fn build(needles: &[(&str, u32)]) -> KeywordScanner {
        debug_assert!(
            needles.iter().all(|&(n, _)| n == n.to_lowercase()),
            "needles must be lowercase"
        );
        let pairs: Vec<(&[u8], u32)> = needles
            .iter()
            .map(|&(needle, grp)| (needle.as_bytes(), grp))
            .collect();
        let auto = Automaton::build(&pairs);
        let out: Vec<u64> = (0..auto.n_states())
            .map(|s| {
                auto.outputs(s)
                    .iter()
                    .fold(0u64, |bits, &grp| bits | (1u64 << grp))
            })
            .collect();
        KeywordScanner { auto, out }
    }

    /// Scans `text` in one pass and returns the group bitset.
    ///
    /// Case folds inline: ASCII bytes fold arithmetically, everything
    /// else goes through `char::to_lowercase` into a stack buffer — no
    /// allocation, and the byte stream fed to the automaton equals
    /// `text.to_lowercase()` wherever a needle could match.
    pub(crate) fn scan(&self, text: &str) -> u64 {
        let mut state = 0u32;
        let mut bits = 0u64;
        let mut buf = [0u8; 4];
        for c in text.chars() {
            if c.is_ascii() {
                let b = (c as u8).to_ascii_lowercase();
                state = self.auto.step(state, b);
                bits |= self.out[state as usize];
            } else {
                for lc in c.to_lowercase() {
                    for &b in lc.encode_utf8(&mut buf).as_bytes() {
                        state = self.auto.step(state, b);
                        bits |= self.out[state as usize];
                    }
                }
            }
        }
        bits
    }
}

/// Every needle [`annotate_policy`](crate::annotate_policy) consults,
/// tagged with its group.
fn needle_list() -> Vec<(&'static str, u32)> {
    fn add(v: &mut Vec<(&'static str, u32)>, set: &[&'static str], grp: u32) {
        v.extend(set.iter().map(|&n| (n, grp)));
    }
    let mut v = Vec::new();
    add(
        &mut v,
        annotate::FIRST_PARTY_NEEDLES,
        group::FIRST_PARTY_COLLECTION,
    );
    add(
        &mut v,
        annotate::THIRD_PARTY_NEEDLES,
        group::THIRD_PARTY_SHARING,
    );
    add(
        &mut v,
        annotate::IP_COLLECTION_NEEDLES,
        group::IP_ADDRESS_COLLECTION,
    );
    add(&mut v, annotate::COVERAGE_NEEDLES, group::COVERAGE_ANALYSIS);
    add(&mut v, annotate::PROFILING_NEEDLES, group::PROFILING);
    add(&mut v, annotate::IP_FULL_NEEDLES, group::IP_ANON_FULL);
    add(
        &mut v,
        annotate::IP_TRUNCATED_NEEDLES,
        group::IP_ANON_TRUNCATED,
    );
    add(&mut v, &["hbbtv"], group::HBBTV);
    add(&mut v, annotate::BLUE_BUTTON_NEEDLES, group::BLUE_BUTTON);
    for (i, art) in GdprArticle::RIGHTS.into_iter().enumerate() {
        add(&mut v, art.german_phrases(), group::RIGHTS_BASE + i as u32);
        add(&mut v, art.english_phrases(), group::RIGHTS_BASE + i as u32);
    }
    for (i, basis) in LegalBasis::ALL.into_iter().enumerate() {
        add(
            &mut v,
            basis.german_phrases(),
            group::LEGAL_BASIS_BASE + i as u32,
        );
        add(
            &mut v,
            basis.english_phrases(),
            group::LEGAL_BASIS_BASE + i as u32,
        );
    }
    add(&mut v, annotate::TDDDG_NEEDLES, group::TDDDG);
    add(&mut v, annotate::OPT_OUT_NEEDLES, group::OPT_OUT);
    add(&mut v, annotate::VAGUE_NEEDLES, group::VAGUE);
    add(&mut v, &["hbbtv-datenschutz@"], group::HBBTV_EMAIL);
    add(
        &mut v,
        annotate::INDEFINITE_NEEDLES,
        group::INDEFINITE_RETENTION,
    );
    add(&mut v, &[" uhr bis "], group::WINDOW_GERMAN);
    add(&mut v, &["between "], group::WINDOW_ENGLISH);
    debug_assert!(v.iter().all(|&(_, g)| g < group::COUNT));
    v
}

/// The process-wide automaton, built on first use.
pub(crate) fn scanner() -> &'static KeywordScanner {
    static SCANNER: OnceLock<KeywordScanner> = OnceLock::new();
    SCANNER.get_or_init(|| KeywordScanner::build(&needle_list()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_needles_case_insensitively() {
        let bits = scanner().scan("Wir ERHEBEN Ihre IP-Adresse über HbbTV.");
        assert!(hit(bits, group::FIRST_PARTY_COLLECTION));
        assert!(hit(bits, group::IP_ADDRESS_COLLECTION));
        assert!(hit(bits, group::HBBTV));
        assert!(!hit(bits, group::THIRD_PARTY_SHARING));
    }

    #[test]
    fn umlaut_needles_fold_uppercase_variants() {
        // "gekürzt" (IP truncation) with an uppercase Ü.
        let bits = scanner().scan("Die IP wird GEKÜRZT gespeichert.");
        assert!(hit(bits, group::IP_ANON_TRUNCATED));
    }

    #[test]
    fn overlapping_needles_all_report() {
        // "hbbtv-datenschutz@" contains "hbbtv"; both groups must fire.
        let bits = scanner().scan("Kontakt: hbbtv-datenschutz@sender.de");
        assert!(hit(bits, group::HBBTV));
        assert!(hit(bits, group::HBBTV_EMAIL));
    }

    #[test]
    fn empty_and_unrelated_text_match_nothing() {
        assert_eq!(scanner().scan(""), 0);
        assert_eq!(
            scanner().scan("Pfannenset nur 49 Euro, rufen Sie jetzt an!"),
            0
        );
    }

    #[test]
    fn scan_agrees_with_lowercased_contains() {
        let texts = [
            "Drittanbieter erhalten Daten zur Reichweitenmessung.",
            "We COLLECT data; profiling BETWEEN 17:00 and 6:00 only.",
            "Recht auf Auskunft, Recht auf Löschung, Art. 77.",
            "Die Einwilligung erfolgt auf Basis berechtigter Interessen \u{2014} berechtigtes Interesse.",
        ];
        for text in texts {
            let lower = text.to_lowercase();
            let bits = scanner().scan(text);
            for &(needle, grp) in needle_list().iter() {
                if lower.contains(needle) {
                    assert!(hit(bits, grp), "missed {needle:?} in {text:?}");
                }
            }
        }
    }

    #[test]
    fn group_count_fits_a_word() {
        const { assert!(group::COUNT <= 64) };
        let max = needle_list().iter().map(|&(_, g)| g).max().unwrap();
        assert_eq!(max + 1, group::COUNT);
    }
}
