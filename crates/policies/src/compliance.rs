//! Policy-vs-practice comparison (§VII-C).
//!
//! The paper's headline finding: Super RTL's policy declares ad
//! personalization and profiling limited to **5 PM to 6 AM**, yet 21
//! known tracking requests — carrying user IDs and the watched show —
//! were observed *outside* that window on two of the three channels
//! sharing the policy. [`check_profiling_window`] performs exactly that
//! comparison; [`check_opt_out_contradiction`] flags the HGTV-style
//! opt-out-where-opt-in-is-required pattern.

use crate::annotate::PolicyAnnotation;
use hbbtv_net::Timestamp;
use serde::{Deserialize, Serialize};

/// A tracking observation to check against a policy: when it happened
/// and where it went.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackingObservation {
    /// Request instant.
    pub at: Timestamp,
    /// Tracker domain (eTLD+1).
    pub tracker: String,
    /// Whether the request carried a user identifier.
    pub carried_user_id: bool,
    /// Whether the request carried the watched show.
    pub carried_show: bool,
}

/// The verdict of the profiling-window check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowViolationReport {
    /// The declared window (from-hour, to-hour), if any.
    pub declared_window: Option<(u8, u8)>,
    /// Observations falling outside the declared window.
    pub violations: Vec<TrackingObservation>,
    /// Distinct tracker domains among the violations.
    pub violating_trackers: Vec<String>,
}

impl WindowViolationReport {
    /// Whether observed practice contradicts the declared window.
    pub fn contradicts_policy(&self) -> bool {
        self.declared_window.is_some() && !self.violations.is_empty()
    }
}

/// Whether `hour` lies inside a daily `(from, to)` window; windows
/// wrap midnight when `from > to` (17→6 covers 17:00–23:59 and
/// 0:00–5:59).
pub fn hour_in_window(hour: u8, window: (u8, u8)) -> bool {
    let (from, to) = window;
    if from == to {
        return true; // degenerate: whole day
    }
    if from < to {
        hour >= from && hour < to
    } else {
        hour >= from || hour < to
    }
}

/// Checks observed tracking against a policy's declared profiling
/// window.
///
/// # Examples
///
/// ```
/// use hbbtv_policies::compliance::{check_profiling_window, TrackingObservation};
/// use hbbtv_policies::{annotate_policy, render_policy, PolicyProfile};
/// use hbbtv_net::{Duration, Timestamp};
///
/// let mut profile = PolicyProfile::typical("Super RTL", "RTL");
/// profile.profiling_window = Some((17, 6));
/// let ann = annotate_policy(&render_policy(&profile));
/// // A tracking request at noon — outside 17:00–06:00.
/// let noon = Timestamp::MEASUREMENT_START + Duration::from_secs(12 * 3600);
/// let obs = vec![TrackingObservation {
///     at: noon, tracker: "tvping.com".into(), carried_user_id: true, carried_show: true,
/// }];
/// let report = check_profiling_window(&ann, &obs);
/// assert!(report.contradicts_policy());
/// ```
pub fn check_profiling_window(
    annotation: &PolicyAnnotation,
    observations: &[TrackingObservation],
) -> WindowViolationReport {
    let declared_window = annotation.profiling_window;
    let violations: Vec<TrackingObservation> = match declared_window {
        None => Vec::new(),
        Some(window) => observations
            .iter()
            .filter(|o| !hour_in_window(o.at.hour_of_day(), window))
            .cloned()
            .collect(),
    };
    let mut violating_trackers: Vec<String> =
        violations.iter().map(|v| v.tracker.clone()).collect();
    violating_trackers.sort();
    violating_trackers.dedup();
    WindowViolationReport {
        declared_window,
        violations,
        violating_trackers,
    }
}

/// Whether a policy relies on opt-out for processing that requires
/// opt-in consent under the GDPR (targeted advertising) — the HGTV
/// contradiction of §VII-C.
pub fn check_opt_out_contradiction(annotation: &PolicyAnnotation) -> bool {
    use crate::annotate::DataPractice;
    annotation.opt_out_statements
        && (annotation.practices.contains(&DataPractice::Profiling)
            || annotation
                .practices
                .contains(&DataPractice::CoverageAnalysisCookies))
        && !annotation
            .legal_bases
            .contains(&crate::gdpr::LegalBasis::Consent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate_policy;
    use crate::generator::{render_policy, PolicyProfile};
    use hbbtv_net::Duration;

    fn at_hour(h: u64) -> Timestamp {
        Timestamp::MEASUREMENT_START + Duration::from_secs(h * 3600)
    }

    fn obs(h: u64) -> TrackingObservation {
        TrackingObservation {
            at: at_hour(h),
            tracker: "tvping.com".to_string(),
            carried_user_id: true,
            carried_show: true,
        }
    }

    #[test]
    fn window_membership_wraps_midnight() {
        let w = (17, 6);
        assert!(hour_in_window(17, w));
        assert!(hour_in_window(23, w));
        assert!(hour_in_window(0, w));
        assert!(hour_in_window(5, w));
        assert!(!hour_in_window(6, w));
        assert!(!hour_in_window(12, w));
        assert!(!hour_in_window(16, w));
    }

    #[test]
    fn non_wrapping_window() {
        let w = (9, 17);
        assert!(hour_in_window(9, w));
        assert!(!hour_in_window(17, w));
        assert!(!hour_in_window(3, w));
    }

    #[test]
    fn super_rtl_case_reproduced() {
        let mut p = PolicyProfile::typical("Super RTL", "RTL");
        p.profiling_window = Some((17, 6));
        let ann = annotate_policy(&render_policy(&p));
        // Daytime tracking (08:00–16:00) violates; evening does not.
        let observations = vec![obs(8), obs(12), obs(15), obs(18), obs(23), obs(2)];
        let report = check_profiling_window(&ann, &observations);
        assert!(report.contradicts_policy());
        assert_eq!(report.violations.len(), 3);
        assert_eq!(report.violating_trackers, vec!["tvping.com".to_string()]);
    }

    #[test]
    fn no_declared_window_means_no_violation() {
        let ann = annotate_policy(&render_policy(&PolicyProfile::typical("X", "Y")));
        let report = check_profiling_window(&ann, &[obs(12)]);
        assert!(!report.contradicts_policy());
        assert_eq!(report.declared_window, None);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn hgtv_opt_out_contradiction_detected() {
        let mut p = PolicyProfile::typical("HGTV", "HGTV Germany");
        p.opt_out_statements = true;
        p.legal_bases = vec![crate::gdpr::LegalBasis::LegitimateInterest];
        let ann = annotate_policy(&render_policy(&p));
        assert!(check_opt_out_contradiction(&ann));
    }

    #[test]
    fn opt_out_with_consent_basis_is_not_flagged() {
        let mut p = PolicyProfile::typical("Ok TV", "Ok Media");
        p.opt_out_statements = true; // but consent is declared
        let ann = annotate_policy(&render_policy(&p));
        assert!(!check_opt_out_contradiction(&ann));
    }

    #[test]
    fn degenerate_window_accepts_everything() {
        assert!(hour_in_window(3, (6, 6)));
        assert!(hour_in_window(23, (6, 6)));
    }
}
