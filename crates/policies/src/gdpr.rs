//! GDPR vocabulary: articles, legal bases, and the bilingual phrase
//! dictionary.
//!
//! §VII-B supplements the ML annotation "with a dictionary-based approach
//! … GDPR-specific phrases collected from Articles 6 and 13 of the GDPR"
//! in German and English. The dictionaries below carry the phrases the
//! generator emits *and* common paraphrases, so detection is not a
//! trivial string equality with generation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The GDPR data-subject-rights articles the paper tallies (§VII-C),
/// plus Art. 6 (legal bases) and Art. 13 (information duties) for the
/// dictionary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GdprArticle {
    /// Art. 6 — lawfulness of processing.
    Art6,
    /// Art. 13 — information to be provided.
    Art13,
    /// Art. 15 — right of access (34 / 61% of German policies).
    Art15,
    /// Art. 16 — right to rectification (38 / 69%).
    Art16,
    /// Art. 17 — right to erasure (33 / 60%).
    Art17,
    /// Art. 18 — right to restriction (33 / 60%).
    Art18,
    /// Art. 20 — right to data portability (9 / 16%).
    Art20,
    /// Art. 21 — right to object (9 / 16%).
    Art21,
    /// Art. 77 — right to lodge a complaint (36 / 65%).
    Art77,
}

impl GdprArticle {
    /// The subject-rights articles Table-style §VII-C reports on.
    pub const RIGHTS: [GdprArticle; 7] = [
        GdprArticle::Art15,
        GdprArticle::Art16,
        GdprArticle::Art17,
        GdprArticle::Art18,
        GdprArticle::Art20,
        GdprArticle::Art21,
        GdprArticle::Art77,
    ];

    /// German phrases indicating the article.
    pub fn german_phrases(self) -> &'static [&'static str] {
        match self {
            GdprArticle::Art6 => &["rechtsgrundlage der verarbeitung", "artikel 6", "art. 6"],
            GdprArticle::Art13 => &["informationspflicht", "artikel 13", "art. 13"],
            GdprArticle::Art15 => &["recht auf auskunft", "auskunftsrecht", "art. 15"],
            GdprArticle::Art16 => &["recht auf berichtigung", "berichtigungsrecht", "art. 16"],
            GdprArticle::Art17 => &["recht auf löschung", "vergessenwerden", "art. 17"],
            GdprArticle::Art18 => &[
                "recht auf einschränkung der verarbeitung",
                "einschränkung der verarbeitung verlangen",
                "art. 18",
            ],
            GdprArticle::Art20 => &["recht auf datenübertragbarkeit", "art. 20"],
            GdprArticle::Art21 => &["widerspruchsrecht", "recht auf widerspruch", "art. 21"],
            GdprArticle::Art77 => &[
                "beschwerde bei einer aufsichtsbehörde",
                "beschwerderecht",
                "art. 77",
            ],
        }
    }

    /// English phrases indicating the article.
    pub fn english_phrases(self) -> &'static [&'static str] {
        match self {
            GdprArticle::Art6 => &["lawfulness of processing", "article 6"],
            GdprArticle::Art13 => &["information to be provided", "article 13"],
            GdprArticle::Art15 => &["right of access", "right to access", "article 15"],
            GdprArticle::Art16 => &["right to rectification", "article 16"],
            GdprArticle::Art17 => &["right to erasure", "right to be forgotten", "article 17"],
            GdprArticle::Art18 => &["right to restriction of processing", "article 18"],
            GdprArticle::Art20 => &["right to data portability", "article 20"],
            GdprArticle::Art21 => &["right to object", "article 21"],
            GdprArticle::Art77 => &[
                "lodge a complaint with a supervisory authority",
                "article 77",
            ],
        }
    }

    /// Whether `text` (lowercased) mentions this article in either
    /// language.
    pub fn mentioned_in(self, lower_text: &str) -> bool {
        self.german_phrases()
            .iter()
            .chain(self.english_phrases())
            .any(|p| lower_text.contains(p))
    }
}

impl fmt::Display for GdprArticle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = match self {
            GdprArticle::Art6 => 6,
            GdprArticle::Art13 => 13,
            GdprArticle::Art15 => 15,
            GdprArticle::Art16 => 16,
            GdprArticle::Art17 => 17,
            GdprArticle::Art18 => 18,
            GdprArticle::Art20 => 20,
            GdprArticle::Art21 => 21,
            GdprArticle::Art77 => 77,
        };
        write!(f, "Art. {n}")
    }
}

/// The Art. 6(1) legal bases a policy can invoke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LegalBasis {
    /// Art. 6(1)(a) — consent.
    Consent,
    /// Art. 6(1)(b) — contract performance.
    Contract,
    /// Art. 6(1)(c) — legal obligation.
    LegalObligation,
    /// Art. 6(1)(d) — vital interests (Sachsen Eins's vague statement).
    VitalInterests,
    /// Art. 6(1)(f) — legitimate interests (the gray area §VII-C notes
    /// in 10 policies).
    LegitimateInterest,
}

impl LegalBasis {
    /// All five bases.
    pub const ALL: [LegalBasis; 5] = [
        LegalBasis::Consent,
        LegalBasis::Contract,
        LegalBasis::LegalObligation,
        LegalBasis::VitalInterests,
        LegalBasis::LegitimateInterest,
    ];

    /// German detection phrases.
    pub fn german_phrases(self) -> &'static [&'static str] {
        match self {
            LegalBasis::Consent => &["einwilligung", "eingewilligt"],
            LegalBasis::Contract => &["vertragserfüllung", "erfüllung eines vertrags"],
            LegalBasis::LegalObligation => &["rechtliche verpflichtung", "gesetzliche pflicht"],
            LegalBasis::VitalInterests => {
                &["lebenswichtige interessen", "lebenswichtiger interessen"]
            }
            // "berechtigten interesse" also matches the genitive
            // ("berechtigten interesses") and plural ("… interessen").
            LegalBasis::LegitimateInterest => &["berechtigtes interesse", "berechtigten interesse"],
        }
    }

    /// English detection phrases.
    pub fn english_phrases(self) -> &'static [&'static str] {
        match self {
            LegalBasis::Consent => &["consent"],
            LegalBasis::Contract => &["performance of a contract"],
            LegalBasis::LegalObligation => &["legal obligation"],
            LegalBasis::VitalInterests => &["vital interests"],
            LegalBasis::LegitimateInterest => &["legitimate interest"],
        }
    }

    /// Whether `text` (lowercased) invokes this basis in either language.
    pub fn mentioned_in(self, lower_text: &str) -> bool {
        self.german_phrases()
            .iter()
            .chain(self.english_phrases())
            .any(|p| lower_text.contains(p))
    }
}

/// How a policy declares IP addresses are anonymized (§VII-C observes a
/// spectrum from full anonymization to cutting the last digits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IpAnonymization {
    /// Complete anonymization declared.
    Full,
    /// Truncation (e.g. the last three digits cut) declared.
    Truncated,
    /// No anonymization declared.
    None,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn article_phrase_detection_both_languages() {
        assert!(GdprArticle::Art15.mentioned_in("sie haben ein recht auf auskunft"));
        assert!(GdprArticle::Art15.mentioned_in("you have the right of access"));
        assert!(!GdprArticle::Art15.mentioned_in("nothing relevant here"));
    }

    #[test]
    fn all_rights_articles_have_phrases() {
        for art in GdprArticle::RIGHTS {
            assert!(!art.german_phrases().is_empty());
            assert!(!art.english_phrases().is_empty());
        }
    }

    #[test]
    fn legal_basis_detection() {
        let text = "die verarbeitung erfolgt auf grundlage unseres berechtigten interesses";
        assert!(LegalBasis::LegitimateInterest.mentioned_in(text));
        assert!(!LegalBasis::Contract.mentioned_in(text));
        assert!(LegalBasis::Consent.mentioned_in("based on your consent"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(GdprArticle::Art77.to_string(), "Art. 77");
        assert_eq!(GdprArticle::RIGHTS.len(), 7);
        assert_eq!(LegalBasis::ALL.len(), 5);
    }
}
