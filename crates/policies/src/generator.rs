//! Privacy-policy text generation.
//!
//! The real study analyzed the channels' actual documents; the
//! simulation generates policy texts from structured [`PolicyProfile`]s.
//! The renderer emits realistic German (or English) prose whose content
//! the annotation stages must *recover* — the round trip
//! `profile → text → annotation` is the crate's central property test.

use crate::gdpr::{GdprArticle, IpAnonymization, LegalBasis};
use serde::{Deserialize, Serialize};

/// The language a policy is written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyLanguage {
    /// German (55 of 57 unique policies).
    German,
    /// English.
    English,
    /// Both, one after the other.
    Bilingual,
}

/// Everything a channel's policy declares, structurally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyProfile {
    /// The channel the policy belongs to.
    pub channel_name: String,
    /// The data controller (broadcaster company).
    pub controller: String,
    /// Language of the document.
    pub language: PolicyLanguage,
    /// Mentions the HbbTV service explicitly (40 / 72% of the paper's
    /// German policies do).
    pub mentions_hbbtv: bool,
    /// Points viewers to privacy settings via the blue remote button
    /// (8 policies in the paper).
    pub blue_button_hint: bool,
    /// Declares third-party data collection/sharing (29 / 52%).
    pub third_party_sharing: bool,
    /// IP anonymization declared.
    pub ip_anonymization: IpAnonymization,
    /// Which data-subject rights the policy declares.
    pub rights: Vec<GdprArticle>,
    /// Legal bases the policy invokes.
    pub legal_bases: Vec<LegalBasis>,
    /// Declares ad personalization/profiling limited to a daily window
    /// (from-hour, to-hour) — Super RTL's "5 PM to 6 AM".
    pub profiling_window: Option<(u8, u8)>,
    /// Mentions cookies together with the German TDDDG (only RTL's
    /// policy in the paper).
    pub mentions_tdddg: bool,
    /// Contains opt-out statements for processing that legally requires
    /// opt-in (HGTV's policy).
    pub opt_out_statements: bool,
    /// Contains vague processing statements (Sachsen Eins).
    pub vague_statements: bool,
    /// States the program adapts to individual viewer behavior
    /// (Krone.tv).
    pub personalization: bool,
    /// Uses cookies for coverage/reach analysis (the §VII-C trend).
    pub coverage_analysis: bool,
    /// Offers a dedicated HbbTV complaints e-mail address (RTL).
    pub hbbtv_email: bool,
    /// Declares indefinite retention (several legitimate-interest
    /// policies).
    pub indefinite_retention: bool,
}

impl PolicyProfile {
    /// A typical complete German policy for `channel` by `controller`.
    pub fn typical(channel: &str, controller: &str) -> Self {
        PolicyProfile {
            channel_name: channel.to_string(),
            controller: controller.to_string(),
            language: PolicyLanguage::German,
            mentions_hbbtv: true,
            blue_button_hint: false,
            third_party_sharing: true,
            ip_anonymization: IpAnonymization::Truncated,
            rights: vec![
                GdprArticle::Art15,
                GdprArticle::Art16,
                GdprArticle::Art17,
                GdprArticle::Art18,
                GdprArticle::Art77,
            ],
            legal_bases: vec![LegalBasis::Consent, LegalBasis::Contract],
            profiling_window: None,
            mentions_tdddg: false,
            opt_out_statements: false,
            vague_statements: false,
            personalization: false,
            coverage_analysis: true,
            hbbtv_email: false,
            indefinite_retention: false,
        }
    }
}

/// Renders a profile to policy text.
///
/// # Examples
///
/// ```
/// use hbbtv_policies::{render_policy, PolicyProfile};
/// let text = render_policy(&PolicyProfile::typical("Super RTL", "RTL Deutschland GmbH"));
/// assert!(text.contains("HbbTV"));
/// assert!(text.contains("Recht auf Auskunft"));
/// ```
pub fn render_policy(profile: &PolicyProfile) -> String {
    match profile.language {
        PolicyLanguage::German => render_german(profile),
        PolicyLanguage::English => render_english(profile),
        PolicyLanguage::Bilingual => {
            format!("{}\n\n{}", render_german(profile), render_english(profile))
        }
    }
}

fn render_german(p: &PolicyProfile) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "Datenschutzerklärung für das Angebot {}\n\n\
         Verantwortlicher im Sinne der Datenschutz-Grundverordnung ist die {}. \
         Diese Erklärung informiert Sie über die Verarbeitung personenbezogener \
         Daten bei der Nutzung unseres Angebots.\n\n",
        p.channel_name, p.controller
    ));
    if p.mentions_hbbtv {
        s.push_str(
            "Unser HbbTV-Angebot wird über das Rundfunksignal gestartet und lädt \
             Inhalte über Ihre Internetverbindung. Bei der Nutzung des HbbTV-Dienstes \
             werden technische Daten Ihres Empfangsgeräts verarbeitet.\n\n",
        );
    }
    // First-party collection is acknowledged by every policy in the
    // paper's corpus.
    s.push_str(
        "Wir erheben und verwenden personenbezogene Daten, insbesondere die \
         IP-Adresse Ihres Geräts, Informationen über das genutzte Empfangsgerät \
         sowie Datum und Uhrzeit des Zugriffs.\n\n",
    );
    match p.ip_anonymization {
        IpAnonymization::Full => s.push_str(
            "Die IP-Adresse wird unmittelbar nach der Erhebung vollständig \
             anonymisiert.\n\n",
        ),
        IpAnonymization::Truncated => s.push_str(
            "Die IP-Adresse wird gekürzt, indem die letzten drei Ziffern entfernt \
             werden, bevor eine weitere Verarbeitung erfolgt.\n\n",
        ),
        IpAnonymization::None => {}
    }
    if p.third_party_sharing {
        s.push_str(
            "Zur Bereitstellung einzelner Funktionen binden wir Dienste dritter \
             Anbieter ein. Dabei werden personenbezogene Daten an diese Drittanbieter \
             übermittelt, die diese Daten auch zu eigenen Zwecken verarbeiten \
             können.\n\n",
        );
    }
    if p.coverage_analysis {
        s.push_str(
            "Wir setzen Cookies zur Reichweitenmessung ein, um die Nutzung unseres \
             Angebots statistisch auszuwerten.\n\n",
        );
    }
    if !p.legal_bases.is_empty() {
        s.push_str("Rechtsgrundlage der Verarbeitung: ");
        let phrases: Vec<&str> = p
            .legal_bases
            .iter()
            .map(|b| match b {
                LegalBasis::Consent => "Ihre Einwilligung nach Art. 6 Abs. 1 lit. a DSGVO",
                LegalBasis::Contract => {
                    "die Erfüllung eines Vertrags nach Art. 6 Abs. 1 lit. b DSGVO"
                }
                LegalBasis::LegalObligation => {
                    "eine rechtliche Verpflichtung nach Art. 6 Abs. 1 lit. c DSGVO"
                }
                LegalBasis::VitalInterests => {
                    "der Schutz lebenswichtiger Interessen nach Art. 6 Abs. 1 lit. d DSGVO"
                }
                LegalBasis::LegitimateInterest => {
                    "unser berechtigtes Interesse nach Art. 6 Abs. 1 lit. f DSGVO"
                }
            })
            .collect();
        s.push_str(&phrases.join(" sowie "));
        s.push_str(".\n\n");
    }
    if p.indefinite_retention {
        s.push_str(
            "Die auf Grundlage unseres berechtigten Interesses verarbeiteten Daten \
             werden teilweise auf unbestimmte Zeit gespeichert.\n\n",
        );
    }
    if let Some((from, to)) = p.profiling_window {
        s.push_str(&format!(
            "Eine Personalisierung von Werbung und eine Profilbildung finden \
             ausschließlich im Zeitraum von {from} Uhr bis {to} Uhr statt.\n\n"
        ));
    }
    if p.personalization {
        s.push_str(
            "Das Programm wird anhand des individuellen Nutzungsverhaltens der \
             Zuschauerinnen und Zuschauer angepasst.\n\n",
        );
    }
    if p.vague_statements {
        s.push_str(
            "Eine Verarbeitung personenbezogener Daten kann gegebenenfalls auch zum \
             Schutz lebenswichtiger Interessen oder aufgrund einer rechtlichen \
             Verpflichtung erfolgen, soweit dies erforderlich erscheint.\n\n",
        );
    }
    if p.mentions_tdddg {
        s.push_str(
            "Soweit wir Cookies einsetzen oder auf Informationen in Ihrem Endgerät \
             zugreifen, erfolgt dies nach § 25 TDDDG nur mit Ihrer Einwilligung, es \
             sei denn, der Zugriff ist technisch zwingend erforderlich.\n\n",
        );
    }
    if p.opt_out_statements {
        s.push_str(
            "Sie können der Verarbeitung Ihrer Daten zu Zwecken der \
             interessenbezogenen Werbung und der Reichweitenmessung jederzeit durch \
             Opt-out widersprechen; bis dahin erfolgt die Verarbeitung auf Grundlage \
             dieser Erklärung.\n\n",
        );
    }
    if !p.rights.is_empty() {
        s.push_str("Ihnen stehen folgende Rechte zu: ");
        let phrases: Vec<&str> = p
            .rights
            .iter()
            .map(|r| match r {
                GdprArticle::Art15 => "das Recht auf Auskunft (Art. 15 DSGVO)",
                GdprArticle::Art16 => "das Recht auf Berichtigung (Art. 16 DSGVO)",
                GdprArticle::Art17 => "das Recht auf Löschung (Art. 17 DSGVO)",
                GdprArticle::Art18 => {
                    "das Recht auf Einschränkung der Verarbeitung (Art. 18 DSGVO)"
                }
                GdprArticle::Art20 => "das Recht auf Datenübertragbarkeit (Art. 20 DSGVO)",
                GdprArticle::Art21 => "das Widerspruchsrecht (Art. 21 DSGVO)",
                GdprArticle::Art77 => {
                    "das Recht auf Beschwerde bei einer Aufsichtsbehörde (Art. 77 DSGVO)"
                }
                GdprArticle::Art6 | GdprArticle::Art13 => "",
            })
            .filter(|t| !t.is_empty())
            .collect();
        s.push_str(&phrases.join(", "));
        s.push_str(".\n\n");
    }
    if p.blue_button_hint {
        s.push_str(
            "Die Datenschutzeinstellungen unseres Angebots erreichen Sie \
             jederzeit über die blaue Taste Ihrer Fernbedienung.\n\n",
        );
    }
    if p.hbbtv_email {
        s.push_str(&format!(
            "Für Beschwerden oder Anfragen zum HbbTV-Angebot erreichen Sie uns unter \
             hbbtv-datenschutz@{}.example.\n\n",
            p.controller.to_lowercase().replace(' ', "-")
        ));
    }
    s
}

fn render_english(p: &PolicyProfile) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "Privacy Policy for the {} service\n\n\
         The controller within the meaning of the General Data Protection \
         Regulation is {}. This policy informs you about the processing of \
         personal data when you use our service.\n\n",
        p.channel_name, p.controller
    ));
    if p.mentions_hbbtv {
        s.push_str(
            "Our HbbTV service is launched via the broadcast signal and loads \
             content over your internet connection.\n\n",
        );
    }
    s.push_str(
        "We collect and use personal data, in particular the IP address of your \
         device, information about the receiver in use, and the date and time of \
         access.\n\n",
    );
    match p.ip_anonymization {
        IpAnonymization::Full => {
            s.push_str("The IP address is fully anonymized immediately after collection.\n\n")
        }
        IpAnonymization::Truncated => s.push_str(
            "The IP address is truncated by removing the last three digits before \
             any further processing.\n\n",
        ),
        IpAnonymization::None => {}
    }
    if p.third_party_sharing {
        s.push_str(
            "We integrate services of third-party providers; personal data is \
             transferred to these third parties.\n\n",
        );
    }
    if !p.legal_bases.is_empty() {
        s.push_str("The lawfulness of processing rests on: ");
        let phrases: Vec<&str> = p
            .legal_bases
            .iter()
            .map(|b| match b {
                LegalBasis::Consent => "your consent (Article 6(1)(a) GDPR)",
                LegalBasis::Contract => "the performance of a contract (Article 6(1)(b) GDPR)",
                LegalBasis::LegalObligation => "a legal obligation (Article 6(1)(c) GDPR)",
                LegalBasis::VitalInterests => "vital interests (Article 6(1)(d) GDPR)",
                LegalBasis::LegitimateInterest => "our legitimate interest (Article 6(1)(f) GDPR)",
            })
            .collect();
        s.push_str(&phrases.join(" and "));
        s.push_str(".\n\n");
    }
    if let Some((from, to)) = p.profiling_window {
        s.push_str(&format!(
            "Ad personalization and profiling take place exclusively between \
             {from}:00 and {to}:00.\n\n"
        ));
    }
    if !p.rights.is_empty() {
        s.push_str("You have the following rights: ");
        let phrases: Vec<&str> = p
            .rights
            .iter()
            .map(|r| match r {
                GdprArticle::Art15 => "the right of access (Article 15 GDPR)",
                GdprArticle::Art16 => "the right to rectification (Article 16 GDPR)",
                GdprArticle::Art17 => "the right to erasure (Article 17 GDPR)",
                GdprArticle::Art18 => "the right to restriction of processing (Article 18 GDPR)",
                GdprArticle::Art20 => "the right to data portability (Article 20 GDPR)",
                GdprArticle::Art21 => "the right to object (Article 21 GDPR)",
                GdprArticle::Art77 => {
                    "the right to lodge a complaint with a supervisory authority (Article 77 GDPR)"
                }
                GdprArticle::Art6 | GdprArticle::Art13 => "",
            })
            .filter(|t| !t.is_empty())
            .collect();
        s.push_str(&phrases.join(", "));
        s.push_str(".\n\n");
    }
    if p.coverage_analysis {
        s.push_str("We use cookies for audience measurement of our service.\n\n");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_policy_contains_core_sections() {
        let text = render_policy(&PolicyProfile::typical("ZDF", "ZDF Anstalt"));
        assert!(text.contains("Datenschutzerklärung"));
        assert!(text.contains("HbbTV"));
        assert!(text.contains("IP-Adresse"));
        assert!(text.contains("Recht auf Auskunft"));
        assert!(text.contains("Drittanbieter"));
    }

    #[test]
    fn profiling_window_rendered() {
        let mut p = PolicyProfile::typical("Super RTL", "RTL");
        p.profiling_window = Some((17, 6));
        let text = render_policy(&p);
        assert!(text.contains("von 17 Uhr bis 6 Uhr"));
    }

    #[test]
    fn english_and_bilingual_variants() {
        let mut p = PolicyProfile::typical("News Intl", "News Corp");
        p.language = PolicyLanguage::English;
        let en = render_policy(&p);
        assert!(en.contains("Privacy Policy"));
        assert!(en.contains("right of access"));
        p.language = PolicyLanguage::Bilingual;
        let both = render_policy(&p);
        assert!(both.contains("Datenschutzerklärung") && both.contains("Privacy Policy"));
    }

    #[test]
    fn optional_sections_absent_by_default() {
        let text = render_policy(&PolicyProfile::typical("X", "Y"));
        assert!(!text.contains("TDDDG"));
        assert!(!text.contains("blaue Taste"));
        assert!(!text.contains("Opt-out"));
        assert!(!text.contains("Uhr bis"));
    }

    #[test]
    fn special_clauses_render() {
        let mut p = PolicyProfile::typical("RTL", "RTL Deutschland");
        p.mentions_tdddg = true;
        p.blue_button_hint = true;
        p.opt_out_statements = true;
        p.hbbtv_email = true;
        p.vague_statements = true;
        p.personalization = true;
        p.indefinite_retention = true;
        p.legal_bases.push(LegalBasis::LegitimateInterest);
        let text = render_policy(&p);
        for needle in [
            "TDDDG",
            "blaue Taste",
            "Opt-out",
            "hbbtv-datenschutz@",
            "lebenswichtiger Interessen",
            "individuellen Nutzungsverhaltens",
            "unbestimmte Zeit",
            "berechtigtes Interesse",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
