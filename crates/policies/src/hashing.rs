//! SHA-1 and SimHash, implemented in-repo.
//!
//! The paper removes exact duplicates by SHA-1 hash and groups
//! near-duplicates with SimHash (Manku et al., WWW'07). No offline crate
//! in the allowed set provides either, so both live here. SHA-1 is used
//! purely as a dedup fingerprint (not for security).

/// Computes the SHA-1 digest of `data` as a lowercase hex string.
///
/// # Examples
///
/// ```
/// use hbbtv_policies::sha1_hex;
/// assert_eq!(sha1_hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// ```
pub fn sha1_hex(data: &[u8]) -> String {
    let digest = sha1(data);
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

/// SHA-1 core (FIPS 180-1).
fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h: [u32; 5] = [
        0x6745_2301,
        0xEFCD_AB89,
        0x98BA_DCFE,
        0x1032_5476,
        0xC3D2_E1F0,
    ];
    let ml = (data.len() as u64).wrapping_mul(8);

    // Pad: 0x80, zeros, 64-bit big-endian length.
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&ml.to_be_bytes());

    for chunk in msg.chunks_exact(64) {
        let mut w = [0u32; 80];
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// A 64-bit SimHash fingerprint over word features.
///
/// Documents differing only in a few words (e.g. the channel name inside
/// an otherwise shared group policy) land within a small Hamming
/// distance — the paper finds 11 such groups among 55 German policies.
///
/// # Examples
///
/// ```
/// use hbbtv_policies::{hamming_distance, SimHash};
/// let a = SimHash::of_text("wir verarbeiten personenbezogene daten nach dsgvo");
/// let b = SimHash::of_text("wir verarbeiten personenbezogene daten nach dsgvo artikel");
/// let c = SimHash::of_text("completely unrelated english text about something else");
/// assert!(hamming_distance(a.0, b.0) < hamming_distance(a.0, c.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct SimHash(pub u64);

impl SimHash {
    /// Fingerprints a text over lowercase word 2-shingles.
    pub fn of_text(text: &str) -> Self {
        let words: Vec<String> = text
            .split(|c: char| !c.is_alphanumeric())
            .filter(|w| !w.is_empty())
            .map(|w| w.to_lowercase())
            .collect();
        let mut acc = [0i32; 64];
        let shingle_count = words.len().saturating_sub(1);
        if shingle_count == 0 {
            // Degenerate: hash single words.
            for w in &words {
                add_feature(&mut acc, fnv1a(w.as_bytes()));
            }
        } else {
            for pair in words.windows(2) {
                let feature = format!("{} {}", pair[0], pair[1]);
                add_feature(&mut acc, fnv1a(feature.as_bytes()));
            }
        }
        let mut hash = 0u64;
        for (bit, &weight) in acc.iter().enumerate() {
            if weight > 0 {
                hash |= 1 << bit;
            }
        }
        SimHash(hash)
    }

    /// Whether two fingerprints are near-duplicates at Hamming
    /// distance ≤ `k` (the pipeline uses `k = 6`, a common SimHash
    /// threshold for 64-bit fingerprints).
    pub fn near(self, other: SimHash, k: u32) -> bool {
        hamming_distance(self.0, other.0) <= k
    }
}

fn add_feature(acc: &mut [i32; 64], feature_hash: u64) {
    for (bit, slot) in acc.iter_mut().enumerate() {
        if feature_hash >> bit & 1 == 1 {
            *slot += 1;
        } else {
            *slot -= 1;
        }
    }
}

/// FNV-1a 64-bit hash.
fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Number of differing bits between two 64-bit fingerprints.
pub fn hamming_distance(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha1_known_vectors() {
        assert_eq!(sha1_hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(sha1_hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            sha1_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        // Multi-block message (> 64 bytes).
        let long = vec![b'a'; 1000];
        assert_eq!(sha1_hex(&long), "291e9a6c66994949b57ba5e650361e98fc36b1ba");
    }

    #[test]
    fn identical_texts_have_identical_simhash() {
        let a = SimHash::of_text("Datenschutzerklärung für HbbTV Angebot");
        let b = SimHash::of_text("Datenschutzerklärung für HbbTV Angebot");
        assert_eq!(a, b);
        assert_eq!(hamming_distance(a.0, b.0), 0);
    }

    #[test]
    fn near_duplicates_are_close() {
        // Policy-scale documents (a few hundred words) that differ in a
        // single token — the "same group policy, different channel name"
        // case the pipeline groups at Hamming distance ≤ 6.
        let section = "wir verarbeiten ihre personenbezogenen daten gemäß der datenschutz \
                       grundverordnung artikel sechs absatz eins die verarbeitung umfasst \
                       die ip adresse des fernsehgeräts sowie informationen über das \
                       genutzte angebot die daten werden nach vierzehn tagen gelöscht \
                       ihnen stehen die rechte auf auskunft berichtigung löschung und \
                       einschränkung der verarbeitung zu außerdem können sie beschwerde \
                       bei einer aufsichtsbehörde einlegen die verantwortliche stelle \
                       erreichen sie unter den angegebenen kontaktdaten jederzeit ";
        let base = format!("datenschutzerklärung für kanal eins {}", section.repeat(4));
        let variant = format!("datenschutzerklärung für kanal zwei {}", section.repeat(4));
        let a = SimHash::of_text(&base);
        let b = SimHash::of_text(&variant);
        assert!(a.near(b, 6), "distance {}", hamming_distance(a.0, b.0));
    }

    #[test]
    fn unrelated_texts_are_far() {
        let a = SimHash::of_text(
            "wir verarbeiten ihre personenbezogenen daten gemäß der datenschutz \
             grundverordnung die verarbeitung umfasst die ip adresse",
        );
        let b = SimHash::of_text(
            "welcome to the teleshopping channel special discount offers every \
             morning with free shipping on all orders above fifty euro",
        );
        assert!(!a.near(b, 6), "distance {}", hamming_distance(a.0, b.0));
    }

    #[test]
    fn hamming_distance_basics() {
        assert_eq!(hamming_distance(0, 0), 0);
        assert_eq!(hamming_distance(0, u64::MAX), 64);
        assert_eq!(hamming_distance(0b1010, 0b0101), 4);
    }

    #[test]
    fn empty_and_single_word_texts() {
        let empty = SimHash::of_text("");
        assert_eq!(empty.0, 0);
        let single = SimHash::of_text("datenschutz");
        let single2 = SimHash::of_text("datenschutz");
        assert_eq!(single, single2);
    }
}
