//! Boilerplate removal (the Boilerpipe stage).
//!
//! Boilerpipe classifies text blocks by shallow features — block length,
//! link density, position — and keeps the main content. HbbTV policy
//! pages carry navigation chrome ("Zurück", button hints, menus) around
//! the policy text; [`extract_main_text`] strips it with the same
//! feature logic: short blocks, navigation-y blocks, and blocks that are
//! mostly markup hints are dropped.

/// Extracts the main textual content from a page.
///
/// A *block* is a run of non-empty lines. Blocks are kept when they look
/// like prose: at least eight words, average word length above three
/// characters, and not dominated by navigation markers.
///
/// # Examples
///
/// ```
/// use hbbtv_policies::extract_main_text;
/// let page = "MENU | Home | Zurück\n\nWir verarbeiten Ihre personenbezogenen \
///             Daten gemäß der DSGVO und informieren Sie in dieser Erklärung \
///             über Art und Umfang der Verarbeitung.\n\nOK = Auswahl";
/// let main = extract_main_text(page);
/// assert!(main.contains("personenbezogenen"));
/// assert!(!main.contains("MENU"));
/// assert!(!main.contains("OK = Auswahl"));
/// ```
pub fn extract_main_text(page: &str) -> String {
    let mut blocks: Vec<String> = Vec::new();
    let mut current: Vec<&str> = Vec::new();
    for line in page.lines() {
        if line.trim().is_empty() {
            if !current.is_empty() {
                blocks.push(current.join(" "));
                current.clear();
            }
        } else {
            current.push(line.trim());
        }
    }
    if !current.is_empty() {
        blocks.push(current.join(" "));
    }
    blocks
        .into_iter()
        .filter(|b| is_content_block(b))
        .collect::<Vec<_>>()
        .join("\n\n")
}

const NAV_MARKERS: &[&str] = &[
    "menu",
    "menü",
    "zurück",
    "back",
    "home",
    "impressum",
    "ok =",
    "exit",
    "taste",
    "drücken",
    "press",
    "button",
    "|",
];

fn is_content_block(block: &str) -> bool {
    let words: Vec<&str> = block.split_whitespace().collect();
    if words.len() < 8 {
        return false;
    }
    let avg_len: f64 =
        words.iter().map(|w| w.chars().count()).sum::<usize>() as f64 / words.len() as f64;
    if avg_len < 3.5 {
        return false;
    }
    let lower = block.to_lowercase();
    let marker_hits = NAV_MARKERS.iter().filter(|m| lower.contains(*m)).count();
    // Prose mentions at most one incidental marker; chrome hits several
    // (or is short, which the length check already caught).
    marker_hits <= 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_long_prose() {
        let prose = "Diese Datenschutzerklärung informiert Sie über die Verarbeitung \
                     personenbezogener Daten im Rahmen unseres HbbTV Angebots durch \
                     den Verantwortlichen im Sinne der Datenschutz Grundverordnung.";
        assert_eq!(extract_main_text(prose), prose);
    }

    #[test]
    fn drops_short_blocks() {
        let page = "Rot = Start\n\nGelb = Hilfe";
        assert!(extract_main_text(page).is_empty());
    }

    #[test]
    fn drops_navigation_chrome() {
        let page =
            "Home | Programm | Mediathek | Impressum | Datenschutz | Kontakt | Hilfe | Suche\n\n\
                    Die Verarbeitung Ihrer Daten im Rahmen des HbbTV Angebots erfolgt auf \
                    Grundlage der von Ihnen erteilten Einwilligung nach Artikel sechs.";
        let main = extract_main_text(page);
        assert!(!main.contains("Mediathek |"));
        assert!(main.contains("Einwilligung"));
    }

    #[test]
    fn multi_line_blocks_are_joined() {
        let page = "Die Verarbeitung Ihrer personenbezogenen Daten erfolgt\nauf Grundlage \
                    der erteilten Einwilligung und dient der\nBereitstellung des Angebots.";
        let main = extract_main_text(page);
        assert!(main.contains("erfolgt auf Grundlage"));
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(extract_main_text("").is_empty());
        assert!(extract_main_text("\n\n\n").is_empty());
    }
}
