//! Data-practice annotation (the MAPP/BERT stage).
//!
//! The paper fine-tuned BERT models on the bilingual MAPP taxonomy to
//! detect data practices, and one author read the corpus qualitatively.
//! Our annotator recovers the same practice set from the text with the
//! bilingual dictionaries — playing both roles.

use crate::gdpr::{GdprArticle, IpAnonymization, LegalBasis};
use crate::scan::{group, hit, scanner};
use serde::{Deserialize, Serialize};

/// Needles signalling first-party collection.
pub(crate) const FIRST_PARTY_NEEDLES: &[&str] = &[
    "wir erheben",
    "wir verarbeiten",
    "we collect",
    "we process",
    "erheben und verwenden",
];

/// Needles signalling third-party sharing.
pub(crate) const THIRD_PARTY_NEEDLES: &[&str] = &[
    "drittanbieter",
    "dritter anbieter",
    "dienste dritter",
    "an diese dritt",
    "third party",
    "third-party",
    "third parties",
];

/// Needles naming IP addresses as collected data.
pub(crate) const IP_COLLECTION_NEEDLES: &[&str] = &["ip-adresse", "ip adresse", "ip address"];

/// Needles for coverage/reach-analysis cookies.
pub(crate) const COVERAGE_NEEDLES: &[&str] = &[
    "reichweitenmessung",
    "audience measurement",
    "coverage analysis",
];

/// Needles for profiling / ad personalization.
pub(crate) const PROFILING_NEEDLES: &[&str] = &[
    "profilbildung",
    "personalisierung von werbung",
    "profiling",
    "ad personalization",
];

/// Needles declaring full IP anonymization.
pub(crate) const IP_FULL_NEEDLES: &[&str] = &[
    "vollständig anonymisiert",
    "fully anonymized",
    "fully anonymised",
];

/// Needles declaring truncated IP anonymization.
pub(crate) const IP_TRUNCATED_NEEDLES: &[&str] = &[
    "gekürzt",
    "letzten drei ziffern",
    "truncated",
    "last three digits",
];

/// Needles pointing viewers at the blue remote button.
pub(crate) const BLUE_BUTTON_NEEDLES: &[&str] = &["blaue taste", "blue button"];

/// Needles tying cookie use to the TDDDG/TTDSG.
pub(crate) const TDDDG_NEEDLES: &[&str] = &["tdddg", "ttdsg"];

/// Needles for opt-out statements.
pub(crate) const OPT_OUT_NEEDLES: &[&str] = &["opt-out", "opt out"];

/// Needles for vague hedging statements.
pub(crate) const VAGUE_NEEDLES: &[&str] = &[
    "gegebenenfalls",
    "soweit dies erforderlich erscheint",
    "where appropriate",
];

/// Needles declaring indefinite retention.
pub(crate) const INDEFINITE_NEEDLES: &[&str] =
    &["unbestimmte zeit", "indefinite", "unbegrenzte dauer"];

/// MAPP-style data practices the analysis looks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataPractice {
    /// First-party collection/use of personal data (all policies).
    FirstPartyCollection,
    /// Third-party collection/sharing (52% of German policies).
    ThirdPartySharing,
    /// IP addresses named as collected data.
    IpAddressCollection,
    /// Cookies used for coverage/reach analysis.
    CoverageAnalysisCookies,
    /// Ad personalization / profiling.
    Profiling,
}

/// Everything the annotator extracts from one policy text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyAnnotation {
    /// Detected practices.
    pub practices: Vec<DataPractice>,
    /// Mentions the term "HbbTV".
    pub mentions_hbbtv: bool,
    /// Points viewers to the blue remote button for settings.
    pub blue_button_hint: bool,
    /// Detected data-subject rights.
    pub rights: Vec<GdprArticle>,
    /// Detected legal bases.
    pub legal_bases: Vec<LegalBasis>,
    /// Declared IP anonymization.
    pub ip_anonymization: IpAnonymization,
    /// Declared profiling window, if the policy limits profiling to a
    /// daily time range (from-hour, to-hour).
    pub profiling_window: Option<(u8, u8)>,
    /// Cookie use is tied to the German TDDDG.
    pub mentions_tdddg: bool,
    /// Contains opt-out statements.
    pub opt_out_statements: bool,
    /// Contains vague statements (vital interests / legal obligation
    /// hedges).
    pub vague_statements: bool,
    /// Mentions a dedicated HbbTV contact e-mail.
    pub hbbtv_email: bool,
    /// Declares indefinite retention.
    pub indefinite_retention: bool,
}

impl PolicyAnnotation {
    /// Whether the policy invokes legitimate interest (the §VII-C gray
    /// area observed in 10 policies).
    pub fn uses_legitimate_interest(&self) -> bool {
        self.legal_bases.contains(&LegalBasis::LegitimateInterest)
    }
}

/// Annotates a policy text.
///
/// One pass over the raw text via the shared Aho–Corasick automaton
/// ([`crate::scan`]); no lowercased copy is allocated unless the text
/// declares a profiling window (the rare case that needs the positional
/// parser). Equivalent to [`annotate_policy_linear`] — a differential
/// proptest holds the two together.
///
/// # Examples
///
/// ```
/// use hbbtv_policies::{annotate_policy, render_policy, PolicyProfile};
/// let text = render_policy(&PolicyProfile::typical("ZDF", "ZDF Anstalt"));
/// let ann = annotate_policy(&text);
/// assert!(ann.mentions_hbbtv);
/// assert!(ann.rights.contains(&hbbtv_policies::GdprArticle::Art15));
/// ```
pub fn annotate_policy(text: &str) -> PolicyAnnotation {
    let bits = scanner().scan(text);
    let mut practices = Vec::new();
    if hit(bits, group::FIRST_PARTY_COLLECTION) {
        practices.push(DataPractice::FirstPartyCollection);
    }
    if hit(bits, group::THIRD_PARTY_SHARING) {
        practices.push(DataPractice::ThirdPartySharing);
    }
    if hit(bits, group::IP_ADDRESS_COLLECTION) {
        practices.push(DataPractice::IpAddressCollection);
    }
    if hit(bits, group::COVERAGE_ANALYSIS) {
        practices.push(DataPractice::CoverageAnalysisCookies);
    }
    if hit(bits, group::PROFILING) {
        practices.push(DataPractice::Profiling);
    }

    let ip_anonymization = if hit(bits, group::IP_ANON_FULL) {
        IpAnonymization::Full
    } else if hit(bits, group::IP_ANON_TRUNCATED) {
        IpAnonymization::Truncated
    } else {
        IpAnonymization::None
    };

    // The window parser is positional, so it still needs the lowercased
    // text — but only when the automaton saw a window marker, which only
    // window-declaring policies do.
    let profiling_window = if hit(bits, group::WINDOW_GERMAN) || hit(bits, group::WINDOW_ENGLISH) {
        parse_profiling_window(&text.to_lowercase())
    } else {
        None
    };

    PolicyAnnotation {
        practices,
        mentions_hbbtv: hit(bits, group::HBBTV),
        blue_button_hint: hit(bits, group::BLUE_BUTTON),
        rights: GdprArticle::RIGHTS
            .into_iter()
            .enumerate()
            .filter(|&(i, _)| hit(bits, group::RIGHTS_BASE + i as u32))
            .map(|(_, a)| a)
            .collect(),
        legal_bases: LegalBasis::ALL
            .into_iter()
            .enumerate()
            .filter(|&(i, _)| hit(bits, group::LEGAL_BASIS_BASE + i as u32))
            .map(|(_, b)| b)
            .collect(),
        ip_anonymization,
        profiling_window,
        mentions_tdddg: hit(bits, group::TDDDG),
        opt_out_statements: hit(bits, group::OPT_OUT),
        vague_statements: hit(bits, group::VAGUE),
        hbbtv_email: hit(bits, group::HBBTV_EMAIL),
        indefinite_retention: hit(bits, group::INDEFINITE_RETENTION),
    }
}

/// The pre-automaton annotator: lowercase the whole text, then one
/// `contains` scan per needle. Kept as the differential-testing
/// reference for [`annotate_policy`] (compare `matches_linear` in
/// `hbbtv-filterlists`) and as the baseline the benchmarks measure
/// against.
pub fn annotate_policy_linear(text: &str) -> PolicyAnnotation {
    let lower = text.to_lowercase();
    let mut practices = Vec::new();
    if contains_any(&lower, FIRST_PARTY_NEEDLES) {
        practices.push(DataPractice::FirstPartyCollection);
    }
    if contains_any(&lower, THIRD_PARTY_NEEDLES) {
        practices.push(DataPractice::ThirdPartySharing);
    }
    if contains_any(&lower, IP_COLLECTION_NEEDLES) {
        practices.push(DataPractice::IpAddressCollection);
    }
    if contains_any(&lower, COVERAGE_NEEDLES) {
        practices.push(DataPractice::CoverageAnalysisCookies);
    }
    if contains_any(&lower, PROFILING_NEEDLES) {
        practices.push(DataPractice::Profiling);
    }

    let ip_anonymization = if contains_any(&lower, IP_FULL_NEEDLES) {
        IpAnonymization::Full
    } else if contains_any(&lower, IP_TRUNCATED_NEEDLES) {
        IpAnonymization::Truncated
    } else {
        IpAnonymization::None
    };

    PolicyAnnotation {
        practices,
        mentions_hbbtv: lower.contains("hbbtv"),
        blue_button_hint: contains_any(&lower, BLUE_BUTTON_NEEDLES),
        rights: GdprArticle::RIGHTS
            .into_iter()
            .filter(|a| a.mentioned_in(&lower))
            .collect(),
        legal_bases: LegalBasis::ALL
            .into_iter()
            .filter(|b| b.mentioned_in(&lower))
            .collect(),
        ip_anonymization,
        profiling_window: parse_profiling_window(&lower),
        mentions_tdddg: contains_any(&lower, TDDDG_NEEDLES),
        opt_out_statements: contains_any(&lower, OPT_OUT_NEEDLES),
        vague_statements: contains_any(&lower, VAGUE_NEEDLES),
        hbbtv_email: lower.contains("hbbtv-datenschutz@"),
        indefinite_retention: contains_any(&lower, INDEFINITE_NEEDLES),
    }
}

fn contains_any(haystack: &str, needles: &[&str]) -> bool {
    needles.iter().any(|n| haystack.contains(n))
}

/// Parses "von 17 Uhr bis 6 Uhr" / "between 17:00 and 6:00" windows.
fn parse_profiling_window(lower: &str) -> Option<(u8, u8)> {
    // German: "von {from} uhr bis {to} uhr".
    if let Some(pos) = lower.find(" uhr bis ") {
        let before = &lower[..pos];
        let from = before
            .rsplit(|c: char| !c.is_ascii_digit())
            .next()
            .and_then(|d| d.parse::<u8>().ok());
        let after = &lower[pos + " uhr bis ".len()..];
        let to = after
            .split(|c: char| !c.is_ascii_digit())
            .find(|s| !s.is_empty())
            .and_then(|d| d.parse::<u8>().ok());
        if let (Some(f), Some(t)) = (from, to) {
            if f < 24 && t < 24 {
                return Some((f, t));
            }
        }
    }
    // English: "between {from}:00 and {to}:00".
    if let Some(pos) = lower.find("between ") {
        let rest = &lower[pos + "between ".len()..];
        if let Some((from_part, tail)) = rest.split_once(":00 and ") {
            let from = from_part
                .rsplit(|c: char| !c.is_ascii_digit())
                .next()
                .and_then(|d| d.parse::<u8>().ok());
            let to = tail
                .split(|c: char| !c.is_ascii_digit())
                .find(|s| !s.is_empty())
                .and_then(|d| d.parse::<u8>().ok());
            if let (Some(f), Some(t)) = (from, to) {
                if f < 24 && t < 24 {
                    return Some((f, t));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{render_policy, PolicyLanguage, PolicyProfile};

    #[test]
    fn round_trip_typical_profile() {
        let profile = PolicyProfile::typical("ZDF", "ZDF Anstalt");
        let ann = annotate_policy(&render_policy(&profile));
        assert!(ann.practices.contains(&DataPractice::FirstPartyCollection));
        assert!(ann.practices.contains(&DataPractice::ThirdPartySharing));
        assert!(ann.practices.contains(&DataPractice::IpAddressCollection));
        assert!(ann
            .practices
            .contains(&DataPractice::CoverageAnalysisCookies));
        assert_eq!(ann.rights, profile.rights);
        assert_eq!(ann.legal_bases, profile.legal_bases);
        assert_eq!(ann.ip_anonymization, IpAnonymization::Truncated);
        assert!(ann.mentions_hbbtv);
        assert!(!ann.blue_button_hint);
        assert_eq!(ann.profiling_window, None);
    }

    #[test]
    fn round_trip_profiling_window() {
        let mut p = PolicyProfile::typical("Super RTL", "RTL");
        p.profiling_window = Some((17, 6));
        let ann = annotate_policy(&render_policy(&p));
        assert_eq!(ann.profiling_window, Some((17, 6)));
        assert!(ann.practices.contains(&DataPractice::Profiling));
    }

    #[test]
    fn round_trip_english_window() {
        let mut p = PolicyProfile::typical("News", "Corp");
        p.language = PolicyLanguage::English;
        p.profiling_window = Some((17, 6));
        let ann = annotate_policy(&render_policy(&p));
        assert_eq!(ann.profiling_window, Some((17, 6)));
    }

    #[test]
    fn round_trip_special_clauses() {
        let mut p = PolicyProfile::typical("RTL", "RTL Deutschland");
        p.mentions_tdddg = true;
        p.blue_button_hint = true;
        p.opt_out_statements = true;
        p.hbbtv_email = true;
        p.vague_statements = true;
        p.indefinite_retention = true;
        p.legal_bases = vec![LegalBasis::LegitimateInterest];
        let ann = annotate_policy(&render_policy(&p));
        assert!(ann.mentions_tdddg);
        assert!(ann.blue_button_hint);
        assert!(ann.opt_out_statements);
        assert!(ann.hbbtv_email);
        assert!(ann.vague_statements);
        assert!(ann.indefinite_retention);
        assert!(ann.uses_legitimate_interest());
    }

    #[test]
    fn no_false_positives_on_unrelated_text() {
        let ann = annotate_policy(
            "Willkommen in unserem Teleshop. Heute im Angebot: Pfannenset, \
             nur 49 Euro. Rufen Sie jetzt an!",
        );
        assert!(ann.practices.is_empty());
        assert!(ann.rights.is_empty());
        assert!(!ann.mentions_hbbtv);
        assert_eq!(ann.profiling_window, None);
    }

    #[test]
    fn window_parser_rejects_nonsense() {
        assert_eq!(parse_profiling_window("von 99 uhr bis 6 uhr"), None);
        assert_eq!(parse_profiling_window("uhr bis"), None);
        assert_eq!(parse_profiling_window(""), None);
    }

    #[test]
    fn minimal_rights_subset_detected_exactly() {
        let mut p = PolicyProfile::typical("X", "Y");
        p.rights = vec![GdprArticle::Art20, GdprArticle::Art21];
        let ann = annotate_policy(&render_policy(&p));
        assert_eq!(ann.rights, vec![GdprArticle::Art20, GdprArticle::Art21]);
    }
}
