//! Data-practice annotation (the MAPP/BERT stage).
//!
//! The paper fine-tuned BERT models on the bilingual MAPP taxonomy to
//! detect data practices, and one author read the corpus qualitatively.
//! Our annotator recovers the same practice set from the text with the
//! bilingual dictionaries — playing both roles.

use crate::gdpr::{GdprArticle, IpAnonymization, LegalBasis};
use serde::{Deserialize, Serialize};

/// MAPP-style data practices the analysis looks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataPractice {
    /// First-party collection/use of personal data (all policies).
    FirstPartyCollection,
    /// Third-party collection/sharing (52% of German policies).
    ThirdPartySharing,
    /// IP addresses named as collected data.
    IpAddressCollection,
    /// Cookies used for coverage/reach analysis.
    CoverageAnalysisCookies,
    /// Ad personalization / profiling.
    Profiling,
}

/// Everything the annotator extracts from one policy text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyAnnotation {
    /// Detected practices.
    pub practices: Vec<DataPractice>,
    /// Mentions the term "HbbTV".
    pub mentions_hbbtv: bool,
    /// Points viewers to the blue remote button for settings.
    pub blue_button_hint: bool,
    /// Detected data-subject rights.
    pub rights: Vec<GdprArticle>,
    /// Detected legal bases.
    pub legal_bases: Vec<LegalBasis>,
    /// Declared IP anonymization.
    pub ip_anonymization: IpAnonymization,
    /// Declared profiling window, if the policy limits profiling to a
    /// daily time range (from-hour, to-hour).
    pub profiling_window: Option<(u8, u8)>,
    /// Cookie use is tied to the German TDDDG.
    pub mentions_tdddg: bool,
    /// Contains opt-out statements.
    pub opt_out_statements: bool,
    /// Contains vague statements (vital interests / legal obligation
    /// hedges).
    pub vague_statements: bool,
    /// Mentions a dedicated HbbTV contact e-mail.
    pub hbbtv_email: bool,
    /// Declares indefinite retention.
    pub indefinite_retention: bool,
}

impl PolicyAnnotation {
    /// Whether the policy invokes legitimate interest (the §VII-C gray
    /// area observed in 10 policies).
    pub fn uses_legitimate_interest(&self) -> bool {
        self.legal_bases.contains(&LegalBasis::LegitimateInterest)
    }
}

/// Annotates a policy text.
///
/// # Examples
///
/// ```
/// use hbbtv_policies::{annotate_policy, render_policy, PolicyProfile};
/// let text = render_policy(&PolicyProfile::typical("ZDF", "ZDF Anstalt"));
/// let ann = annotate_policy(&text);
/// assert!(ann.mentions_hbbtv);
/// assert!(ann.rights.contains(&hbbtv_policies::GdprArticle::Art15));
/// ```
pub fn annotate_policy(text: &str) -> PolicyAnnotation {
    let lower = text.to_lowercase();
    let mut practices = Vec::new();
    if contains_any(
        &lower,
        &[
            "wir erheben",
            "wir verarbeiten",
            "we collect",
            "we process",
            "erheben und verwenden",
        ],
    ) {
        practices.push(DataPractice::FirstPartyCollection);
    }
    let third_party = contains_any(
        &lower,
        &[
            "drittanbieter",
            "dritter anbieter",
            "dienste dritter",
            "an diese dritt",
            "third party",
            "third-party",
            "third parties",
        ],
    );
    if third_party {
        practices.push(DataPractice::ThirdPartySharing);
    }
    if contains_any(&lower, &["ip-adresse", "ip adresse", "ip address"]) {
        practices.push(DataPractice::IpAddressCollection);
    }
    if contains_any(
        &lower,
        &[
            "reichweitenmessung",
            "audience measurement",
            "coverage analysis",
        ],
    ) {
        practices.push(DataPractice::CoverageAnalysisCookies);
    }
    if contains_any(
        &lower,
        &[
            "profilbildung",
            "personalisierung von werbung",
            "profiling",
            "ad personalization",
        ],
    ) {
        practices.push(DataPractice::Profiling);
    }

    let ip_anonymization = if contains_any(
        &lower,
        &[
            "vollständig anonymisiert",
            "fully anonymized",
            "fully anonymised",
        ],
    ) {
        IpAnonymization::Full
    } else if contains_any(
        &lower,
        &[
            "gekürzt",
            "letzten drei ziffern",
            "truncated",
            "last three digits",
        ],
    ) {
        IpAnonymization::Truncated
    } else {
        IpAnonymization::None
    };

    PolicyAnnotation {
        practices,
        mentions_hbbtv: lower.contains("hbbtv"),
        blue_button_hint: contains_any(&lower, &["blaue taste", "blue button"]),
        rights: GdprArticle::RIGHTS
            .into_iter()
            .filter(|a| a.mentioned_in(&lower))
            .collect(),
        legal_bases: LegalBasis::ALL
            .into_iter()
            .filter(|b| b.mentioned_in(&lower))
            .collect(),
        ip_anonymization,
        profiling_window: parse_profiling_window(&lower),
        mentions_tdddg: lower.contains("tdddg") || lower.contains("ttdsg"),
        opt_out_statements: lower.contains("opt-out") || lower.contains("opt out"),
        vague_statements: contains_any(
            &lower,
            &[
                "gegebenenfalls",
                "soweit dies erforderlich erscheint",
                "where appropriate",
            ],
        ),
        hbbtv_email: lower.contains("hbbtv-datenschutz@"),
        indefinite_retention: contains_any(
            &lower,
            &["unbestimmte zeit", "indefinite", "unbegrenzte dauer"],
        ),
    }
}

fn contains_any(haystack: &str, needles: &[&str]) -> bool {
    needles.iter().any(|n| haystack.contains(n))
}

/// Parses "von 17 Uhr bis 6 Uhr" / "between 17:00 and 6:00" windows.
fn parse_profiling_window(lower: &str) -> Option<(u8, u8)> {
    // German: "von {from} uhr bis {to} uhr".
    if let Some(pos) = lower.find(" uhr bis ") {
        let before = &lower[..pos];
        let from = before
            .rsplit(|c: char| !c.is_ascii_digit())
            .next()
            .and_then(|d| d.parse::<u8>().ok());
        let after = &lower[pos + " uhr bis ".len()..];
        let to = after
            .split(|c: char| !c.is_ascii_digit())
            .find(|s| !s.is_empty())
            .and_then(|d| d.parse::<u8>().ok());
        if let (Some(f), Some(t)) = (from, to) {
            if f < 24 && t < 24 {
                return Some((f, t));
            }
        }
    }
    // English: "between {from}:00 and {to}:00".
    if let Some(pos) = lower.find("between ") {
        let rest = &lower[pos + "between ".len()..];
        if let Some((from_part, tail)) = rest.split_once(":00 and ") {
            let from = from_part
                .rsplit(|c: char| !c.is_ascii_digit())
                .next()
                .and_then(|d| d.parse::<u8>().ok());
            let to = tail
                .split(|c: char| !c.is_ascii_digit())
                .find(|s| !s.is_empty())
                .and_then(|d| d.parse::<u8>().ok());
            if let (Some(f), Some(t)) = (from, to) {
                if f < 24 && t < 24 {
                    return Some((f, t));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{render_policy, PolicyLanguage, PolicyProfile};

    #[test]
    fn round_trip_typical_profile() {
        let profile = PolicyProfile::typical("ZDF", "ZDF Anstalt");
        let ann = annotate_policy(&render_policy(&profile));
        assert!(ann.practices.contains(&DataPractice::FirstPartyCollection));
        assert!(ann.practices.contains(&DataPractice::ThirdPartySharing));
        assert!(ann.practices.contains(&DataPractice::IpAddressCollection));
        assert!(ann
            .practices
            .contains(&DataPractice::CoverageAnalysisCookies));
        assert_eq!(ann.rights, profile.rights);
        assert_eq!(ann.legal_bases, profile.legal_bases);
        assert_eq!(ann.ip_anonymization, IpAnonymization::Truncated);
        assert!(ann.mentions_hbbtv);
        assert!(!ann.blue_button_hint);
        assert_eq!(ann.profiling_window, None);
    }

    #[test]
    fn round_trip_profiling_window() {
        let mut p = PolicyProfile::typical("Super RTL", "RTL");
        p.profiling_window = Some((17, 6));
        let ann = annotate_policy(&render_policy(&p));
        assert_eq!(ann.profiling_window, Some((17, 6)));
        assert!(ann.practices.contains(&DataPractice::Profiling));
    }

    #[test]
    fn round_trip_english_window() {
        let mut p = PolicyProfile::typical("News", "Corp");
        p.language = PolicyLanguage::English;
        p.profiling_window = Some((17, 6));
        let ann = annotate_policy(&render_policy(&p));
        assert_eq!(ann.profiling_window, Some((17, 6)));
    }

    #[test]
    fn round_trip_special_clauses() {
        let mut p = PolicyProfile::typical("RTL", "RTL Deutschland");
        p.mentions_tdddg = true;
        p.blue_button_hint = true;
        p.opt_out_statements = true;
        p.hbbtv_email = true;
        p.vague_statements = true;
        p.indefinite_retention = true;
        p.legal_bases = vec![LegalBasis::LegitimateInterest];
        let ann = annotate_policy(&render_policy(&p));
        assert!(ann.mentions_tdddg);
        assert!(ann.blue_button_hint);
        assert!(ann.opt_out_statements);
        assert!(ann.hbbtv_email);
        assert!(ann.vague_statements);
        assert!(ann.indefinite_retention);
        assert!(ann.uses_legitimate_interest());
    }

    #[test]
    fn no_false_positives_on_unrelated_text() {
        let ann = annotate_policy(
            "Willkommen in unserem Teleshop. Heute im Angebot: Pfannenset, \
             nur 49 Euro. Rufen Sie jetzt an!",
        );
        assert!(ann.practices.is_empty());
        assert!(ann.rights.is_empty());
        assert!(!ann.mentions_hbbtv);
        assert_eq!(ann.profiling_window, None);
    }

    #[test]
    fn window_parser_rejects_nonsense() {
        assert_eq!(parse_profiling_window("von 99 uhr bis 6 uhr"), None);
        assert_eq!(parse_profiling_window("uhr bis"), None);
        assert_eq!(parse_profiling_window(""), None);
    }

    #[test]
    fn minimal_rights_subset_detected_exactly() {
        let mut p = PolicyProfile::typical("X", "Y");
        p.rights = vec![GdprArticle::Art20, GdprArticle::Art21];
        let ann = annotate_policy(&render_policy(&p));
        assert_eq!(ann.rights, vec![GdprArticle::Art20, GdprArticle::Art21]);
    }
}
