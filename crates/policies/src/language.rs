//! Language detection by majority voting.
//!
//! The paper's toolchain detects a policy's language "via majority
//! voting" across detectors. We vote three detectors: stopword overlap,
//! character-trigram overlap, and German-orthography evidence
//! (umlauts/ß + capitalized-noun density). A document with substantial
//! evidence for both languages is classified bilingual.

use serde::{Deserialize, Serialize};

/// The detected document language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetectedLanguage {
    /// German.
    German,
    /// English.
    English,
    /// Substantial portions of both (one bilingual policy in the paper).
    Bilingual,
    /// Neither language recognized.
    Unknown,
}

const GERMAN_STOPWORDS: &[&str] = &[
    "und", "der", "die", "das", "den", "dem", "des", "ein", "eine", "einer", "nicht", "mit", "für",
    "auf", "werden", "wird", "wurde", "sind", "ist", "sie", "wir", "ihre", "ihrer", "oder", "auch",
    "nach", "über", "durch", "bei", "zur", "zum", "von", "dass", "haben", "können", "gemäß",
    "sowie",
];

const ENGLISH_STOPWORDS: &[&str] = &[
    "the", "and", "of", "to", "in", "is", "are", "that", "this", "with", "for", "you", "your",
    "our", "we", "not", "will", "may", "have", "has", "been", "from", "can", "any", "all", "such",
    "which", "their", "other", "when",
];

const GERMAN_TRIGRAMS: &[&str] = &[
    "ung", "sch", "die", "der", "ein", "ich", "nde", "che", "ver", "gen", "ten", "ens",
];

const ENGLISH_TRIGRAMS: &[&str] = &[
    "the", "and", "ing", "ion", "tio", "ent", "ati", "for", "her", "ter", "hat", "tha",
];

fn stopword_votes(words: &[String]) -> (usize, usize) {
    let de = words
        .iter()
        .filter(|w| GERMAN_STOPWORDS.contains(&w.as_str()))
        .count();
    let en = words
        .iter()
        .filter(|w| ENGLISH_STOPWORDS.contains(&w.as_str()))
        .count();
    (de, en)
}

fn trigram_votes(text: &str) -> (usize, usize) {
    let lower = text.to_lowercase();
    let de = GERMAN_TRIGRAMS
        .iter()
        .map(|t| lower.matches(t).count())
        .sum();
    let en = ENGLISH_TRIGRAMS
        .iter()
        .map(|t| lower.matches(t).count())
        .sum();
    (de, en)
}

fn orthography_votes(text: &str) -> (usize, usize) {
    let umlauts = text.chars().filter(|c| "äöüÄÖÜß".contains(*c)).count();
    // English evidence: apostrophe-s and "th" digraph density.
    let th = text.to_lowercase().matches("th").count();
    (umlauts, th / 4)
}

/// Detects the language of a document.
///
/// # Examples
///
/// ```
/// use hbbtv_policies::{detect_language, DetectedLanguage};
/// let de = "Wir verarbeiten Ihre personenbezogenen Daten gemäß der DSGVO \
///           und informieren Sie über Ihre Rechte.";
/// assert_eq!(detect_language(de), DetectedLanguage::German);
/// ```
pub fn detect_language(text: &str) -> DetectedLanguage {
    let words: Vec<String> = text
        .split(|c: char| !c.is_alphanumeric() && !"äöüÄÖÜß".contains(c))
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .collect();
    if words.len() < 3 {
        return DetectedLanguage::Unknown;
    }
    let votes = [
        stopword_votes(&words),
        trigram_votes(text),
        orthography_votes(text),
    ];
    let de_votes = votes.iter().filter(|(de, en)| de > en).count();
    let en_votes = votes.iter().filter(|(de, en)| en > de).count();

    // Bilingual check: both languages carry strong stopword evidence.
    let (de_stop, en_stop) = votes[0];
    let total_stop = de_stop + en_stop;
    if total_stop >= 10 {
        let minority = de_stop.min(en_stop) as f64 / total_stop as f64;
        if minority >= 0.25 {
            return DetectedLanguage::Bilingual;
        }
    }

    if de_votes > en_votes {
        DetectedLanguage::German
    } else if en_votes > de_votes {
        DetectedLanguage::English
    } else if de_stop > en_stop {
        DetectedLanguage::German
    } else if en_stop > de_stop {
        DetectedLanguage::English
    } else {
        DetectedLanguage::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GERMAN: &str = "Wir verarbeiten Ihre personenbezogenen Daten gemäß der \
        Datenschutz-Grundverordnung. Die Verarbeitung erfolgt auf Grundlage Ihrer \
        Einwilligung oder zur Erfüllung eines Vertrags. Sie haben das Recht auf \
        Auskunft über die gespeicherten Daten sowie das Recht auf Löschung.";

    const ENGLISH: &str = "We process your personal data in accordance with the \
        General Data Protection Regulation. The processing is based on your consent \
        or for the performance of a contract. You have the right to access the \
        stored data and the right to erasure.";

    #[test]
    fn detects_german() {
        assert_eq!(detect_language(GERMAN), DetectedLanguage::German);
    }

    #[test]
    fn detects_english() {
        assert_eq!(detect_language(ENGLISH), DetectedLanguage::English);
    }

    #[test]
    fn detects_bilingual() {
        let both = format!("{GERMAN}\n\n{ENGLISH}");
        assert_eq!(detect_language(&both), DetectedLanguage::Bilingual);
    }

    #[test]
    fn short_text_is_unknown() {
        assert_eq!(detect_language("ok"), DetectedLanguage::Unknown);
        assert_eq!(detect_language(""), DetectedLanguage::Unknown);
    }

    #[test]
    fn numbers_and_noise_are_unknown() {
        assert_eq!(
            detect_language("12345 67890 11 22 33"),
            DetectedLanguage::Unknown
        );
    }
}
