//! The policy-vs-other text classifier.
//!
//! The paper uses trained classifiers (99.1% / 99.8% F1 for English and
//! German) to separate privacy policies from miscellaneous texts, then
//! manually corrects the output (18 false negatives were found, caused
//! by texts mixing data-practice disclosures with unrelated content like
//! discount offers). We train a multinomial naive-Bayes classifier at
//! construction time on a bundled synthetic corpus of policies and
//! non-policy TV texts.

use crate::generator::{render_policy, PolicyLanguage, PolicyProfile};
use std::collections::HashMap;

/// A binary naive-Bayes classifier over word unigrams with Laplace
/// smoothing.
///
/// # Examples
///
/// ```
/// use hbbtv_policies::PolicyClassifier;
/// let clf = PolicyClassifier::bundled();
/// assert!(clf.is_policy("Wir verarbeiten personenbezogene Daten gemäß DSGVO; \
///                        Sie haben das Recht auf Auskunft und Löschung."));
/// assert!(!clf.is_policy("Heute im Programm: Spielfilm um 20:15 Uhr, danach \
///                         Nachrichten und Wetter."));
/// ```
#[derive(Debug, Clone)]
pub struct PolicyClassifier {
    policy_counts: HashMap<String, usize>,
    other_counts: HashMap<String, usize>,
    policy_total: usize,
    other_total: usize,
    vocab: usize,
    policy_docs: usize,
    other_docs: usize,
}

impl PolicyClassifier {
    /// Trains on explicit document sets.
    ///
    /// # Panics
    ///
    /// Panics if either class is empty.
    pub fn train(policies: &[String], others: &[String]) -> Self {
        assert!(
            !policies.is_empty() && !others.is_empty(),
            "both classes need training documents"
        );
        let mut policy_counts = HashMap::new();
        let mut other_counts = HashMap::new();
        for doc in policies {
            for w in tokenize(doc) {
                *policy_counts.entry(w).or_insert(0) += 1;
            }
        }
        for doc in others {
            for w in tokenize(doc) {
                *other_counts.entry(w).or_insert(0) += 1;
            }
        }
        let policy_total = policy_counts.values().sum();
        let other_total = other_counts.values().sum();
        let vocab = policy_counts
            .keys()
            .chain(other_counts.keys())
            .collect::<std::collections::HashSet<_>>()
            .len();
        PolicyClassifier {
            policy_counts,
            other_counts,
            policy_total,
            other_total,
            vocab: vocab.max(1),
            policy_docs: policies.len(),
            other_docs: others.len(),
        }
    }

    /// Trains on the bundled synthetic corpus: generated policies in
    /// several shapes/languages vs. program guides, teleshopping text,
    /// news tickers, imprints, and HbbTV usage instructions.
    pub fn bundled() -> Self {
        let mut policies = Vec::new();
        for (ch, ctrl) in [
            ("Kanal Eins", "Erste Medien GmbH"),
            ("TV Zwei", "Zweite Rundfunk AG"),
            ("Drei TV", "Dritte Broadcasting"),
            ("Vier", "Vierte Anstalt"),
        ] {
            let mut p = PolicyProfile::typical(ch, ctrl);
            policies.push(render_policy(&p));
            p.blue_button_hint = true;
            p.mentions_tdddg = true;
            policies.push(render_policy(&p));
            p.language = PolicyLanguage::English;
            policies.push(render_policy(&p));
            p.language = PolicyLanguage::German;
            p.third_party_sharing = false;
            p.rights = vec![crate::gdpr::GdprArticle::Art15];
            policies.push(render_policy(&p));
        }
        let others: Vec<String> = NON_POLICY_TEXTS.iter().map(|s| s.to_string()).collect();
        Self::train(&policies, &others)
    }

    /// Log-likelihood ratio `log P(policy|doc) − log P(other|doc)`.
    pub fn score(&self, text: &str) -> f64 {
        let mut score = (self.policy_docs as f64 / self.other_docs as f64).ln();
        for w in tokenize(text) {
            let p_policy = (self.policy_counts.get(&w).copied().unwrap_or(0) as f64 + 1.0)
                / (self.policy_total as f64 + self.vocab as f64);
            let p_other = (self.other_counts.get(&w).copied().unwrap_or(0) as f64 + 1.0)
                / (self.other_total as f64 + self.vocab as f64);
            score += p_policy.ln() - p_other.ln();
        }
        score
    }

    /// Whether the classifier calls `text` a privacy policy.
    pub fn is_policy(&self, text: &str) -> bool {
        self.score(text) > 0.0
    }
}

fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric() && !"äöüÄÖÜß".contains(c))
        .filter(|w| w.len() > 2)
        .map(fold_word)
        .collect()
}

/// Per-word case folding without the generic Unicode lowercase
/// machinery: ASCII and the German extra characters (ä/ö/ü and their
/// capitals; ß is already lowercase) fold inline in one pass. Words with
/// any other non-ASCII character — or a capital sigma, whose lowering is
/// position-dependent — fall back to `str::to_lowercase`, so the result
/// is always identical to it.
fn fold_word(w: &str) -> String {
    if w.is_ascii() {
        return w.to_ascii_lowercase();
    }
    let mut folded = String::with_capacity(w.len());
    for c in w.chars() {
        match c {
            'Ä' => folded.push('ä'),
            'Ö' => folded.push('ö'),
            'Ü' => folded.push('ü'),
            c if c.is_ascii() => folded.push(c.to_ascii_lowercase()),
            'Σ' => return w.to_lowercase(),
            c => {
                for lc in c.to_lowercase() {
                    folded.push(lc);
                }
            }
        }
    }
    folded
}

/// Miscellaneous TV texts: everything an HbbTV page serves that is *not*
/// a policy.
const NON_POLICY_TEXTS: &[&str] = &[
    "Heute im Programm: 20:15 Spielfilm Der grosse Coup, 22:00 Nachrichten, \
     22:15 Sportschau mit allen Toren des Spieltags, danach Wetter und \
     Verkehr. Morgen: Dokumentation über die Alpen und die grosse Quizshow.",
    "Willkommen in unserem Teleshop! Nur heute: das Pfannenset Deluxe für \
     49,99 Euro statt 99,99 Euro. Rufen Sie jetzt an und sichern Sie sich \
     gratis Versand. Unsere Bestellhotline ist rund um die Uhr erreichbar.",
    "So nutzen Sie unser HbbTV-Angebot: Druecken Sie die rote Taste Ihrer \
     Fernbedienung, um die Startleiste zu oeffnen. Mit den Pfeiltasten \
     navigieren Sie durch die Mediathek, mit OK starten Sie ein Video.",
    "Impressum. Anbieter dieses Angebots ist die Beispiel Rundfunk GmbH, \
     Musterstrasse 1, 12345 Musterstadt. Vertreten durch die \
     Geschaeftsfuehrung. Handelsregister Amtsgericht Musterstadt HRB 1234.",
    "Breaking news ticker: markets close higher after central bank \
     decision. Weather tomorrow: sunny intervals with highs around twenty \
     degrees. Sports: the home team wins the derby two to one.",
    "Gewinnspiel! Beantworten Sie die Tagesfrage und gewinnen Sie eine \
     Traumreise nach Teneriffa. Anruf oder SMS, Teilnahme ab 18 Jahren. \
     Der Rechtsweg ist ausgeschlossen. Viel Glueck!",
    "Jetzt in der Mediathek: alle Folgen der beliebten Serie, exklusive \
     Interviews mit den Stars und das Making-of. Verpassen Sie keine \
     Folge mehr mit unserer Merkliste.",
    "Electronic program guide: currently showing a nature documentary, \
     next up the evening news at six, followed by the quiz show and a \
     classic movie night with two features back to back.",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::PolicyProfile;

    #[test]
    fn classifies_generated_policies_as_policies() {
        let clf = PolicyClassifier::bundled();
        // A profile shape *not* in the training set.
        let mut p = PolicyProfile::typical("Fremdsender", "Fremd Media SE");
        p.profiling_window = Some((17, 6));
        p.opt_out_statements = true;
        assert!(clf.is_policy(&render_policy(&p)));
    }

    #[test]
    fn classifies_misc_texts_as_other() {
        let clf = PolicyClassifier::bundled();
        for text in [
            "Die grosse Samstagsshow heute live ab 20:15 Uhr mit vielen Gaesten \
             und Musik. Danach: das Beste aus der Mediathek.",
            "Special offer: call now and get the second blender free. Our agents \
             are standing by around the clock for your order.",
        ] {
            assert!(!clf.is_policy(text), "misclassified: {text}");
        }
    }

    #[test]
    fn mixed_content_is_the_hard_case() {
        // The paper found 18 false negatives on texts mixing disclosures
        // with unrelated content — verify the score at least drops.
        let clf = PolicyClassifier::bundled();
        let pure = render_policy(&PolicyProfile::typical("A", "B"));
        let mixed = format!(
            "{pure}\nNur heute im Teleshop: Pfannenset Deluxe für 49,99 Euro, \
             gratis Versand, rufen Sie jetzt an! Gewinnspiel: Traumreise nach \
             Teneriffa, Teilnahme ab 18."
        );
        assert!(clf.score(&mixed) < clf.score(&pure));
    }

    #[test]
    fn english_policies_recognized() {
        let clf = PolicyClassifier::bundled();
        let mut p = PolicyProfile::typical("News", "News Corp");
        p.language = PolicyLanguage::English;
        assert!(clf.is_policy(&render_policy(&p)));
    }

    #[test]
    #[should_panic(expected = "training documents")]
    fn train_rejects_empty_class() {
        let _ = PolicyClassifier::train(&[], &["x".to_string()]);
    }

    #[test]
    fn fold_word_matches_full_lowercase() {
        for w in [
            "DSGVO",
            "Löschung",
            "AUSKUNFT",
            "ÄÖÜß",
            "übermittlung",
            "Daten2024",
            "ΣΊΣΥΦΟΣ", // final-sigma: the position-dependent mapping
            "Çelik",
        ] {
            assert_eq!(fold_word(w), w.to_lowercase(), "word {w:?}");
        }
    }

    #[test]
    fn score_is_monotone_in_policy_words() {
        let clf = PolicyClassifier::bundled();
        let weak = "Daten";
        let strong = "personenbezogene Daten Verarbeitung Einwilligung Auskunft \
                      Löschung Aufsichtsbehörde Datenschutzerklärung";
        assert!(clf.score(strong) > clf.score(weak));
    }
}
