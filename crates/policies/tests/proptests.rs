//! Property-based tests: the generator → annotator round trip and
//! hashing invariants.

use hbbtv_policies::{
    annotate_policy, annotate_policy_linear, detect_language, hamming_distance, render_policy,
    sha1_hex, DetectedLanguage, GdprArticle, IpAnonymization, LegalBasis, PolicyLanguage,
    PolicyProfile, SimHash,
};
use proptest::prelude::*;

/// Adversarial building blocks for the annotator differential test:
/// whole needles in mixed case, needle halves (so concatenation forms
/// needles spanning fragment boundaries), umlaut capitals, the
/// profiling-window markers, and Unicode edge cases (final sigma, the
/// dotted capital I) whose lowercase mappings are irregular.
const NEEDLE_FRAGMENTS: &[&str] = &[
    "wir erheben",
    "WIR ERHEBEN",
    "Wir Erhe",
    "ben ",
    "drittanbieter",
    "DrittAnbieter",
    "dienste dritt",
    "er ",
    "third part",
    "ies",
    "THIRD-PARTY",
    "ip-adresse",
    "IP Adresse",
    "ip addr",
    "ess",
    "reichweitenmessung",
    "audience measure",
    "ment",
    "profil",
    "bildung",
    "PROFILING",
    "ad personal",
    "ization",
    "vollständig anonymisiert",
    "VOLLSTÄNDIG ANONYMISIERT",
    "gekürzt",
    "GEKÜRZT",
    "gekür",
    "zt",
    "letzten drei ziffern",
    "truncated",
    "hbbtv",
    "HbbTV",
    "hbbtv-datenschutz@",
    "HBBTV-DATENSCHUTZ@sender.de",
    "blaue taste",
    "BLAUE Taste",
    "blue button",
    "recht auf auskunft",
    "Recht auf AUSKUNFT",
    "auskunftsrecht",
    "art. 15",
    "art. 1",
    "5 ",
    "recht auf löschung",
    "RECHT AUF LÖSCHUNG",
    "vergessenwerden",
    "recht auf einschränkung der verarbeitung",
    "recht auf datenübertragbarkeit",
    "widerspruchsrecht",
    "beschwerde bei einer aufsichtsbehörde",
    "right of access",
    "right to rectification",
    "right to eras",
    "ure",
    "article 77",
    "einwilligung",
    "EinWilligung",
    "vertragserfüllung",
    "VERTRAGSERFÜLLUNG",
    "rechtliche verpflichtung",
    "lebenswichtige interessen",
    "berechtigtes interesse",
    "Berechtigtes INTERESSE",
    "legitimate interest",
    "consent",
    "CONSENT",
    "performance of a contract",
    "legal obligation",
    "vital interests",
    "tdddg",
    "TTDSG",
    "opt-out",
    "Opt Out",
    "opt",
    " out",
    "gegebenenfalls",
    "GeGebenenfalls",
    "soweit dies erforderlich erscheint",
    "where appropriate",
    "unbestimmte zeit",
    "indefinite",
    "INDEFINITE",
    "unbegrenzte dauer",
    "von 17 uhr bis 6 uhr",
    "VON 17 UHR BIS 6 UHR",
    " uhr bis ",
    "99 uhr bis 6",
    "between 17:00 and 6:00",
    "BETWEEN 23:00 and 5:00",
    "between ",
    ":00 and ",
    "ΣΊΣΥΦΟΣ",
    "İstanbul",
    " ",
    "xyz",
];

prop_compose! {
    fn arb_fragment()(pick in any::<u64>(), noise in "[ -~]{0,10}") -> String {
        if pick % 13 == 0 {
            noise
        } else {
            NEEDLE_FRAGMENTS[pick as usize % NEEDLE_FRAGMENTS.len()].to_string()
        }
    }
}

fn arb_rights() -> impl Strategy<Value = Vec<GdprArticle>> {
    proptest::sample::subsequence(GdprArticle::RIGHTS.to_vec(), 0..=7)
}

fn arb_bases() -> impl Strategy<Value = Vec<LegalBasis>> {
    proptest::sample::subsequence(LegalBasis::ALL.to_vec(), 1..=5)
}

prop_compose! {
    fn arb_profile()(
        rights in arb_rights(),
        bases in arb_bases(),
        hbbtv in any::<bool>(),
        blue in any::<bool>(),
        third in any::<bool>(),
        tdddg in any::<bool>(),
        optout in any::<bool>(),
        vague in any::<bool>(),
        email in any::<bool>(),
        coverage in any::<bool>(),
        window in prop::option::of((0u8..24, 0u8..24)),
        anon in prop_oneof![
            Just(IpAnonymization::Full),
            Just(IpAnonymization::Truncated),
            Just(IpAnonymization::None)
        ],
        english in any::<bool>(),
    ) -> PolicyProfile {
        let mut p = PolicyProfile::typical("Testkanal", "Test Media GmbH");
        p.rights = rights;
        p.legal_bases = bases;
        p.mentions_hbbtv = hbbtv;
        p.blue_button_hint = blue;
        p.third_party_sharing = third;
        p.mentions_tdddg = tdddg;
        p.opt_out_statements = optout;
        p.vague_statements = vague;
        p.hbbtv_email = email;
        p.coverage_analysis = coverage;
        p.profiling_window = window.filter(|(f, t)| f != t);
        p.ip_anonymization = anon;
        p.language = if english { PolicyLanguage::English } else { PolicyLanguage::German };
        p
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The annotator recovers exactly the rights the generator emitted.
    #[test]
    fn rights_round_trip(profile in arb_profile()) {
        let ann = annotate_policy(&render_policy(&profile));
        prop_assert_eq!(&ann.rights, &profile.rights);
    }

    /// Boolean clauses round-trip (German renders all of them; English
    /// renders a subset — only check what the renderer emits).
    #[test]
    fn flags_round_trip(profile in arb_profile()) {
        let ann = annotate_policy(&render_policy(&profile));
        // A dedicated HbbTV e-mail address necessarily mentions HbbTV.
        let expect_hbbtv = profile.mentions_hbbtv
            || (profile.hbbtv_email && profile.language == PolicyLanguage::German);
        prop_assert_eq!(ann.mentions_hbbtv, expect_hbbtv);
        if profile.language == PolicyLanguage::German {
            prop_assert_eq!(ann.blue_button_hint, profile.blue_button_hint);
            prop_assert_eq!(ann.mentions_tdddg, profile.mentions_tdddg);
            prop_assert_eq!(ann.opt_out_statements, profile.opt_out_statements);
            prop_assert_eq!(ann.hbbtv_email, profile.hbbtv_email);
        }
        prop_assert_eq!(ann.profiling_window, profile.profiling_window);
        prop_assert_eq!(ann.ip_anonymization, profile.ip_anonymization);
    }

    /// Every declared legal basis is recovered (the annotator may find
    /// extra *mentions* in boilerplate, but never misses one).
    #[test]
    fn legal_bases_are_recovered(profile in arb_profile()) {
        let ann = annotate_policy(&render_policy(&profile));
        for b in &profile.legal_bases {
            prop_assert!(ann.legal_bases.contains(b), "missing {:?}", b);
        }
    }

    /// Language detection matches the rendered language.
    #[test]
    fn language_detection_matches(profile in arb_profile()) {
        let lang = detect_language(&render_policy(&profile));
        match profile.language {
            PolicyLanguage::German => prop_assert_eq!(lang, DetectedLanguage::German),
            PolicyLanguage::English => prop_assert_eq!(lang, DetectedLanguage::English),
            PolicyLanguage::Bilingual => prop_assert_eq!(lang, DetectedLanguage::Bilingual),
        }
    }

    /// The Aho–Corasick annotator agrees with the linear reference on
    /// adversarial concatenations: mixed case, umlauts, and needle
    /// substrings spanning fragment boundaries.
    #[test]
    fn automaton_matches_linear_on_fragments(
        parts in proptest::collection::vec(arb_fragment(), 0..24)
    ) {
        let text = parts.concat();
        prop_assert_eq!(annotate_policy(&text), annotate_policy_linear(&text));
    }

    /// The automaton agrees with the linear reference on every rendered
    /// policy shape.
    #[test]
    fn automaton_matches_linear_on_rendered_policies(profile in arb_profile()) {
        let text = render_policy(&profile);
        prop_assert_eq!(annotate_policy(&text), annotate_policy_linear(&text));
    }

    /// SHA-1 is deterministic and content-sensitive.
    #[test]
    fn sha1_determinism(a in "[ -~]{0,200}", b in "[ -~]{0,200}") {
        prop_assert_eq!(sha1_hex(a.as_bytes()) == sha1_hex(b.as_bytes()), a == b);
        prop_assert_eq!(sha1_hex(a.as_bytes()).len(), 40);
    }

    /// Hamming distance is a metric on u64 fingerprints.
    #[test]
    fn hamming_is_a_metric(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        prop_assert_eq!(hamming_distance(a, a), 0);
        prop_assert_eq!(hamming_distance(a, b), hamming_distance(b, a));
        prop_assert!(hamming_distance(a, c) <= hamming_distance(a, b) + hamming_distance(b, c));
    }

    /// SimHash is deterministic and insensitive to leading/trailing
    /// whitespace.
    #[test]
    fn simhash_stability(text in "[a-zäöü ]{0,300}") {
        let a = SimHash::of_text(&text);
        let b = SimHash::of_text(&format!("  {text}  "));
        prop_assert_eq!(a, b);
    }
}
