//! Property-based tests: the generator → annotator round trip and
//! hashing invariants.

use hbbtv_policies::{
    annotate_policy, detect_language, hamming_distance, render_policy, sha1_hex, DetectedLanguage,
    GdprArticle, IpAnonymization, LegalBasis, PolicyLanguage, PolicyProfile, SimHash,
};
use proptest::prelude::*;

fn arb_rights() -> impl Strategy<Value = Vec<GdprArticle>> {
    proptest::sample::subsequence(GdprArticle::RIGHTS.to_vec(), 0..=7)
}

fn arb_bases() -> impl Strategy<Value = Vec<LegalBasis>> {
    proptest::sample::subsequence(LegalBasis::ALL.to_vec(), 1..=5)
}

prop_compose! {
    fn arb_profile()(
        rights in arb_rights(),
        bases in arb_bases(),
        hbbtv in any::<bool>(),
        blue in any::<bool>(),
        third in any::<bool>(),
        tdddg in any::<bool>(),
        optout in any::<bool>(),
        vague in any::<bool>(),
        email in any::<bool>(),
        coverage in any::<bool>(),
        window in prop::option::of((0u8..24, 0u8..24)),
        anon in prop_oneof![
            Just(IpAnonymization::Full),
            Just(IpAnonymization::Truncated),
            Just(IpAnonymization::None)
        ],
        english in any::<bool>(),
    ) -> PolicyProfile {
        let mut p = PolicyProfile::typical("Testkanal", "Test Media GmbH");
        p.rights = rights;
        p.legal_bases = bases;
        p.mentions_hbbtv = hbbtv;
        p.blue_button_hint = blue;
        p.third_party_sharing = third;
        p.mentions_tdddg = tdddg;
        p.opt_out_statements = optout;
        p.vague_statements = vague;
        p.hbbtv_email = email;
        p.coverage_analysis = coverage;
        p.profiling_window = window.filter(|(f, t)| f != t);
        p.ip_anonymization = anon;
        p.language = if english { PolicyLanguage::English } else { PolicyLanguage::German };
        p
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The annotator recovers exactly the rights the generator emitted.
    #[test]
    fn rights_round_trip(profile in arb_profile()) {
        let ann = annotate_policy(&render_policy(&profile));
        prop_assert_eq!(&ann.rights, &profile.rights);
    }

    /// Boolean clauses round-trip (German renders all of them; English
    /// renders a subset — only check what the renderer emits).
    #[test]
    fn flags_round_trip(profile in arb_profile()) {
        let ann = annotate_policy(&render_policy(&profile));
        // A dedicated HbbTV e-mail address necessarily mentions HbbTV.
        let expect_hbbtv = profile.mentions_hbbtv
            || (profile.hbbtv_email && profile.language == PolicyLanguage::German);
        prop_assert_eq!(ann.mentions_hbbtv, expect_hbbtv);
        if profile.language == PolicyLanguage::German {
            prop_assert_eq!(ann.blue_button_hint, profile.blue_button_hint);
            prop_assert_eq!(ann.mentions_tdddg, profile.mentions_tdddg);
            prop_assert_eq!(ann.opt_out_statements, profile.opt_out_statements);
            prop_assert_eq!(ann.hbbtv_email, profile.hbbtv_email);
        }
        prop_assert_eq!(ann.profiling_window, profile.profiling_window);
        prop_assert_eq!(ann.ip_anonymization, profile.ip_anonymization);
    }

    /// Every declared legal basis is recovered (the annotator may find
    /// extra *mentions* in boilerplate, but never misses one).
    #[test]
    fn legal_bases_are_recovered(profile in arb_profile()) {
        let ann = annotate_policy(&render_policy(&profile));
        for b in &profile.legal_bases {
            prop_assert!(ann.legal_bases.contains(b), "missing {:?}", b);
        }
    }

    /// Language detection matches the rendered language.
    #[test]
    fn language_detection_matches(profile in arb_profile()) {
        let lang = detect_language(&render_policy(&profile));
        match profile.language {
            PolicyLanguage::German => prop_assert_eq!(lang, DetectedLanguage::German),
            PolicyLanguage::English => prop_assert_eq!(lang, DetectedLanguage::English),
            PolicyLanguage::Bilingual => prop_assert_eq!(lang, DetectedLanguage::Bilingual),
        }
    }

    /// SHA-1 is deterministic and content-sensitive.
    #[test]
    fn sha1_determinism(a in "[ -~]{0,200}", b in "[ -~]{0,200}") {
        prop_assert_eq!(sha1_hex(a.as_bytes()) == sha1_hex(b.as_bytes()), a == b);
        prop_assert_eq!(sha1_hex(a.as_bytes()).len(), 40);
    }

    /// Hamming distance is a metric on u64 fingerprints.
    #[test]
    fn hamming_is_a_metric(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        prop_assert_eq!(hamming_distance(a, a), 0);
        prop_assert_eq!(hamming_distance(a, b), hamming_distance(b, a));
        prop_assert!(hamming_distance(a, c) <= hamming_distance(a, b) + hamming_distance(b, c));
    }

    /// SimHash is deterministic and insensitive to leading/trailing
    /// whitespace.
    #[test]
    fn simhash_stability(text in "[a-zäöü ]{0,300}") {
        let a = SimHash::of_text(&text);
        let b = SimHash::of_text(&format!("  {text}  "));
        prop_assert_eq!(a, b);
    }
}
