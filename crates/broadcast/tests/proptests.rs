//! Property-based tests for broadcast metadata and the funnel.

use hbbtv_broadcast::{
    Ait, AppControlCode, BroadcastSchedule, ChannelDescriptor, ChannelLineup, Satellite,
};
use hbbtv_net::{Duration, Timestamp};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ServiceSpec {
    radio: bool,
    encrypted: bool,
    invisible: bool,
    unnamed: bool,
    iptv: bool,
    has_app: bool,
}

fn arb_service() -> impl Strategy<Value = ServiceSpec> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(radio, encrypted, invisible, unnamed, iptv, has_app)| ServiceSpec {
                radio,
                encrypted,
                invisible,
                unnamed,
                iptv,
                has_app,
            },
        )
}

fn build_lineup(specs: &[ServiceSpec]) -> ChannelLineup {
    let mut lineup = ChannelLineup::new();
    for (i, s) in specs.iter().enumerate() {
        let mut d = if s.radio {
            ChannelDescriptor::radio(i as u32, &format!("R{i}"), Satellite::Astra19E)
        } else {
            ChannelDescriptor::tv(i as u32, &format!("T{i}"), Satellite::Astra19E)
        };
        if s.encrypted {
            d.encrypted = true;
        }
        d.invisible = s.invisible;
        if s.unnamed {
            d.name.clear();
        }
        d.iptv = s.iptv;
        let mut ait = Ait::new();
        if s.has_app {
            ait.push(
                1,
                AppControlCode::Autostart,
                format!("http://hbbtv-ch{i}.de/app").parse().unwrap(),
            );
        }
        lineup.push(d, ait, BroadcastSchedule::Continuous);
    }
    lineup
}

proptest! {
    /// The funnel partitions the scan: every service is accounted for
    /// exactly once, and the final set only contains qualifying
    /// channels.
    #[test]
    fn funnel_partitions_the_scan(specs in prop::collection::vec(arb_service(), 0..60)) {
        let lineup = build_lineup(&specs);
        let (report, finals) = lineup.funnel(|_, ait| ait.signals_hbbtv());
        prop_assert_eq!(report.received, specs.len());
        prop_assert_eq!(report.tv_channels + report.radio, report.received);
        prop_assert_eq!(
            report.final_set + report.no_traffic + report.iptv,
            report.candidates
        );
        // Cross-check against a direct computation.
        let expected: usize = specs
            .iter()
            .filter(|s| {
                !s.radio && !s.encrypted && !s.invisible && !s.unnamed && s.has_app && !s.iptv
            })
            .count();
        prop_assert_eq!(report.final_set, expected);
        prop_assert_eq!(finals.len(), expected);
    }

    /// Schedules: `on_air` over a full day is exactly the window length
    /// (wrapping or not).
    #[test]
    fn schedule_window_length(from in 0u8..24, until in 0u8..24) {
        let s = BroadcastSchedule::Daily { from, until };
        let on: usize = (0..24u64)
            .filter(|h| s.on_air(Timestamp::MEASUREMENT_START + Duration::from_secs(h * 3600)))
            .count();
        // Equal bounds mean an empty window (the service never
        // transmits; distinct from `Continuous`).
        let expected = if from == until {
            0
        } else if from < until {
            (until - from) as usize
        } else {
            (24 - from + until) as usize
        };
        prop_assert_eq!(on, expected);
    }
}
