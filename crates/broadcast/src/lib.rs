//! The broadcast substrate: satellites, transponders, channels, and AIT.
//!
//! The paper's testbed received DVB-S signals from three satellites with a
//! parabolic antenna. Everything the measurement pipeline consumes from
//! that hardware is *metadata*: per-channel flags (radio, encrypted,
//! invisible, name), language and category information from the satellite
//! operators' guides, and the Application Information Table (AIT) that
//! carries the HbbTV application URL inside the broadcast signal.
//!
//! This crate models exactly those observables:
//!
//! * [`Satellite`] — the three orbital positions of the study.
//! * [`ChannelDescriptor`] — one received service with all metadata the
//!   TV and the satellite guides expose.
//! * [`Ait`] — the application signalling, including autostart flags and
//!   directly-encoded third-party URLs (the reason §V-A cannot treat the
//!   first observed request as the first party).
//! * [`ChannelLineup`] — a scan result, with the §IV-B funnel filters.
//!
//! # Examples
//!
//! ```
//! use hbbtv_broadcast::{ChannelDescriptor, Satellite, ChannelCategory};
//!
//! let ch = ChannelDescriptor::tv(1, "Das Erste", Satellite::Astra19E)
//!     .with_category(ChannelCategory::General);
//! assert!(!ch.radio);
//! assert!(ch.passes_metadata_filters());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ait;
mod channel;
mod lineup;
mod schedule;

pub use ait::{Ait, AitEntry, AppControlCode};
pub use channel::{ChannelCategory, ChannelDescriptor, ChannelId, Language, Network, Satellite};
pub use lineup::{ChannelLineup, FunnelReport};
pub use schedule::BroadcastSchedule;
