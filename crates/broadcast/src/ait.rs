//! The Application Information Table (AIT).
//!
//! HbbTV signals the available applications inside the broadcast stream:
//! each AIT entry carries an application identifier, a control code
//! (autostart or present), and the HTTP(S) entry-point URL the TV loads.
//! §V-A notes that some channels encode *third-party* URLs (e.g.
//! `google-analytics.com`) directly into the signal, which is why the
//! first-party heuristic cannot blindly take the first request.

use hbbtv_net::Url;
use serde::{Deserialize, Serialize};

/// HbbTV application control codes (ETSI TS 102 796, simplified to the
/// two codes the measurement cares about).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppControlCode {
    /// `AUTOSTART` — the red-button application launched on tune-in.
    Autostart,
    /// `PRESENT` — available but only started on user action.
    Present,
}

/// One signalled application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AitEntry {
    /// Application identifier within the AIT.
    pub app_id: u16,
    /// Launch behavior.
    pub control_code: AppControlCode,
    /// Entry-point URL encoded in the broadcast signal.
    pub url: Url,
}

/// The Application Information Table of a channel.
///
/// An empty AIT means the channel does not signal HbbTV content — such
/// channels produce no HTTP(S) traffic and fall out of the funnel at
/// step 5.
///
/// # Examples
///
/// ```
/// use hbbtv_broadcast::{Ait, AppControlCode};
///
/// let mut ait = Ait::new();
/// ait.push(1, AppControlCode::Autostart, "http://hbbtv.ard.de/app".parse()?);
/// assert!(ait.autostart().is_some());
/// # Ok::<(), hbbtv_net::ParseUrlError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Ait {
    entries: Vec<AitEntry>,
}

impl Ait {
    /// Creates an empty AIT (no HbbTV signalling).
    pub fn new() -> Self {
        Ait::default()
    }

    /// Adds an application entry.
    pub fn push(&mut self, app_id: u16, control_code: AppControlCode, url: Url) {
        self.entries.push(AitEntry {
            app_id,
            control_code,
            url,
        });
    }

    /// All entries in signalling order.
    pub fn entries(&self) -> &[AitEntry] {
        &self.entries
    }

    /// The first autostart application, if any — what the TV launches
    /// when tuning in.
    pub fn autostart(&self) -> Option<&AitEntry> {
        self.entries
            .iter()
            .find(|e| e.control_code == AppControlCode::Autostart)
    }

    /// Whether the channel signals any HbbTV application.
    pub fn signals_hbbtv(&self) -> bool {
        !self.entries.is_empty()
    }

    /// Number of signalled applications.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the AIT is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl FromIterator<AitEntry> for Ait {
    fn from_iter<T: IntoIterator<Item = AitEntry>>(iter: T) -> Self {
        Ait {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        s.parse().unwrap()
    }

    #[test]
    fn empty_ait_signals_nothing() {
        let ait = Ait::new();
        assert!(!ait.signals_hbbtv());
        assert!(ait.autostart().is_none());
        assert!(ait.is_empty());
        assert_eq!(ait.len(), 0);
    }

    #[test]
    fn autostart_prefers_first_autostart_entry() {
        let mut ait = Ait::new();
        ait.push(9, AppControlCode::Present, url("http://media.zdf.de/lib"));
        ait.push(1, AppControlCode::Autostart, url("http://hbbtv.zdf.de/red"));
        ait.push(2, AppControlCode::Autostart, url("http://hbbtv.zdf.de/alt"));
        let auto = ait.autostart().unwrap();
        assert_eq!(auto.app_id, 1);
        assert_eq!(auto.url.host(), "hbbtv.zdf.de");
        assert!(ait.signals_hbbtv());
    }

    #[test]
    fn third_party_urls_can_be_signalled() {
        // The §V-A pitfall: the signal itself can point at a tracker.
        let mut ait = Ait::new();
        ait.push(
            1,
            AppControlCode::Autostart,
            url("http://google-analytics.com/collect?cid=ch"),
        );
        assert_eq!(
            ait.autostart().unwrap().url.etld1().as_str(),
            "google-analytics.com"
        );
    }

    #[test]
    fn from_iterator_collects() {
        let ait: Ait = vec![AitEntry {
            app_id: 1,
            control_code: AppControlCode::Present,
            url: url("http://x.de/a"),
        }]
        .into_iter()
        .collect();
        assert_eq!(ait.len(), 1);
    }
}
