//! Channel descriptors and their metadata.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A satellite position the antenna could receive (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Satellite {
    /// Astra 1L at 19.2°E — 31.5% of analyzed channels.
    Astra19E,
    /// Hot Bird 13E at 13.0°E — 35% of analyzed channels.
    HotBird13E,
    /// Eutelsat 16E at 16.0°E — 33.5% of analyzed channels.
    Eutelsat16E,
}

impl Satellite {
    /// All three satellites of the study.
    pub const ALL: [Satellite; 3] = [
        Satellite::Astra19E,
        Satellite::HotBird13E,
        Satellite::Eutelsat16E,
    ];

    /// Human-readable name with orbital position.
    pub fn name(self) -> &'static str {
        match self {
            Satellite::Astra19E => "Astra 1L (19.2E)",
            Satellite::HotBird13E => "Hot Bird 13E (13.0E)",
            Satellite::Eutelsat16E => "Eutelsat 16E (16.0E)",
        }
    }
}

impl fmt::Display for Satellite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Broadcast language, from the satellite operators' guides (§IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Language {
    /// German — 92.7% of analyzed channels.
    German,
    /// English.
    English,
    /// French.
    French,
    /// Italian.
    Italian,
    /// Multiple languages (e.g. German and French).
    Multilingual,
    /// Any other language.
    Other,
}

/// Channel category, from the satellite operators' guides (§V-D4 uses the
/// first assigned category; there are ten in the data set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ChannelCategory {
    /// General entertainment — the category with the most trackers.
    General,
    /// News.
    News,
    /// Sports.
    Sports,
    /// Children — the GDPR Art. 8 case study of §V-D5.
    Children,
    /// Documentaries.
    Documentary,
    /// Music.
    Music,
    /// Teleshopping.
    Shopping,
    /// Movies and series.
    Movies,
    /// Regional/local broadcasters.
    Regional,
    /// Religious broadcasters.
    Religious,
}

impl ChannelCategory {
    /// All ten categories.
    pub const ALL: [ChannelCategory; 10] = [
        ChannelCategory::General,
        ChannelCategory::News,
        ChannelCategory::Sports,
        ChannelCategory::Children,
        ChannelCategory::Documentary,
        ChannelCategory::Music,
        ChannelCategory::Shopping,
        ChannelCategory::Movies,
        ChannelCategory::Regional,
        ChannelCategory::Religious,
    ];

    /// Display label matching Figure 7.
    pub fn label(self) -> &'static str {
        match self {
            ChannelCategory::General => "General",
            ChannelCategory::News => "News",
            ChannelCategory::Sports => "Sports",
            ChannelCategory::Children => "Children",
            ChannelCategory::Documentary => "Documentary",
            ChannelCategory::Music => "Music",
            ChannelCategory::Shopping => "Shopping",
            ChannelCategory::Movies => "Movies",
            ChannelCategory::Regional => "Regional",
            ChannelCategory::Religious => "Religious",
        }
    }
}

impl fmt::Display for ChannelCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The owning broadcaster group, which determines consent-notice branding
/// (§VI-B identifies twelve recurring notice styles) and policy templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Network {
    /// ARD — German public broadcasting (first party `ard.de`).
    Ard,
    /// ZDF — German public broadcasting.
    Zdf,
    /// RTL Germany group (includes Super RTL).
    RtlGermany,
    /// ProSiebenSat.1 group (HbbTV platform `redbutton.de`).
    ProSiebenSat1,
    /// Discovery group (DMAX, TLC, …).
    Discovery,
    /// Paramount group (MTV, Comedy Central, Nickelodeon, …).
    Paramount,
    /// Teleshopping operators (QVC, HSE, MediaShop, …).
    Shopping,
    /// Austrian public/private broadcasters.
    Austrian,
    /// Independent or regional operators.
    Independent,
    /// Religious broadcasters (Bibel TV, …).
    Religious,
}

impl Network {
    /// Whether the network is a public broadcaster (the paper notes
    /// privacy pointers were more visible on private channels).
    pub fn is_public(self) -> bool {
        matches!(self, Network::Ard | Network::Zdf | Network::Austrian)
    }
}

/// Identifier of a received channel (service ID within the scan).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ChannelId(pub u32);

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// One received broadcast service with all metadata the §IV-B funnel
/// inspects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelDescriptor {
    /// Service identifier.
    pub id: ChannelId,
    /// Channel name from the service descriptor (may be empty — filter
    /// step 3 removes such channels).
    pub name: String,
    /// Receiving satellite.
    pub satellite: Satellite,
    /// `Radio == true` marks radio services (filter step 1).
    pub radio: bool,
    /// Encrypted services show "No CI module" (filter step 2).
    pub encrypted: bool,
    /// The `invisible` attribute marks services without a signal
    /// (filter step 3).
    pub invisible: bool,
    /// Delivered exclusively over the Internet (filter step 6 removes
    /// IPTV services).
    pub iptv: bool,
    /// Broadcast language from the operator guide.
    pub language: Language,
    /// Categories from the operator guide; analyses use the first.
    pub categories: Vec<ChannelCategory>,
    /// Owning broadcaster group.
    pub network: Network,
}

impl ChannelDescriptor {
    /// Creates a free-to-air TV channel with sensible defaults (visible,
    /// unencrypted, German, General category, independent network).
    pub fn tv(id: u32, name: &str, satellite: Satellite) -> Self {
        ChannelDescriptor {
            id: ChannelId(id),
            name: name.to_string(),
            satellite,
            radio: false,
            encrypted: false,
            invisible: false,
            iptv: false,
            language: Language::German,
            categories: vec![ChannelCategory::General],
            network: Network::Independent,
        }
    }

    /// Creates a radio service.
    pub fn radio(id: u32, name: &str, satellite: Satellite) -> Self {
        let mut c = Self::tv(id, name, satellite);
        c.radio = true;
        c
    }

    /// Builder-style: sets the primary category (prepends it).
    pub fn with_category(mut self, cat: ChannelCategory) -> Self {
        self.categories.retain(|&c| c != cat);
        self.categories.insert(0, cat);
        self
    }

    /// Builder-style: sets the network.
    pub fn with_network(mut self, network: Network) -> Self {
        self.network = network;
        self
    }

    /// Builder-style: sets the language.
    pub fn with_language(mut self, language: Language) -> Self {
        self.language = language;
        self
    }

    /// Builder-style: marks the channel encrypted.
    pub fn with_encryption(mut self) -> Self {
        self.encrypted = true;
        self
    }

    /// The primary category (the first assigned one, per §V-D4), or
    /// `None` if the guide listed none.
    pub fn primary_category(&self) -> Option<ChannelCategory> {
        self.categories.first().copied()
    }

    /// Whether the channel exclusively targets children (§V-D5 finds 12
    /// such channels via the satellite providers' metadata).
    pub fn targets_children(&self) -> bool {
        self.primary_category() == Some(ChannelCategory::Children)
    }

    /// Filter steps 1–3 of §IV-B: a regular TV channel (not radio), free
    /// to air, visible, and named.
    pub fn passes_metadata_filters(&self) -> bool {
        !self.radio && !self.encrypted && !self.invisible && !self.name.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_filters_reject_each_condition() {
        let ok = ChannelDescriptor::tv(1, "Das Erste", Satellite::Astra19E);
        assert!(ok.passes_metadata_filters());

        let mut radio = ok.clone();
        radio.radio = true;
        assert!(!radio.passes_metadata_filters());

        let encrypted = ok.clone().with_encryption();
        assert!(!encrypted.passes_metadata_filters());

        let mut invisible = ok.clone();
        invisible.invisible = true;
        assert!(!invisible.passes_metadata_filters());

        let mut unnamed = ok.clone();
        unnamed.name.clear();
        assert!(!unnamed.passes_metadata_filters());
    }

    #[test]
    fn primary_category_is_first() {
        let ch = ChannelDescriptor::tv(2, "KiKA", Satellite::Astra19E)
            .with_category(ChannelCategory::Children);
        assert_eq!(ch.primary_category(), Some(ChannelCategory::Children));
        assert!(ch.targets_children());
    }

    #[test]
    fn with_category_deduplicates() {
        let ch = ChannelDescriptor::tv(3, "X", Satellite::HotBird13E)
            .with_category(ChannelCategory::News)
            .with_category(ChannelCategory::News);
        assert_eq!(
            ch.categories
                .iter()
                .filter(|&&c| c == ChannelCategory::News)
                .count(),
            1
        );
    }

    #[test]
    fn public_networks() {
        assert!(Network::Ard.is_public());
        assert!(Network::Zdf.is_public());
        assert!(!Network::RtlGermany.is_public());
        assert!(!Network::Shopping.is_public());
    }

    #[test]
    fn satellite_names() {
        assert_eq!(Satellite::Astra19E.to_string(), "Astra 1L (19.2E)");
        assert_eq!(Satellite::ALL.len(), 3);
    }

    #[test]
    fn category_labels_cover_all_ten() {
        let labels: std::collections::HashSet<&str> =
            ChannelCategory::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 10);
    }
}
