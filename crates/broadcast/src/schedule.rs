//! Broadcast availability schedules.
//!
//! §IV-D attributes the varying per-run channel counts (215–381) to
//! channels "not always available (e.g., some channels only broadcast
//! during daytime)". A [`BroadcastSchedule`] models the daily on-air
//! window of a channel.

use hbbtv_net::Timestamp;
use serde::{Deserialize, Serialize};

/// The daily on-air window of a channel, in UTC hours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BroadcastSchedule {
    /// On air around the clock.
    #[default]
    Continuous,
    /// On air between `from` (inclusive) and `until` (exclusive) hours of
    /// day. When `from > until`, the window wraps midnight (e.g. a
    /// night-loop channel broadcasting 22:00–05:00). Equal bounds mean
    /// an empty window (never on air); use [`BroadcastSchedule::Continuous`]
    /// for round-the-clock services.
    Daily {
        /// First on-air hour (0–23).
        from: u8,
        /// First off-air hour (0–23).
        until: u8,
    },
}

impl BroadcastSchedule {
    /// A typical daytime-only broadcaster (06:00–18:00 UTC).
    pub fn daytime() -> Self {
        BroadcastSchedule::Daily { from: 6, until: 18 }
    }

    /// Whether the channel transmits a program at `t`.
    ///
    /// # Examples
    ///
    /// ```
    /// use hbbtv_broadcast::BroadcastSchedule;
    /// use hbbtv_net::{Duration, Timestamp};
    ///
    /// let daytime = BroadcastSchedule::daytime();
    /// let midnight = Timestamp::MEASUREMENT_START;
    /// assert!(!daytime.on_air(midnight));
    /// assert!(daytime.on_air(midnight + Duration::from_secs(12 * 3600)));
    /// ```
    pub fn on_air(self, t: Timestamp) -> bool {
        match self {
            BroadcastSchedule::Continuous => true,
            BroadcastSchedule::Daily { from, until } => {
                let h = t.hour_of_day();
                if from <= until {
                    h >= from && h < until
                } else {
                    h >= from || h < until
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbtv_net::Duration;

    fn at_hour(h: u64) -> Timestamp {
        Timestamp::MEASUREMENT_START + Duration::from_secs(h * 3600)
    }

    #[test]
    fn continuous_is_always_on() {
        for h in 0..24 {
            assert!(BroadcastSchedule::Continuous.on_air(at_hour(h)));
        }
    }

    #[test]
    fn daily_window_bounds() {
        let s = BroadcastSchedule::Daily { from: 6, until: 18 };
        assert!(!s.on_air(at_hour(5)));
        assert!(s.on_air(at_hour(6)));
        assert!(s.on_air(at_hour(17)));
        assert!(!s.on_air(at_hour(18)));
    }

    #[test]
    fn wrapping_window() {
        let s = BroadcastSchedule::Daily { from: 22, until: 5 };
        assert!(s.on_air(at_hour(23)));
        assert!(s.on_air(at_hour(0)));
        assert!(s.on_air(at_hour(4)));
        assert!(!s.on_air(at_hour(5)));
        assert!(!s.on_air(at_hour(12)));
    }
}
