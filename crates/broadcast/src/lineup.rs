//! Scan results and the §IV-B channel-selection funnel.

use crate::ait::Ait;
use crate::channel::{ChannelDescriptor, ChannelId};
use crate::schedule::BroadcastSchedule;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The result of a signal scan: every received service with its AIT and
/// broadcast schedule.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChannelLineup {
    services: Vec<(ChannelDescriptor, Ait, BroadcastSchedule)>,
}

impl ChannelLineup {
    /// Creates an empty lineup.
    pub fn new() -> Self {
        ChannelLineup::default()
    }

    /// Adds a received service.
    pub fn push(&mut self, descriptor: ChannelDescriptor, ait: Ait, schedule: BroadcastSchedule) {
        self.services.push((descriptor, ait, schedule));
    }

    /// Number of received services (3,575 in the paper's scan).
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Whether the scan found nothing.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Iterates over all received services.
    pub fn iter(&self) -> impl Iterator<Item = &(ChannelDescriptor, Ait, BroadcastSchedule)> {
        self.services.iter()
    }

    /// Looks up a service by channel id.
    pub fn get(&self, id: ChannelId) -> Option<&(ChannelDescriptor, Ait, BroadcastSchedule)> {
        self.services.iter().find(|(d, _, _)| d.id == id)
    }

    /// Applies the §IV-B funnel.
    ///
    /// Steps 1–3 use channel metadata; step 5 uses the `has_traffic`
    /// observation from the exploratory measurement (a channel with an
    /// empty AIT never has traffic, but a signalled application can also
    /// stay silent); step 6 removes IPTV services.
    ///
    /// Returns the funnel report and the ids of the final channel set.
    pub fn funnel<F>(&self, mut has_traffic: F) -> (FunnelReport, Vec<ChannelId>)
    where
        F: FnMut(&ChannelDescriptor, &Ait) -> bool,
    {
        let received = self.services.len();
        let mut report = FunnelReport {
            received,
            ..FunnelReport::default()
        };
        let mut finals = Vec::new();
        for (desc, ait, _) in &self.services {
            if desc.radio {
                report.radio += 1;
                continue;
            }
            report.tv_channels += 1;
            if desc.encrypted {
                continue;
            }
            report.free_to_air += 1;
            if desc.invisible || desc.name.is_empty() {
                continue;
            }
            report.candidates += 1;
            if !has_traffic(desc, ait) {
                report.no_traffic += 1;
                continue;
            }
            if desc.iptv {
                report.iptv += 1;
                continue;
            }
            finals.push(desc.id);
        }
        report.final_set = finals.len();
        (report, finals)
    }
}

impl FromIterator<(ChannelDescriptor, Ait, BroadcastSchedule)> for ChannelLineup {
    fn from_iter<T: IntoIterator<Item = (ChannelDescriptor, Ait, BroadcastSchedule)>>(
        iter: T,
    ) -> Self {
        ChannelLineup {
            services: iter.into_iter().collect(),
        }
    }
}

/// Counts at every stage of the §IV-B funnel.
///
/// Paper values: 3,575 received → 3,150 TV (425 radio) → 2,046 free-to-air
/// → 1,149 candidates → minus silent channels and one IPTV service →
/// 396 final channels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunnelReport {
    /// Services received by the scan.
    pub received: usize,
    /// TV services (step 1 keeps these).
    pub tv_channels: usize,
    /// Radio services (step 1 drops these).
    pub radio: usize,
    /// Unencrypted TV services (step 2 keeps these).
    pub free_to_air: usize,
    /// Visible, named, free-to-air TV services (after step 3) that went
    /// into the exploratory measurement.
    pub candidates: usize,
    /// Candidates without any HTTP(S) traffic (step 5 drops these).
    pub no_traffic: usize,
    /// IPTV services (step 6 drops these).
    pub iptv: usize,
    /// The final analysis set.
    pub final_set: usize,
}

impl fmt::Display for FunnelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "received {} -> tv {} (radio {}) -> fta {} -> candidates {} -> \
             -{} silent, -{} iptv -> final {}",
            self.received,
            self.tv_channels,
            self.radio,
            self.free_to_air,
            self.candidates,
            self.no_traffic,
            self.iptv,
            self.final_set
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ait::AppControlCode;
    use crate::channel::Satellite;

    fn hbbtv_ait(url: &str) -> Ait {
        let mut ait = Ait::new();
        ait.push(1, AppControlCode::Autostart, url.parse().unwrap());
        ait
    }

    fn lineup() -> ChannelLineup {
        let mut l = ChannelLineup::new();
        // 1: a normal HbbTV channel — survives everything.
        l.push(
            ChannelDescriptor::tv(1, "Das Erste", Satellite::Astra19E),
            hbbtv_ait("http://hbbtv.ard.de/app"),
            BroadcastSchedule::Continuous,
        );
        // 2: radio — dropped at step 1.
        l.push(
            ChannelDescriptor::radio(2, "Deutschlandfunk", Satellite::Astra19E),
            Ait::new(),
            BroadcastSchedule::Continuous,
        );
        // 3: encrypted — dropped at step 2.
        l.push(
            ChannelDescriptor::tv(3, "Sky Premium", Satellite::Astra19E).with_encryption(),
            hbbtv_ait("http://sky.de/app"),
            BroadcastSchedule::Continuous,
        );
        // 4: invisible — dropped at step 3.
        {
            let mut d = ChannelDescriptor::tv(4, "Ghost", Satellite::HotBird13E);
            d.invisible = true;
            l.push(d, Ait::new(), BroadcastSchedule::Continuous);
        }
        // 5: no traffic — dropped at step 5.
        l.push(
            ChannelDescriptor::tv(5, "Testbild", Satellite::Eutelsat16E),
            Ait::new(),
            BroadcastSchedule::Continuous,
        );
        // 6: IPTV — dropped at step 6.
        {
            let mut d = ChannelDescriptor::tv(6, "StreamOnly", Satellite::Eutelsat16E);
            d.iptv = true;
            l.push(
                d,
                hbbtv_ait("http://stream.de/app"),
                BroadcastSchedule::Continuous,
            );
        }
        l
    }

    #[test]
    fn funnel_counts_every_stage() {
        let l = lineup();
        let (report, finals) = l.funnel(|_, ait| ait.signals_hbbtv());
        assert_eq!(report.received, 6);
        assert_eq!(report.radio, 1);
        assert_eq!(report.tv_channels, 5);
        assert_eq!(report.free_to_air, 4);
        assert_eq!(report.candidates, 3);
        assert_eq!(report.no_traffic, 1);
        assert_eq!(report.iptv, 1);
        assert_eq!(report.final_set, 1);
        assert_eq!(finals, vec![ChannelId(1)]);
    }

    #[test]
    fn funnel_report_displays_chain() {
        let l = lineup();
        let (report, _) = l.funnel(|_, ait| ait.signals_hbbtv());
        let s = report.to_string();
        assert!(s.contains("received 6"));
        assert!(s.contains("final 1"));
    }

    #[test]
    fn get_by_id() {
        let l = lineup();
        assert!(l.get(ChannelId(1)).is_some());
        assert!(l.get(ChannelId(99)).is_none());
        assert_eq!(l.len(), 6);
        assert!(!l.is_empty());
    }

    #[test]
    fn traffic_predicate_can_override_ait() {
        // A channel may signal an app that never talks (test image with
        // stale AIT) — the predicate decides.
        let l = lineup();
        let (report, finals) = l.funnel(|_, _| false);
        assert_eq!(report.final_set, 0);
        assert!(finals.is_empty());
        assert_eq!(report.no_traffic, 3);
    }
}
