//! The HbbTV browser runtime.

use crate::backend::NetworkBackend;
use crate::device::{DeviceProfile, ProgramInfo};
use crate::screen::Screenshot;
use crate::storage::{CookieJar, LocalStorage, StoredCookie};
use hbbtv_apps::{
    AppPage, ColorButton, HbbtvApp, LeakItem, PageId, PageKind, ResourceLoad, StorageValueKind,
};
use hbbtv_broadcast::{Ait, ChannelDescriptor};
use hbbtv_consent::{ButtonAction, ConsentNotice, ScreenContent};
use hbbtv_net::{Method, Request, Response, SimClock, Timestamp, Url};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maximum redirect-chain depth the browser follows (cookie syncing uses
/// a single hop; the cap guards against loops).
const MAX_REDIRECTS: usize = 4;

/// How long a non-modal consent notice stays on screen before the app
/// hides it again. §VI-B ("Persistence") observes that notices "often did
/// not occur on all screenshots for a given channel", i.e. they disappear
/// after a while; 90 s yields the 1–2 notice screenshots per channel the
/// paper's Table IV/V ratios imply.
const NOTICE_AUTO_HIDE: hbbtv_net::Duration = hbbtv_net::Duration::from_secs(90);

/// How long a "channel technical message" (e.g. "HbbTV-Dienst nicht
/// verfügbar") stays on screen after a button press that has no content.
const TECH_MESSAGE_TTL: hbbtv_net::Duration = hbbtv_net::Duration::from_secs(100);

/// A remote-control key the study's script injects via the webOS API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RcButton {
    /// Red color key.
    Red,
    /// Green color key.
    Green,
    /// Yellow color key.
    Yellow,
    /// Blue color key.
    Blue,
    /// Cursor up.
    Up,
    /// Cursor down.
    Down,
    /// Cursor left.
    Left,
    /// Cursor right.
    Right,
    /// ENTER / OK.
    Enter,
}

impl RcButton {
    /// The color-button mapping, if this is a color key.
    pub fn color(self) -> Option<ColorButton> {
        match self {
            RcButton::Red => Some(ColorButton::Red),
            RcButton::Green => Some(ColorButton::Green),
            RcButton::Yellow => Some(ColorButton::Yellow),
            RcButton::Blue => Some(ColorButton::Blue),
            _ => None,
        }
    }
}

/// Everything the TV needs to present one channel: the broadcast
/// metadata, the (possibly absent) HbbTV application, and the program
/// guide state.
#[derive(Debug, Clone)]
pub struct ChannelContext {
    /// Channel metadata from the broadcast signal.
    pub descriptor: ChannelDescriptor,
    /// The signalled application model, if the channel carries HbbTV.
    pub app: Option<HbbtvApp>,
    /// What the channel is airing.
    pub program: ProgramInfo,
    /// Whether a picture is transmitted (false → "No Signal"
    /// screenshots).
    pub signal_ok: bool,
    /// Whether a channel technical message replaces the program.
    pub tech_message: bool,
    /// Whether the channel shows a technical message when a colored
    /// button without bound content is pressed (the Table IV "CTM"
    /// screenshots cluster in the button runs).
    pub ctm_on_missing: bool,
    /// Whether the app suppresses its consent notice on this tune-in.
    /// Real notices are frequency-capped and timing-dependent; §VI's
    /// per-run channel counts (70/70/26/38/54) only union to 121 because
    /// different subsets showed the notice in different runs.
    pub suppress_notice: bool,
}

#[derive(Debug)]
struct NoticeState {
    notice: ConsentNotice,
    layer: usize,
    focus: usize,
    shown_at: Timestamp,
}

#[derive(Debug)]
struct BeaconState {
    load: ResourceLoad,
    next_due: Timestamp,
}

/// The simulated television.
///
/// See the crate docs for the big picture; the harness drives a `Tv` via
/// [`Tv::tune`], [`Tv::press`], [`Tv::advance`], and [`Tv::screenshot`].
#[derive(Debug)]
pub struct Tv<B> {
    device: DeviceProfile,
    clock: SimClock,
    backend: B,
    rng: StdRng,
    jar: CookieJar,
    storage: LocalStorage,
    connected: bool,
    dnt: bool,
    ctx: Option<ChannelContext>,
    autostart_page: Option<PageId>,
    current_page: Option<PageId>,
    notice: Option<NoticeState>,
    consent_granted: bool,
    link_cursor: usize,
    beacons: Vec<BeaconState>,
    session_id: String,
    tech_message_until: Option<Timestamp>,
    signal_ok_override: Option<bool>,
}

impl<B: NetworkBackend> Tv<B> {
    /// Creates a TV with the given device profile, shared clock, network
    /// backend, and RNG seed.
    pub fn new(device: DeviceProfile, clock: SimClock, backend: B, seed: u64) -> Self {
        Tv {
            device,
            clock,
            backend,
            rng: StdRng::seed_from_u64(seed),
            jar: CookieJar::new(),
            storage: LocalStorage::new(),
            connected: true,
            dnt: false,
            ctx: None,
            autostart_page: None,
            current_page: None,
            notice: None,
            consent_granted: false,
            link_cursor: 0,
            beacons: Vec::new(),
            session_id: String::new(),
            tech_message_until: None,
            signal_ok_override: None,
        }
    }

    /// Mutable access to the network backend, for drivers that need to
    /// feed it out-of-band context (e.g. the harness tells its backend
    /// which first party is currently tuned so an on-device block list
    /// can evaluate `$third-party` rules).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Connects or disconnects the TV from the Internet. Without a
    /// connection the linear program still shows but no HbbTV content
    /// loads (§II).
    pub fn set_connected(&mut self, connected: bool) {
        self.connected = connected;
    }

    /// Enables the deprecated Do-Not-Track signal on every request.
    /// Prior work (Tagliaro et al., NDSS'23) communicated consent this
    /// way; as on the real ecosystem, the simulated trackers ignore it —
    /// which is precisely why this study drives real consent notices
    /// instead.
    pub fn set_dnt(&mut self, enabled: bool) {
        self.dnt = enabled;
    }

    /// The webOS developer-API channel metadata (what PyWebOSTV exposed
    /// to the remote-control script): the tuned channel's descriptor and
    /// current program, if a channel is tuned.
    pub fn channel_metadata(&self) -> Option<(&ChannelDescriptor, &ProgramInfo)> {
        self.ctx.as_ref().map(|c| (&c.descriptor, &c.program))
    }

    /// The cookie jar (the study's SSH extraction path).
    pub fn cookie_jar(&self) -> &CookieJar {
        &self.jar
    }

    /// The local storage (extracted alongside the cookie jar).
    pub fn local_storage(&self) -> &LocalStorage {
        &self.storage
    }

    /// Wipes cookies and local storage (performed after every run).
    pub fn wipe_storage(&mut self) {
        self.jar.wipe();
        self.storage.wipe();
    }

    /// The §IV-C extract-then-wipe lifecycle in one step: snapshots the
    /// cookie jar and local storage (the study's post-run SSH pull),
    /// wipes both, and returns the snapshots. Local-storage entries come
    /// back as `(origin, key, value)` strings, the dataset's wire shape.
    pub fn extract_storage(&mut self) -> (Vec<StoredCookie>, Vec<(String, String, String)>) {
        let cookies = self.jar.all().cloned().collect();
        let storage = self
            .storage
            .all()
            .map(|(origin, key, value)| (origin.to_string(), key.to_string(), value.to_string()))
            .collect();
        self.wipe_storage();
        (cookies, storage)
    }

    /// Turns the TV off: leaves the channel and stops all application
    /// activity. Cookies and local storage survive power-off.
    pub fn power_off(&mut self) {
        self.ctx = None;
        self.reset_app_state();
    }

    fn reset_app_state(&mut self) {
        self.autostart_page = None;
        self.current_page = None;
        self.notice = None;
        self.consent_granted = false;
        self.link_cursor = 0;
        self.beacons.clear();
        self.tech_message_until = None;
        self.signal_ok_override = None;
    }

    /// Overrides the signal state (the harness uses this to model weak
    /// transponders whose picture drops out between screenshots).
    pub fn set_signal_ok(&mut self, ok: bool) {
        self.signal_ok_override = Some(ok);
    }

    /// Tunes to a channel. Leaving the previous channel exits its
    /// application (§IV-C: "the routine switched to the next channel,
    /// automatically exiting any started HbbTV application"). If the TV
    /// is connected and the AIT signals an autostart application, the
    /// runtime loads it.
    pub fn tune(&mut self, ctx: ChannelContext, ait: &Ait) {
        self.reset_app_state();
        self.session_id = mint(&mut self.rng, 12);
        self.ctx = Some(ctx);
        if !self.connected {
            return;
        }
        let Some(entry) = ait.autostart().map(|e| e.url.clone()) else {
            return;
        };
        // Load the signalled entry point (the first-party determination
        // of §V-A keys on this being the first content-bearing request).
        let req = self.build_request(
            &ResourceLoad::get(entry, hbbtv_apps::ResourceKind::Document),
            None,
        );
        self.deliver(req, 0);
        // Open the autostart page of the application model.
        let autostart = self
            .ctx
            .as_ref()
            .and_then(|c| c.app.as_ref())
            .and_then(|a| a.autostart_page())
            .map(|p| p.id);
        if let Some(id) = autostart {
            self.autostart_page = Some(id);
            self.open_page(id);
        }
    }

    /// Injects a remote-control key press.
    pub fn press(&mut self, button: RcButton) {
        if let Some(color) = button.color() {
            let page = self
                .ctx
                .as_ref()
                .and_then(|c| c.app.as_ref())
                .and_then(|a| a.page_for(color))
                .map(|p| p.id);
            match page {
                Some(id) => {
                    // Red on the already-open autostart app hides it.
                    if color == ColorButton::Red && self.current_page == Some(id) {
                        self.current_page = self.autostart_page;
                    } else {
                        self.open_page(id);
                    }
                }
                None => {
                    // No content behind this button: some channels show a
                    // technical message for a while.
                    let show_ctm = self.ctx.as_ref().map(|c| c.ctm_on_missing) == Some(true);
                    if show_ctm {
                        self.tech_message_until = Some(self.clock.now() + TECH_MESSAGE_TTL);
                    }
                }
            }
            return;
        }
        match button {
            RcButton::Up | RcButton::Left => self.move_cursor(-1),
            RcButton::Down | RcButton::Right => self.move_cursor(1),
            RcButton::Enter => self.activate(),
            _ => unreachable!("color keys handled above"),
        }
    }

    fn move_cursor(&mut self, delta: isize) {
        if let Some(ns) = &mut self.notice {
            let n = ns.notice.layers[ns.layer].buttons.len();
            ns.focus = step_clamped(ns.focus, delta, n);
        } else if let Some(page) = self.current_page_ref() {
            let n = page.links.len();
            if n > 0 {
                self.link_cursor = step_clamped(self.link_cursor, delta, n);
            }
        }
    }

    fn activate(&mut self) {
        if self.notice.is_some() {
            self.activate_notice_button();
        } else if let Some(page) = self.current_page_ref() {
            if let Some(&target) = page.links.get(self.link_cursor) {
                // In-page navigation: the application keeps running, so
                // its beacons survive (unlike a color-button app switch).
                self.open_page_inner(target, false);
            }
        }
    }

    fn activate_notice_button(&mut self) {
        let Some(ns) = &mut self.notice else { return };
        let action = ns.notice.layers[ns.layer].buttons[ns.focus].action;
        match action {
            ButtonAction::AcceptAll => {
                self.notice = None;
                self.consent_granted = true;
                self.fire_post_consent();
            }
            ButtonAction::Settings
            | ButtonAction::SettingsOrDecline
            | ButtonAction::Privacy
            | ButtonAction::PartnerList => {
                if ns.layer + 1 < ns.notice.layers.len() {
                    ns.layer += 1;
                    ns.focus = ns.notice.layers[ns.layer].default_focus;
                } else {
                    self.notice = None;
                }
            }
            ButtonAction::Decline
            | ButtonAction::OnlyNecessary
            | ButtonAction::SaveSelection
            | ButtonAction::ConfirmDeselection => {
                self.notice = None;
            }
        }
    }

    fn fire_post_consent(&mut self) {
        let mut pages: Vec<PageId> = [self.autostart_page, self.current_page]
            .into_iter()
            .flatten()
            .collect();
        pages.dedup();
        let mut loads: Vec<ResourceLoad> = Vec::new();
        for id in pages {
            if let Some(page) = self.page_ref(id) {
                loads.extend(page.post_consent_resources.iter().cloned());
            }
        }
        let referer = self.app_entry_url();
        for load in loads {
            self.fire_load(&load, referer.clone());
        }
    }

    /// Lets simulated time pass: beacons of the open pages fire at their
    /// due instants, then the clock lands at `now + d`.
    pub fn advance(&mut self, d: hbbtv_net::Duration) {
        let end = self.clock.now() + d;
        while let Some((idx, due)) = self
            .beacons
            .iter()
            .enumerate()
            .filter(|(_, b)| b.next_due <= end)
            .min_by_key(|(_, b)| b.next_due)
            .map(|(i, b)| (i, b.next_due))
        {
            if due > self.clock.now() {
                self.clock.jump_to(due);
            }
            let (load, interval, burst) = {
                let b = &self.beacons[idx];
                let interval = b.load.repeat_every.expect("beacons repeat");
                (b.load.clone(), interval, b.load.burst)
            };
            let referer = self.app_entry_url();
            for _ in 0..burst {
                self.fire_load(&load, referer.clone());
            }
            self.beacons[idx].next_due = due + interval;
        }
        if end > self.clock.now() {
            self.clock.jump_to(end);
        }
        // Non-modal notices hide themselves after a while (§VI-B
        // "Persistence").
        let now = self.clock.now();
        if let Some(ns) = &self.notice {
            if !ns.notice.modal && now.since(ns.shown_at) > NOTICE_AUTO_HIDE {
                self.notice = None;
            }
        }
        if let Some(until) = self.tech_message_until {
            if now >= until {
                self.tech_message_until = None;
            }
        }
    }

    /// Captures what is currently on screen.
    pub fn screenshot(&self) -> Option<Screenshot> {
        let ctx = self.ctx.as_ref()?;
        let page = self.current_page_ref();
        let surface = page.and_then(|p| match p.kind {
            PageKind::AutostartBar => None,
            PageKind::MediaLibrary => Some(hbbtv_consent::AppSurface::MediaLibrary),
            PageKind::InfoText => Some(hbbtv_consent::AppSurface::InfoText),
            PageKind::Game => Some(hbbtv_consent::AppSurface::Game),
            PageKind::Shop => Some(hbbtv_consent::AppSurface::Shop),
            PageKind::Advertisement => Some(hbbtv_consent::AppSurface::Advertisement),
            PageKind::PrivacyPolicy | PageKind::CookieSettings => None,
        });
        let policy = matches!(
            page.map(|p| p.kind),
            Some(PageKind::PrivacyPolicy) | Some(PageKind::CookieSettings)
        );
        let cookie_controls = matches!(page.map(|p| p.kind), Some(PageKind::CookieSettings));
        let tech_active = ctx.tech_message
            || self
                .tech_message_until
                .map(|until| self.clock.now() < until)
                .unwrap_or(false);
        let content = ScreenContent {
            signal: self.signal_ok_override.unwrap_or(ctx.signal_ok),
            tech_message: tech_active,
            surface,
            notice: self
                .notice
                .as_ref()
                .map(|ns| (ns.notice.branding, ns.layer)),
            policy,
            cookie_controls,
            privacy_pointer: page.map(|p| p.privacy_pointer).unwrap_or(false),
        };
        Some(Screenshot {
            channel: ctx.descriptor.id,
            taken_at: self.clock.now(),
            content,
        })
    }

    /// Whether a consent notice is currently displayed (and which layer).
    pub fn notice_layer(&self) -> Option<usize> {
        self.notice.as_ref().map(|n| n.layer)
    }

    /// Whether the viewer has granted full consent on this channel.
    pub fn consent_granted(&self) -> bool {
        self.consent_granted
    }

    // ----- internals -------------------------------------------------

    fn app_entry_url(&self) -> Option<Url> {
        self.ctx
            .as_ref()
            .and_then(|c| c.app.as_ref())
            .map(|a| a.entry_url().clone())
    }

    fn page_ref(&self, id: PageId) -> Option<&AppPage> {
        self.ctx
            .as_ref()
            .and_then(|c| c.app.as_ref())
            .and_then(|a| a.page(id))
    }

    fn current_page_ref(&self) -> Option<&AppPage> {
        self.current_page.and_then(|id| self.page_ref(id))
    }

    fn open_page(&mut self, id: PageId) {
        self.open_page_inner(id, true);
    }

    fn open_page_inner(&mut self, id: PageId, replace_app: bool) {
        let Some(page) = self.page_ref(id).cloned() else {
            return;
        };
        // Opening a page via a color button replaces the running
        // application content; the previous page's beacons stop (this is
        // why the Blue run — which swaps the start bar for a privacy
        // page — carries so much less pixel traffic than General/Yellow
        // in Table III). In-page link navigation keeps them.
        if replace_app {
            self.beacons.clear();
        }
        self.current_page = Some(id);
        self.link_cursor = 0;
        self.tech_message_until = None;
        let referer = self.app_entry_url();

        // Storage writes happen as the page's script runs.
        if let Some(first_party) = referer.as_ref().map(|u| u.etld1().clone()) {
            let now = self.clock.now();
            for w in &page.storage_writes {
                let value = match w.kind {
                    StorageValueKind::Identifier(len) => mint(&mut self.rng, len),
                    StorageValueKind::UnixTimestamp => now.as_unix().to_string(),
                    StorageValueKind::ConsentState => "pending".to_string(),
                };
                self.storage.set(&first_party, &w.key, &value);
            }
        }

        // One-shot resources fire now; beacons are scheduled.
        for load in page.resources.clone() {
            match load.repeat_every {
                None => self.fire_load(&load, referer.clone()),
                Some(interval) => {
                    self.fire_load(&load, referer.clone());
                    self.beacons.push(BeaconState {
                        next_due: self.clock.now() + interval,
                        load,
                    });
                }
            }
        }

        // Consent-gated loads fire immediately if consent was already
        // granted earlier on this channel.
        if self.consent_granted {
            for load in page.post_consent_resources.clone() {
                self.fire_load(&load, referer.clone());
            }
        }

        // The notice opens with its first layer and default focus.
        let suppress = self.ctx.as_ref().map(|c| c.suppress_notice) == Some(true);
        if !self.consent_granted {
            if let Some(notice) = page.notice.clone() {
                // Frequency capping only affects non-modal banners; a
                // modal notice gates the app and always appears.
                if suppress && !notice.modal {
                    return;
                }
                let focus = notice.first_layer().default_focus;
                self.notice = Some(NoticeState {
                    notice,
                    layer: 0,
                    focus,
                    shown_at: self.clock.now(),
                });
            }
        }
    }

    fn fire_load(&mut self, load: &ResourceLoad, referer: Option<Url>) {
        let req = self.build_request(load, referer);
        self.deliver(req, 0);
    }

    fn build_request(&mut self, load: &ResourceLoad, referer: Option<Url>) -> Request {
        let now = self.clock.now();
        let (channel_name, program) = match &self.ctx {
            Some(c) => (c.descriptor.name.clone(), c.program.clone()),
            None => (String::new(), ProgramInfo::default()),
        };
        let mut url = load.url.clone();
        let mut body_pairs: Vec<(String, String)> = Vec::new();
        for &item in load.leaks.items() {
            let value = match item {
                LeakItem::UserId => Some(
                    self.jar
                        .any_value_for(url.etld1(), now)
                        .unwrap_or_else(|| self.session_id.clone()),
                ),
                LeakItem::SessionId => Some(self.session_id.clone()),
                other => self.device.leak_value(other, &program, &channel_name, now),
            };
            if let Some(v) = value {
                match load.method {
                    Method::Get => url = url.with_param(item.param_name(), &v),
                    _ => body_pairs.push((item.param_name().to_string(), v)),
                }
            }
        }
        let mut builder = match load.method {
            Method::Post => Request::post(url.clone()),
            _ => Request::get(url.clone()),
        };
        builder = builder.at(now).header("User-Agent", &self.device.os);
        if self.dnt {
            builder = builder.header("DNT", "1");
        }
        if let Some(r) = referer {
            builder = builder.header("Referer", &r.to_string());
        }
        if let Some(cookie) = self.jar.header_for(url.etld1(), now) {
            builder = builder.header("Cookie", &cookie);
        }
        if !body_pairs.is_empty() {
            let body: Vec<String> = body_pairs
                .into_iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            builder = builder.body(body.join("&"));
        }
        builder.build()
    }

    fn deliver(&mut self, req: Request, depth: usize) -> Response {
        let req_url = req.url.clone();
        let resp = self.backend.fetch(req);
        let now = self.clock.now();
        for sc in resp.set_cookies() {
            self.jar.apply(&sc, req_url.etld1(), now);
        }
        if depth < MAX_REDIRECTS && resp.status.is_redirect() {
            if let Some(location) = resp.location() {
                let mut builder = Request::get(location.clone())
                    .at(now)
                    .header("User-Agent", &self.device.os)
                    .header("Referer", &req_url.to_string());
                if let Some(cookie) = self.jar.header_for(location.etld1(), now) {
                    builder = builder.header("Cookie", &cookie);
                }
                self.deliver(builder.build(), depth + 1);
            }
        }
        resp
    }
}

fn step_clamped(pos: usize, delta: isize, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let next = pos as isize + delta;
    next.clamp(0, len as isize - 1) as usize
}

fn mint(rng: &mut StdRng, len: usize) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbtv_apps::{AppBuilder, LeakSpec, ResourceKind};
    use hbbtv_broadcast::{AppControlCode, Satellite};
    use hbbtv_consent::{branding_catalog, NoticeBranding, OverlayKind};
    use hbbtv_net::{ContentType, Duration, SetCookie, Status};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A backend that logs requests and answers with a canned response.
    #[derive(Clone, Default)]
    struct LogBackend {
        log: Rc<RefCell<Vec<Request>>>,
        set_cookie_on: Option<String>,
    }

    impl NetworkBackend for LogBackend {
        fn fetch(&mut self, request: Request) -> Response {
            self.log.borrow_mut().push(request.clone());
            let mut b = Response::builder(Status::OK).content_type(ContentType::Html);
            if let Some(host) = &self.set_cookie_on {
                if request.url.host() == host {
                    b = b.set_cookie(&SetCookie::session("uid", "cookieval1234567"));
                }
            }
            b.build()
        }
    }

    fn url(s: &str) -> Url {
        s.parse().unwrap()
    }

    fn ait_for(entry: &str) -> Ait {
        let mut ait = Ait::new();
        ait.push(1, AppControlCode::Autostart, url(entry));
        ait
    }

    fn ctx_with_app(app: HbbtvApp) -> ChannelContext {
        ChannelContext {
            descriptor: ChannelDescriptor::tv(1, "RTL", Satellite::Astra19E),
            app: Some(app),
            program: ProgramInfo::new("GZSZ", "General"),
            signal_ok: true,
            tech_message: false,
            ctm_on_missing: false,
            suppress_notice: false,
        }
    }

    fn simple_app() -> HbbtvApp {
        AppBuilder::new(url("http://hbbtv.rtl.de/start"))
            .page(PageKind::AutostartBar, |p| {
                p.resource(ResourceLoad::get(
                    url("http://hbbtv.rtl.de/bar.js"),
                    ResourceKind::Script,
                ));
                p.resource(
                    ResourceLoad::get(url("http://tvping.com/ping"), ResourceKind::Image)
                        .leaking(LeakSpec::beacon_ids())
                        .repeating(Duration::from_secs(1)),
                );
            })
            .page(PageKind::MediaLibrary, |p| {
                p.privacy_pointer();
                p.link(PageId(2));
            })
            .page(PageKind::PrivacyPolicy, |p| {
                p.resource(ResourceLoad::get(
                    url("http://hbbtv.rtl.de/policy.html"),
                    ResourceKind::Document,
                ));
            })
            .autostart(0)
            .bind(ColorButton::Red, 1)
            .bind(ColorButton::Blue, 2)
            .build()
    }

    fn new_tv(backend: LogBackend) -> Tv<LogBackend> {
        let clock = SimClock::starting_at(Timestamp::from_unix(1_700_000_000));
        Tv::new(DeviceProfile::study_tv(), clock, backend, 99)
    }

    #[test]
    fn tune_loads_entry_and_autostart_resources() {
        let backend = LogBackend::default();
        let log = backend.log.clone();
        let mut tv = new_tv(backend);
        tv.tune(
            ctx_with_app(simple_app()),
            &ait_for("http://hbbtv.rtl.de/start"),
        );
        let urls: Vec<String> = log.borrow().iter().map(|r| r.url.to_string()).collect();
        assert!(urls[0].starts_with("http://hbbtv.rtl.de/start"));
        assert!(urls.iter().any(|u| u.contains("bar.js")));
        assert!(urls.iter().any(|u| u.contains("tvping.com")));
    }

    #[test]
    fn disconnected_tv_loads_nothing() {
        let backend = LogBackend::default();
        let log = backend.log.clone();
        let mut tv = new_tv(backend);
        tv.set_connected(false);
        tv.tune(
            ctx_with_app(simple_app()),
            &ait_for("http://hbbtv.rtl.de/start"),
        );
        assert!(log.borrow().is_empty());
        // Screenshot still shows the program.
        let shot = tv.screenshot().unwrap();
        assert!(shot.content.signal);
    }

    #[test]
    fn beacons_fire_on_advance_with_timestamps() {
        let backend = LogBackend::default();
        let log = backend.log.clone();
        let mut tv = new_tv(backend);
        tv.tune(
            ctx_with_app(simple_app()),
            &ait_for("http://hbbtv.rtl.de/start"),
        );
        let before = log.borrow().len();
        tv.advance(Duration::from_secs(10));
        let after = log.borrow().len();
        assert_eq!(after - before, 10, "one beacon per second");
        let pings: Vec<u64> = log
            .borrow()
            .iter()
            .filter(|r| r.url.host() == "tvping.com")
            .map(|r| r.timestamp.as_unix())
            .collect();
        // Strictly increasing timestamps.
        assert!(pings.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn beacon_leaks_channel_session_user_ids() {
        let backend = LogBackend::default();
        let log = backend.log.clone();
        let mut tv = new_tv(backend);
        tv.tune(
            ctx_with_app(simple_app()),
            &ait_for("http://hbbtv.rtl.de/start"),
        );
        let log_ref = log.borrow();
        let ping = log_ref
            .iter()
            .find(|r| r.url.host() == "tvping.com")
            .unwrap();
        assert_eq!(ping.url.query_param("ch"), Some("RTL"));
        assert!(ping.url.query_param("sid").unwrap().len() == 12);
        assert!(ping.url.query_param("uid").is_some());
    }

    #[test]
    fn red_button_opens_media_library_and_enter_navigates() {
        let backend = LogBackend::default();
        let mut tv = new_tv(backend);
        tv.tune(
            ctx_with_app(simple_app()),
            &ait_for("http://hbbtv.rtl.de/start"),
        );
        assert_eq!(
            hbbtv_consent::annotate(&tv.screenshot().unwrap().content).overlay,
            OverlayKind::TvOnly,
            "autostart bar alone shows the program"
        );
        tv.press(RcButton::Red);
        let shot = tv.screenshot().unwrap();
        let a = hbbtv_consent::annotate(&shot.content);
        assert_eq!(a.overlay, OverlayKind::MediaLibrary);
        assert!(a.privacy_pointer);
        // ENTER follows the library's link to the policy page.
        tv.press(RcButton::Enter);
        let a = hbbtv_consent::annotate(&tv.screenshot().unwrap().content);
        assert_eq!(a.overlay, OverlayKind::Privacy);
    }

    #[test]
    fn blue_button_shows_policy() {
        let backend = LogBackend::default();
        let log = backend.log.clone();
        let mut tv = new_tv(backend);
        tv.tune(
            ctx_with_app(simple_app()),
            &ait_for("http://hbbtv.rtl.de/start"),
        );
        tv.press(RcButton::Blue);
        let a = hbbtv_consent::annotate(&tv.screenshot().unwrap().content);
        assert_eq!(a.overlay, OverlayKind::Privacy);
        assert!(log
            .borrow()
            .iter()
            .any(|r| r.url.path().contains("policy.html")));
    }

    fn app_with_notice() -> HbbtvApp {
        AppBuilder::new(url("http://hbbtv.rtl.de/start"))
            .page(PageKind::AutostartBar, |p| {
                p.with_notice(branding_catalog(NoticeBranding::RtlGermany));
                p.post_consent_resource(ResourceLoad::get(
                    url("http://ads.adform.net/banner"),
                    ResourceKind::Image,
                ));
            })
            .autostart(0)
            .build()
    }

    #[test]
    fn notice_shows_and_enter_accepts_firing_gated_trackers() {
        let backend = LogBackend::default();
        let log = backend.log.clone();
        let mut tv = new_tv(backend);
        tv.tune(
            ctx_with_app(app_with_notice()),
            &ait_for("http://hbbtv.rtl.de/start"),
        );
        assert_eq!(tv.notice_layer(), Some(0));
        let a = hbbtv_consent::annotate(&tv.screenshot().unwrap().content);
        assert_eq!(a.overlay, OverlayKind::Privacy);
        assert!(!log.borrow().iter().any(|r| r.url.host().contains("adform")));
        // The cursor rests on Accept — a blind ENTER consents.
        tv.press(RcButton::Enter);
        assert!(tv.consent_granted());
        assert_eq!(tv.notice_layer(), None);
        assert!(log.borrow().iter().any(|r| r.url.host().contains("adform")));
    }

    #[test]
    fn navigating_to_settings_descends_layers() {
        let backend = LogBackend::default();
        let mut tv = new_tv(backend);
        tv.tune(
            ctx_with_app(app_with_notice()),
            &ait_for("http://hbbtv.rtl.de/start"),
        );
        // Move focus right to "Settings", then ENTER → layer 2.
        tv.press(RcButton::Right);
        tv.press(RcButton::Enter);
        assert_eq!(tv.notice_layer(), Some(1));
        assert!(!tv.consent_granted());
        // Move to SaveSelection and ENTER → dismissed, no full consent.
        tv.press(RcButton::Right);
        tv.press(RcButton::Enter);
        assert_eq!(tv.notice_layer(), None);
        assert!(!tv.consent_granted());
    }

    #[test]
    fn cursor_clamps_at_edges() {
        let backend = LogBackend::default();
        let mut tv = new_tv(backend);
        tv.tune(
            ctx_with_app(app_with_notice()),
            &ait_for("http://hbbtv.rtl.de/start"),
        );
        for _ in 0..5 {
            tv.press(RcButton::Left);
        }
        // Still on Accept (index 0) → ENTER consents.
        tv.press(RcButton::Enter);
        assert!(tv.consent_granted());
    }

    #[test]
    fn cookies_persist_across_tunes_but_wipe_clears() {
        let backend = LogBackend {
            set_cookie_on: Some("tvping.com".to_string()),
            ..LogBackend::default()
        };
        let log = backend.log.clone();
        let mut tv = new_tv(backend);
        tv.tune(
            ctx_with_app(simple_app()),
            &ait_for("http://hbbtv.rtl.de/start"),
        );
        assert_eq!(tv.cookie_jar().len(), 1);
        // Re-tune: the beacon now carries the cookie.
        tv.tune(
            ctx_with_app(simple_app()),
            &ait_for("http://hbbtv.rtl.de/start"),
        );
        let with_cookie = log
            .borrow()
            .iter()
            .filter(|r| r.url.host() == "tvping.com")
            .filter(|r| r.cookie_header().is_some())
            .count();
        assert!(with_cookie >= 1, "second visit sends the stored cookie");
        // uid leak now echoes the cookie value.
        let log_ref = log.borrow();
        let last_ping = log_ref
            .iter()
            .rev()
            .find(|r| r.url.host() == "tvping.com")
            .unwrap();
        assert_eq!(last_ping.url.query_param("uid"), Some("cookieval1234567"));
        drop(log_ref);
        tv.wipe_storage();
        assert!(tv.cookie_jar().is_empty());
    }

    #[test]
    fn redirects_are_followed_with_cookies() {
        #[derive(Clone, Default)]
        struct SyncBackend {
            log: Rc<RefCell<Vec<Request>>>,
        }
        impl NetworkBackend for SyncBackend {
            fn fetch(&mut self, request: Request) -> Response {
                self.log.borrow_mut().push(request.clone());
                if request.url.host() == "adsync-a.com" {
                    Response::builder(Status::FOUND)
                        .header("Location", "http://adsync-b.com/sync?uid=abcdef1234567890")
                        .build()
                } else {
                    Response::builder(Status::OK)
                        .set_cookie(&SetCookie::session("partner_uid", "abcdef1234567890"))
                        .build()
                }
            }
        }
        let backend = SyncBackend::default();
        let log = backend.log.clone();
        let app = AppBuilder::new(url("http://hbbtv.rtl.de/start"))
            .page(PageKind::AutostartBar, |p| {
                p.resource(ResourceLoad::get(
                    url("http://adsync-a.com/pix"),
                    ResourceKind::Image,
                ));
            })
            .autostart(0)
            .build();
        let clock = SimClock::starting_at(Timestamp::from_unix(1_700_000_000));
        let mut tv = Tv::new(DeviceProfile::study_tv(), clock, backend, 1);
        tv.tune(ctx_with_app(app), &ait_for("http://hbbtv.rtl.de/start"));
        let urls: Vec<String> = log.borrow().iter().map(|r| r.url.to_string()).collect();
        assert!(urls.iter().any(|u| u.contains("adsync-b.com/sync?uid=")));
        // The partner's cookie landed in the jar under the partner domain.
        assert!(tv
            .cookie_jar()
            .all()
            .any(|c| c.cookie.domain.as_str() == "adsync-b.com"));
    }

    #[test]
    fn storage_writes_recorded_under_first_party() {
        let app = AppBuilder::new(url("http://hbbtv.rtl.de/start"))
            .page(PageKind::AutostartBar, |p| {
                p.store(hbbtv_apps::StorageWrite::new(
                    "consent_ts",
                    StorageValueKind::UnixTimestamp,
                ));
                p.store(hbbtv_apps::StorageWrite::new(
                    "device_id",
                    StorageValueKind::Identifier(16),
                ));
            })
            .autostart(0)
            .build();
        let backend = LogBackend::default();
        let mut tv = new_tv(backend);
        tv.tune(ctx_with_app(app), &ait_for("http://hbbtv.rtl.de/start"));
        assert_eq!(tv.local_storage().len(), 2);
        let d = hbbtv_net::Etld1::new("rtl.de");
        assert_eq!(
            tv.local_storage().get(&d, "consent_ts").unwrap(),
            "1700000000"
        );
        assert_eq!(tv.local_storage().get(&d, "device_id").unwrap().len(), 16);
    }

    #[test]
    fn power_off_stops_beacons_keeps_cookies() {
        let backend = LogBackend {
            set_cookie_on: Some("tvping.com".to_string()),
            ..LogBackend::default()
        };
        let log = backend.log.clone();
        let mut tv = new_tv(backend);
        tv.tune(
            ctx_with_app(simple_app()),
            &ait_for("http://hbbtv.rtl.de/start"),
        );
        tv.power_off();
        let before = log.borrow().len();
        tv.advance(Duration::from_secs(30));
        assert_eq!(log.borrow().len(), before, "no traffic after power-off");
        assert_eq!(tv.cookie_jar().len(), 1);
        assert!(tv.screenshot().is_none());
    }

    #[test]
    fn channel_without_app_produces_no_traffic() {
        let backend = LogBackend::default();
        let log = backend.log.clone();
        let mut tv = new_tv(backend);
        let ctx = ChannelContext {
            descriptor: ChannelDescriptor::tv(9, "Testbild", Satellite::Eutelsat16E),
            app: None,
            program: ProgramInfo::default(),
            signal_ok: true,
            tech_message: false,
            ctm_on_missing: false,
            suppress_notice: false,
        };
        tv.tune(ctx, &Ait::new());
        tv.advance(Duration::from_secs(60));
        assert!(log.borrow().is_empty());
        let a = hbbtv_consent::annotate(&tv.screenshot().unwrap().content);
        assert_eq!(a.overlay, OverlayKind::TvOnly);
    }

    #[test]
    fn dnt_header_is_sent_but_changes_nothing() {
        // The Tagliaro et al. approach: a DNT signal. Trackers ignore it.
        let run = |dnt: bool| {
            let backend = LogBackend {
                set_cookie_on: Some("tvping.com".to_string()),
                ..LogBackend::default()
            };
            let log = backend.log.clone();
            let mut tv = new_tv(backend);
            tv.set_dnt(dnt);
            tv.tune(
                ctx_with_app(simple_app()),
                &ait_for("http://hbbtv.rtl.de/start"),
            );
            tv.advance(Duration::from_secs(30));
            let requests = log.borrow().len();
            let dnt_headers = log
                .borrow()
                .iter()
                .filter(|r| r.headers.get("DNT") == Some("1"))
                .count();
            (requests, dnt_headers, tv.cookie_jar().len())
        };
        let (req_off, dnt_off, cookies_off) = run(false);
        let (req_on, dnt_on, cookies_on) = run(true);
        assert_eq!(dnt_off, 0);
        assert_eq!(dnt_on, req_on, "every request carries the signal");
        assert_eq!(req_on, req_off, "tracking volume is unchanged");
        assert_eq!(cookies_on, cookies_off, "cookies are set regardless");
    }

    #[test]
    fn metadata_api_exposes_channel_and_program() {
        let backend = LogBackend::default();
        let mut tv = new_tv(backend);
        assert!(tv.channel_metadata().is_none());
        tv.tune(
            ctx_with_app(simple_app()),
            &ait_for("http://hbbtv.rtl.de/start"),
        );
        let (desc, program) = tv.channel_metadata().unwrap();
        assert_eq!(desc.name, "RTL");
        assert_eq!(program.show_title, "GZSZ");
    }

    #[test]
    fn burst_beacons_multiply_requests() {
        let app = AppBuilder::new(url("http://hbbtv.mon.de/start"))
            .page(PageKind::AutostartBar, |p| {
                p.resource(
                    ResourceLoad::get(url("http://tvping.com/ping"), ResourceKind::Image)
                        .repeating(Duration::from_secs(1))
                        .bursting(3),
                );
            })
            .autostart(0)
            .build();
        let backend = LogBackend::default();
        let log = backend.log.clone();
        let mut tv = new_tv(backend);
        tv.tune(ctx_with_app(app), &ait_for("http://hbbtv.mon.de/start"));
        let before = log.borrow().len();
        tv.advance(Duration::from_secs(5));
        assert_eq!(log.borrow().len() - before, 15, "3 per tick x 5 ticks");
    }
}
