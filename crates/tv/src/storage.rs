//! The TV's cookie jar and local storage.
//!
//! The study extracted both stores over SSH from the TV's Chromium
//! profile after each run, then wiped them to prevent cross-run
//! contamination. Within a run the state is kept ("runs were stateful to
//! track shared resource access"), so third parties re-encounter their
//! cookies across channels — the basis of the cross-channel-tracking
//! analysis (§V-C2).

use hbbtv_net::{Cookie, CookieKey, Etld1, SetCookie, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A cookie at rest, with its expiry and provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredCookie {
    /// The cookie itself.
    pub cookie: Cookie,
    /// Expiry; `None` = session cookie.
    pub expires: Option<Timestamp>,
    /// When the cookie was first set.
    pub created: Timestamp,
    /// When the cookie was last written.
    pub updated: Timestamp,
}

/// The TV's cookie jar, keyed by (domain, name) at eTLD+1 granularity —
/// the resolution at which the paper counts "distinct cookies".
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CookieJar {
    cookies: BTreeMap<CookieKey, StoredCookie>,
}

impl CookieJar {
    /// Creates an empty jar.
    pub fn new() -> Self {
        CookieJar::default()
    }

    /// Applies a `Set-Cookie`, scoping host-only cookies to
    /// `default_domain` (the responding host's eTLD+1). Returns the key
    /// under which the cookie is stored.
    pub fn apply(&mut self, sc: &SetCookie, default_domain: &Etld1, now: Timestamp) -> CookieKey {
        let domain = if sc.explicit_domain {
            sc.cookie.domain.clone()
        } else {
            default_domain.clone()
        };
        let cookie = Cookie::new(sc.cookie.name.clone(), sc.cookie.value.clone(), domain);
        let key = cookie.key();
        let entry = self
            .cookies
            .entry(key.clone())
            .or_insert_with(|| StoredCookie {
                cookie: cookie.clone(),
                expires: sc.expires,
                created: now,
                updated: now,
            });
        entry.cookie = cookie;
        entry.expires = sc.expires;
        entry.updated = now;
        key
    }

    /// The `Cookie:` header value for a request to `domain`, or `None`
    /// if the TV holds no live cookies for it.
    pub fn header_for(&self, domain: &Etld1, now: Timestamp) -> Option<String> {
        let parts: Vec<String> = self
            .cookies
            .values()
            .filter(|sc| &sc.cookie.domain == domain && !is_expired(sc, now))
            .map(|sc| format!("{}={}", sc.cookie.name, sc.cookie.value))
            .collect();
        if parts.is_empty() {
            None
        } else {
            Some(parts.join("; "))
        }
    }

    /// The first live cookie value for `domain` (used to fill `uid=`
    /// leak parameters the way real apps echo their tracker's cookie).
    pub fn any_value_for(&self, domain: &Etld1, now: Timestamp) -> Option<String> {
        self.cookies
            .values()
            .find(|sc| &sc.cookie.domain == domain && !is_expired(sc, now))
            .map(|sc| sc.cookie.value.clone())
    }

    /// All stored cookies (the post-run SSH extraction).
    pub fn all(&self) -> impl Iterator<Item = &StoredCookie> {
        self.cookies.values()
    }

    /// Number of stored cookies.
    pub fn len(&self) -> usize {
        self.cookies.len()
    }

    /// Whether the jar is empty.
    pub fn is_empty(&self) -> bool {
        self.cookies.is_empty()
    }

    /// Wipes the jar (between measurement runs).
    pub fn wipe(&mut self) {
        self.cookies.clear();
    }
}

fn is_expired(sc: &StoredCookie, now: Timestamp) -> bool {
    matches!(sc.expires, Some(e) if e <= now)
}

/// The TV's HTML5 local storage, keyed by origin domain and entry key.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LocalStorage {
    entries: BTreeMap<(Etld1, String), String>,
}

impl LocalStorage {
    /// Creates empty storage.
    pub fn new() -> Self {
        LocalStorage::default()
    }

    /// Sets `key` to `value` for `origin`.
    pub fn set(&mut self, origin: &Etld1, key: &str, value: &str) {
        self.entries
            .insert((origin.clone(), key.to_string()), value.to_string());
    }

    /// Reads a value.
    pub fn get(&self, origin: &Etld1, key: &str) -> Option<&str> {
        self.entries
            .get(&(origin.clone(), key.to_string()))
            .map(String::as_str)
    }

    /// All entries as (origin, key, value).
    pub fn all(&self) -> impl Iterator<Item = (&Etld1, &str, &str)> {
        self.entries
            .iter()
            .map(|((o, k), v)| (o, k.as_str(), v.as_str()))
    }

    /// Number of stored objects (Table I's "Local Stor." column).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the storage is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Wipes the storage (between measurement runs).
    pub fn wipe(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Etld1 {
        Etld1::new(s)
    }

    const T0: Timestamp = Timestamp::from_unix(1_700_000_000);
    const T1: Timestamp = Timestamp::from_unix(1_700_000_100);

    #[test]
    fn host_only_cookies_get_default_domain() {
        let mut jar = CookieJar::new();
        let key = jar.apply(&SetCookie::session("sid", "x1"), &d("zdf.de"), T0);
        assert_eq!(key.domain.as_str(), "zdf.de");
        assert_eq!(jar.header_for(&d("zdf.de"), T0).unwrap(), "sid=x1");
        assert_eq!(jar.header_for(&d("ard.de"), T0), None);
    }

    #[test]
    fn explicit_domain_wins() {
        let mut jar = CookieJar::new();
        let sc = SetCookie::persistent("uid", "abc", d("xiti.com"), T1);
        jar.apply(&sc, &d("zdf.de"), T0);
        assert!(jar.header_for(&d("xiti.com"), T0).is_some());
        assert!(jar.header_for(&d("zdf.de"), T0).is_none());
    }

    #[test]
    fn update_keeps_created_bumps_updated() {
        let mut jar = CookieJar::new();
        jar.apply(&SetCookie::session("a", "1"), &d("x.de"), T0);
        jar.apply(&SetCookie::session("a", "2"), &d("x.de"), T1);
        let stored = jar.all().next().unwrap();
        assert_eq!(stored.cookie.value, "2");
        assert_eq!(stored.created, T0);
        assert_eq!(stored.updated, T1);
        assert_eq!(jar.len(), 1, "same key overwrites");
    }

    #[test]
    fn expired_cookies_are_not_sent() {
        let mut jar = CookieJar::new();
        let sc = SetCookie::persistent("u", "v", d("t.de"), T1);
        jar.apply(&sc, &d("t.de"), T0);
        assert!(jar.header_for(&d("t.de"), T0).is_some());
        assert!(
            jar.header_for(&d("t.de"), T1).is_none(),
            "expiry is inclusive"
        );
    }

    #[test]
    fn multiple_cookies_join_with_semicolons() {
        let mut jar = CookieJar::new();
        jar.apply(&SetCookie::session("a", "1"), &d("x.de"), T0);
        jar.apply(&SetCookie::session("b", "2"), &d("x.de"), T0);
        let h = jar.header_for(&d("x.de"), T0).unwrap();
        assert!(h == "a=1; b=2" || h == "b=2; a=1");
    }

    #[test]
    fn any_value_for_returns_live_value() {
        let mut jar = CookieJar::new();
        jar.apply(&SetCookie::session("uid", "zzz9"), &d("tvping.com"), T0);
        assert_eq!(jar.any_value_for(&d("tvping.com"), T0).unwrap(), "zzz9");
        assert_eq!(jar.any_value_for(&d("other.de"), T0), None);
    }

    #[test]
    fn wipe_clears_everything() {
        let mut jar = CookieJar::new();
        jar.apply(&SetCookie::session("a", "1"), &d("x.de"), T0);
        jar.wipe();
        assert!(jar.is_empty());

        let mut ls = LocalStorage::new();
        ls.set(&d("x.de"), "k", "v");
        assert_eq!(ls.get(&d("x.de"), "k"), Some("v"));
        assert_eq!(ls.len(), 1);
        ls.wipe();
        assert!(ls.is_empty());
        assert_eq!(ls.get(&d("x.de"), "k"), None);
    }

    #[test]
    fn local_storage_iterates_entries() {
        let mut ls = LocalStorage::new();
        ls.set(&d("a.de"), "k1", "v1");
        ls.set(&d("b.de"), "k2", "v2");
        let entries: Vec<_> = ls.all().collect();
        assert_eq!(entries.len(), 2);
    }
}
