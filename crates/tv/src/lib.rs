//! The TV runtime: a simulated HbbTV 2.0 television.
//!
//! The study's TV was a rooted LG 43UK6300LLB running webOS 05.40.26 with
//! a Chromium-based HbbTV browser. The analysis touched the device
//! through three interfaces, all of which this crate reproduces:
//!
//! * the **HbbTV browser environment** — tunes channels, loads the AIT
//!   application, executes its resource loads and beacons, renders
//!   consent notices, and follows redirects (see [`Tv`]);
//! * the **cookie jar and local storage** — extracted via SSH from the
//!   Chromium profile in the real study (see [`CookieJar`],
//!   [`LocalStorage`]);
//! * the **webOS developer API** — remote-control key injection,
//!   screenshots, and channel metadata (see [`Tv::press`],
//!   [`Tv::screenshot`]).
//!
//! The runtime is deliberately deterministic: all randomness flows from
//! the seeded RNG handed to [`Tv::new`], and all time from the shared
//! [`SimClock`](hbbtv_net::SimClock).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod device;
mod runtime;
mod screen;
mod storage;

pub use backend::NetworkBackend;
pub use device::{DeviceProfile, ProgramInfo};
pub use runtime::{ChannelContext, RcButton, Tv};
pub use screen::Screenshot;
pub use storage::{CookieJar, LocalStorage, StoredCookie};
