//! The device profile and program metadata.

use hbbtv_apps::LeakItem;
use hbbtv_net::Timestamp;
use serde::{Deserialize, Serialize};

/// Static device attributes an application can exfiltrate (§V-B's
/// "technical data").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Manufacturer string.
    pub manufacturer: String,
    /// Model string.
    pub model: String,
    /// OS identification.
    pub os: String,
    /// UI language.
    pub language: String,
    /// Local IP address (behind the hotspot).
    pub ip: String,
    /// Wi-Fi MAC address.
    pub mac: String,
}

impl DeviceProfile {
    /// The study device: LG 43UK6300LLB on webOS 05.40.26.
    pub fn study_tv() -> Self {
        DeviceProfile {
            manufacturer: "LGE".to_string(),
            model: "43UK6300LLB".to_string(),
            os: "WEBOS4.0 05.40.26 W4_LM18A".to_string(),
            language: "German".to_string(),
            ip: "192.168.12.34".to_string(),
            mac: "a8:23:fe:12:34:56".to_string(),
        }
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        Self::study_tv()
    }
}

/// What the channel currently airs (from the program guide the webOS API
/// exposes). Feeds the behavioral leak items.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramInfo {
    /// Title of the running show.
    pub show_title: String,
    /// Genre of the running show.
    pub genre: String,
    /// A brand in ad context, if an ad is running.
    pub brand: Option<String>,
}

impl ProgramInfo {
    /// Creates program info.
    pub fn new(show_title: &str, genre: &str) -> Self {
        ProgramInfo {
            show_title: show_title.to_string(),
            genre: genre.to_string(),
            brand: None,
        }
    }
}

impl DeviceProfile {
    /// Resolves the concrete value an application would send for a leak
    /// item. Identifier items (`UserId`, `SessionId`) are resolved by the
    /// runtime from its cookie state, not here.
    pub fn leak_value(
        &self,
        item: LeakItem,
        program: &ProgramInfo,
        channel_name: &str,
        now: Timestamp,
    ) -> Option<String> {
        Some(match item {
            LeakItem::Manufacturer => self.manufacturer.clone(),
            LeakItem::Model => self.model.clone(),
            LeakItem::OperatingSystem => self.os.clone(),
            LeakItem::Language => self.language.clone(),
            LeakItem::LocalTime => now.as_unix().to_string(),
            LeakItem::IpAddress => self.ip.clone(),
            LeakItem::MacAddress => self.mac.clone(),
            LeakItem::Genre => program.genre.clone(),
            LeakItem::ShowTitle => program.show_title.clone(),
            LeakItem::ChannelName => channel_name.to_string(),
            LeakItem::Brand => program.brand.clone()?,
            LeakItem::UserId | LeakItem::SessionId => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_tv_matches_the_paper() {
        let d = DeviceProfile::study_tv();
        assert_eq!(d.manufacturer, "LGE");
        assert!(d.model.contains("43UK6300"));
        assert!(d.os.contains("WEBOS4.0"));
        assert_eq!(d.language, "German");
    }

    #[test]
    fn leak_values_resolve() {
        let d = DeviceProfile::study_tv();
        let p = ProgramInfo::new("PAW Patrol", "Children");
        let t = Timestamp::from_unix(1_700_000_000);
        assert_eq!(
            d.leak_value(LeakItem::Genre, &p, "KiKA", t).unwrap(),
            "Children"
        );
        assert_eq!(
            d.leak_value(LeakItem::ShowTitle, &p, "KiKA", t).unwrap(),
            "PAW Patrol"
        );
        assert_eq!(
            d.leak_value(LeakItem::ChannelName, &p, "KiKA", t).unwrap(),
            "KiKA"
        );
        assert_eq!(
            d.leak_value(LeakItem::LocalTime, &p, "KiKA", t).unwrap(),
            "1700000000"
        );
        assert_eq!(d.leak_value(LeakItem::Brand, &p, "KiKA", t), None);
        assert_eq!(
            d.leak_value(LeakItem::UserId, &p, "KiKA", t),
            None,
            "runtime-resolved"
        );
    }

    #[test]
    fn brand_resolves_when_ad_runs() {
        let d = DeviceProfile::study_tv();
        let mut p = ProgramInfo::new("Movie", "Movies");
        p.brand = Some("L'Oreal".to_string());
        let t = Timestamp::from_unix(0);
        assert_eq!(
            d.leak_value(LeakItem::Brand, &p, "RTL", t).unwrap(),
            "L'Oreal"
        );
    }
}
