//! The network boundary of the TV.

use hbbtv_net::{Request, Response};

/// Where the TV's HTTP(S) requests go.
///
/// In the physical setup this is the Wi-Fi hotspot + mitmproxy + the
/// Internet; in the simulation the study harness implements it by
/// answering from the tracker registry and recording through a
/// per-visit proxy handle (`hbbtv_proxy::VisitHandle`), so every
/// exchange is tagged with the channel visit that issued it.
///
/// Implementations receive every request the TV issues — including
/// redirect-chain follow-ups — in the order the TV sends them. A
/// backend is owned by one `Tv`, and in the channel-parallel harness
/// one `Tv` (hence one backend) exists per visit, on the visit's worker
/// thread: a backend never needs to be `Sync`, but the harness's is
/// `Send` so visits can fan out over a worker pool.
pub trait NetworkBackend {
    /// Delivers a request and returns the response.
    fn fetch(&mut self, request: Request) -> Response;
}

impl<F> NetworkBackend for F
where
    F: FnMut(Request) -> Response,
{
    fn fetch(&mut self, request: Request) -> Response {
        self(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbtv_net::{Status, Url};

    #[test]
    fn closures_are_backends() {
        let mut calls = 0usize;
        {
            let mut backend = |_req: Request| {
                calls += 1;
                Response::builder(Status::OK).build()
            };
            let url: Url = "http://x.de/".parse().unwrap();
            let resp = backend.fetch(Request::get(url).build());
            assert_eq!(resp.status, Status::OK);
        }
        assert_eq!(calls, 1);
    }
}
