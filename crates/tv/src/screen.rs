//! Screenshots.

use hbbtv_broadcast::ChannelId;
use hbbtv_consent::ScreenContent;
use hbbtv_net::Timestamp;
use serde::{Deserialize, Serialize};

/// One screenshot, as the remote-control script captured them every 60 s.
///
/// The physical study stored 41,617 PNG images and annotated them
/// manually; the simulation captures the structured [`ScreenContent`]
/// directly, which the `hbbtv-consent` annotator classifies with the
/// same codebook.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Screenshot {
    /// The channel on screen.
    pub channel: ChannelId,
    /// Capture instant.
    pub taken_at: Timestamp,
    /// What the screen showed.
    pub content: ScreenContent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn screenshot_carries_content() {
        let s = Screenshot {
            channel: ChannelId(3),
            taken_at: Timestamp::from_unix(5),
            content: ScreenContent::tv_only(),
        };
        assert!(s.content.signal);
        assert_eq!(s.channel, ChannelId(3));
    }
}
